//! The Performance Consultant.
//!
//! §5: "Paradyn also includes an automated module (called the Performance
//! Consultant) to help users find performance problems in their
//! applications." Following the Paradyn W³ search model, the consultant
//! tests *why* hypotheses (which kind of time dominates?) and refines true
//! ones along the *where* axis (which statement? which array? which node?).
//!
//! Real Paradyn inserts and removes instrumentation for each experiment
//! within a single long-running execution. The simulator's runs are short
//! and deterministic, so each experiment instruments a fresh run instead —
//! the instrumentation economy (only the hypotheses currently under test
//! are instrumented) is the same.
//!
//! # Sequential baseline and parallel frontier
//!
//! [`search`] is the documented baseline: hypotheses in catalogue order,
//! one uncached machine run per experiment, depth-first refinement.
//!
//! [`search_parallel`] evaluates the same experiments as a work-stealing
//! frontier: a shared deque of `(hypothesis, focus, depth)` items drained
//! concurrently by `min(available_parallelism, frontier)` workers (the
//! `DrainPool` shape from `daemonset`). Experiments are *pure*
//! ([`Paradyn::run_experiment`] — no `&mut` threading), so workers need no
//! coordination beyond the deque; a `True` or measured-`Unknown` verdict
//! pushes its refinements back onto the frontier, and a decided parent
//! early-cuts children whose measurements could no longer change any
//! verdict (counted under `consultant.early_cut`). Measurements go through
//! the content-addressed [`MeasurementCache`](crate::mcache) — every
//! hypothesis at a focus shares one instrumented run — and results are
//! assembled into a slot arena in *refinement order*, never completion
//! order, so the parallel search renders byte-identical to the baseline.
//!
//! # Coverage-aware verdicts
//!
//! A hypothesis test over a degraded fleet must not produce a confidently
//! wrong answer. Every experiment therefore measures with a session
//! [`Coverage`] stamp and tests an *interval* estimate `[lo, hi]` of the
//! ratio against the threshold, widened by that coverage (see
//! [`Coverage::bound_mass`] for the widening rule): the verdict is
//! [`Verdict::True`] only when the whole interval is above the threshold,
//! [`Verdict::False`] only when it is entirely at-or-below, and
//! [`Verdict::Unknown`] when the interval straddles it — the honest answer
//! when missing nodes or lost samples could move the ratio across the
//! line. With complete coverage the interval is a point and the verdicts
//! are exactly the classic boolean ones.
//!
//! Failed experiments are `Unknown` too: a `measure` error or a zero-wall
//! run yields no evidence, so the node carries an explanatory note instead
//! of a fabricated ratio (zero-wall experiments are counted under the
//! `consultant.zero_wall` self-observation counter).

use crate::daemonset::Coverage;
use crate::mcache::Measured;
use crate::metrics::RequestError;
use crate::tool::{Experiment, Paradyn};
use pdmap::hierarchy::Focus;
use pdmap::interval::{Interval, Side};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Span site for one hypothesis experiment, interned once (`pdmap-obs`).
/// Scoped to the measurement itself, not the recursion below it, so a
/// trace shows each experiment as its own span rather than one nest.
fn experiment_obs_site() -> &'static pdmap_obs::SpanSite {
    static SITE: OnceLock<pdmap_obs::SpanSite> = OnceLock::new();
    SITE.get_or_init(|| pdmap_obs::span_site("consultant", "experiment"))
}

/// Memoised where-axis refinements, keyed by rendered focus. Every
/// hypothesis in a search explores the same foci, so without this the
/// data manager recomputes identical candidate lists once per hypothesis;
/// hits and misses are counted under `consultant.cache_hit` /
/// `consultant.cache_miss`. Entries are `Arc<[Focus]>` shared with the
/// data manager, so a hit costs one refcount bump, not a list clone.
type RefinementCache = HashMap<String, Arc<[Focus]>>;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A "why" hypothesis: a time metric whose share of the wall clock is
/// tested against a threshold.
#[derive(Clone, Copy, Debug)]
pub struct Hypothesis {
    /// Hypothesis name (e.g. `ExcessiveCommunication`).
    pub name: &'static str,
    /// The Figure 9 time metric backing it.
    pub metric: &'static str,
}

/// The default hypothesis set.
pub const HYPOTHESES: &[Hypothesis] = &[
    Hypothesis {
        name: "ExcessiveCommunication",
        metric: "Point-to-Point Time",
    },
    Hypothesis {
        name: "ExcessiveBroadcast",
        metric: "Broadcast Time",
    },
    Hypothesis {
        name: "ExcessiveIdleTime",
        metric: "Idle Time",
    },
    Hypothesis {
        name: "ExcessiveReductionTime",
        metric: "Reduction Time",
    },
    Hypothesis {
        name: "ExcessiveSortTime",
        metric: "Sort Time",
    },
    Hypothesis {
        name: "ExcessiveIOTime",
        metric: "File I/O Time",
    },
];

/// Search configuration.
#[derive(Clone, Copy, Debug)]
pub struct ConsultantConfig {
    /// A hypothesis is true when `metric / wall > threshold`.
    pub threshold: f64,
    /// Maximum where-axis refinement depth below the whole program.
    pub max_depth: usize,
}

impl Default for ConsultantConfig {
    fn default() -> Self {
        Self {
            threshold: 0.10,
            max_depth: 2,
        }
    }
}

/// A tri-state hypothesis verdict: the boolean of the classic consultant
/// plus the honest third answer for experiments whose evidence cannot
/// decide (degraded coverage straddling the threshold, failed or zero-wall
/// measurements).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The whole interval estimate is above the threshold.
    True,
    /// The whole interval estimate is at or below the threshold.
    False,
    /// The evidence cannot decide: the interval straddles the threshold,
    /// or the experiment produced no usable measurement.
    Unknown,
}

impl Verdict {
    /// True for [`Verdict::True`] only.
    pub fn is_true(self) -> bool {
        self == Verdict::True
    }

    /// True when the verdict is decided either way (not `Unknown`).
    pub fn is_decided(self) -> bool {
        self != Verdict::Unknown
    }

    /// The fixed-width marker used by [`render`]: `[TRUE ]`, `[false]`,
    /// or `[?????]`.
    pub fn marker(self) -> &'static str {
        match self {
            Verdict::True => "[TRUE ]",
            Verdict::False => "[false]",
            Verdict::Unknown => "[?????]",
        }
    }
}

/// One node of the search tree.
#[derive(Clone, Debug)]
pub struct ExperimentNode {
    /// Hypothesis tested.
    pub hypothesis: String,
    /// Focus tested at.
    pub focus: Focus,
    /// Measured metric value (seconds).
    pub value: f64,
    /// Wall time of the experiment's run (seconds).
    pub wall: f64,
    /// `value / wall` — the observed point estimate (a lower bound on the
    /// true ratio when coverage is incomplete).
    pub ratio: f64,
    /// The coverage-widened bound on the true ratio; degenerate (`lo ==
    /// hi == ratio`) with complete coverage.
    pub interval: Interval,
    /// The fleet coverage the experiment ran under.
    pub coverage: Coverage,
    /// Tri-state verdict from testing `interval` against the threshold.
    pub verdict: Verdict,
    /// Why the verdict is `Unknown` when no measurement backs it (a
    /// `measure` error or a zero-wall run); `None` for measured nodes.
    pub note: Option<String>,
    /// Refinements explored under a true (or threshold-straddling) verdict.
    pub children: Vec<ExperimentNode>,
}

/// Builds an [`ExperimentNode`] from one pure measurement outcome — the
/// verdict logic shared verbatim by the sequential baseline and the
/// parallel frontier, so the two can never diverge.
fn evaluate(
    tool: &Paradyn,
    config: &ConsultantConfig,
    h: &Hypothesis,
    focus: &Focus,
    measured: Result<Measured, RequestError>,
) -> ExperimentNode {
    match measured {
        // A failed experiment is evidence of nothing: Unknown, with the
        // error preserved — never a fabricated 0.0/1.0 ratio.
        Err(e) => ExperimentNode {
            hypothesis: h.name.to_string(),
            focus: focus.clone(),
            value: 0.0,
            wall: 0.0,
            ratio: 0.0,
            interval: Interval::unknown(),
            coverage: tool.session_coverage(),
            verdict: Verdict::Unknown,
            note: Some(format!("measurement failed: {e}")),
            children: Vec::new(),
        },
        Ok(m) if m.wall <= 0.0 => {
            // A zero-wall run cannot support a ratio; count it and answer
            // honestly instead of collapsing to 0.0 (= a false verdict).
            pdmap_obs::counter("consultant.zero_wall").incr();
            ExperimentNode {
                hypothesis: h.name.to_string(),
                focus: focus.clone(),
                value: m.value,
                wall: m.wall,
                ratio: 0.0,
                interval: Interval::unknown(),
                coverage: m.coverage,
                verdict: Verdict::Unknown,
                note: Some("zero-wall experiment".to_string()),
                children: Vec::new(),
            }
        }
        Ok(m) => {
            let ratio = m.value / m.wall;
            let interval = m
                .coverage
                .bound_mass(m.value, tool.session_max_sample_cost())
                .scale(1.0 / m.wall);
            let verdict = match interval.classify(config.threshold) {
                Side::Above => Verdict::True,
                Side::Below => Verdict::False,
                Side::Straddles => Verdict::Unknown,
            };
            ExperimentNode {
                hypothesis: h.name.to_string(),
                focus: focus.clone(),
                value: m.value,
                wall: m.wall,
                ratio,
                interval,
                coverage: m.coverage,
                verdict,
                note: None,
                children: Vec::new(),
            }
        }
    }
}

/// The refinement rule, identical in both search paths: true verdicts
/// refine as always; a *measured* straddling verdict also refines (the
/// flagged subtree may still localise the suspect); a `False` or
/// unmeasured-`Unknown` parent is **early-cut** — its interval can no
/// longer be changed by any child measurement (`False`: the whole interval
/// is at-or-below the threshold; unmeasured: repeating a failed experiment
/// at child foci yields no new evidence), so the subtree is pruned before
/// a single child experiment runs, counted under `consultant.early_cut`.
fn should_explore(node: &ExperimentNode, depth: usize, config: &ConsultantConfig) -> bool {
    let explore = match node.verdict {
        Verdict::True => true,
        Verdict::Unknown => node.note.is_none(),
        Verdict::False => false,
    };
    if !explore && depth < config.max_depth {
        pdmap_obs::counter("consultant.early_cut").incr();
    }
    explore && depth < config.max_depth
}

/// Cached where-axis refinement lookup. The list is computed off-lock (a
/// losing racer recomputes an identical list — axis merges are idempotent)
/// and shared as `Arc<[Focus]>`, so hits cost a refcount, not a clone.
fn refinements(tool: &Paradyn, cache: &Mutex<RefinementCache>, focus: &Focus) -> Arc<[Focus]> {
    let key = focus.to_string();
    if let Some(hit) = lock(cache).get(&key).cloned() {
        pdmap_obs::counter("consultant.cache_hit").incr();
        return hit;
    }
    let computed = tool.data().refinement_candidates(focus);
    match lock(cache).entry(key) {
        Entry::Occupied(e) => {
            pdmap_obs::counter("consultant.cache_hit").incr();
            e.get().clone()
        }
        Entry::Vacant(e) => {
            pdmap_obs::counter("consultant.cache_miss").incr();
            e.insert(computed).clone()
        }
    }
}

/// Runs the consultant search over a loaded [`Paradyn`] tool — the
/// sequential baseline: hypotheses in catalogue order, one uncached
/// machine run per experiment, depth-first refinement.
pub fn search(tool: &Paradyn, config: &ConsultantConfig) -> Vec<ExperimentNode> {
    let cache = Mutex::new(RefinementCache::new());
    HYPOTHESES
        .iter()
        .map(|h| test_hypothesis(tool, config, h, &Focus::whole_program(), 0, &cache))
        .collect()
}

fn test_hypothesis(
    tool: &Paradyn,
    config: &ConsultantConfig,
    h: &Hypothesis,
    focus: &Focus,
    depth: usize,
    cache: &Mutex<RefinementCache>,
) -> ExperimentNode {
    let measured = {
        let _experiment = pdmap_obs::span(experiment_obs_site());
        tool.run_experiment(&Experiment {
            metric: h.metric.to_string(),
            focus: focus.clone(),
        })
    };
    let mut node = evaluate(tool, config, h, focus, measured);
    if should_explore(&node, depth, config) {
        for refined in refinements(tool, cache, focus).iter() {
            let child = test_hypothesis(tool, config, h, refined, depth + 1, cache);
            node.children.push(child);
        }
    }
    node
}

/// One frontier work item: a hypothesis to test at a focus, with the slot
/// its result lands in.
struct Item {
    hyp: Hypothesis,
    focus: Focus,
    depth: usize,
    slot: usize,
}

/// One arena slot. Children are slot indices recorded in refinement-
/// candidate order at push time, so the assembled tree never depends on
/// worker completion order.
#[derive(Default)]
struct Slot {
    node: Option<ExperimentNode>,
    children: Vec<usize>,
}

struct Frontier {
    queue: VecDeque<Item>,
    slots: Vec<Slot>,
    /// Items popped but not yet completed; the search is done when the
    /// queue is empty *and* nothing is in flight (an in-flight item may
    /// still push refinements).
    active: usize,
}

/// Runs the consultant search as a work-stealing parallel frontier. Same
/// experiments, same verdicts, byte-identical [`render`] output as
/// [`search`] — but overlapping experiments share machine runs through
/// the measurement cache and independent ones run concurrently. See the
/// module docs for the design.
pub fn search_parallel(tool: &Paradyn, config: &ConsultantConfig) -> Vec<ExperimentNode> {
    pdmap_obs::counter("consultant.pool.searches").incr();
    // One machine run at a focus serves every hypothesis metric: the
    // batch each cache miss measures.
    let batch: Vec<String> = HYPOTHESES.iter().map(|h| h.metric.to_string()).collect();
    let cache = Mutex::new(RefinementCache::new());
    let mut init = Frontier {
        queue: VecDeque::new(),
        slots: Vec::new(),
        active: 0,
    };
    for h in HYPOTHESES {
        let slot = init.slots.len();
        init.slots.push(Slot::default());
        init.queue.push_back(Item {
            hyp: *h,
            focus: Focus::whole_program(),
            depth: 0,
            slot,
        });
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.min(init.queue.len()).max(1);
    pdmap_obs::counter("consultant.pool.workers").add(workers as u64);
    let state = Mutex::new(init);
    let work_cv = Condvar::new();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| frontier_worker(tool, config, &batch, &cache, &state, &work_cv));
        }
    });
    let mut slots = state.into_inner().unwrap_or_else(|e| e.into_inner()).slots;
    (0..HYPOTHESES.len())
        .map(|i| assemble(&mut slots, i))
        .collect()
}

fn frontier_worker(
    tool: &Paradyn,
    config: &ConsultantConfig,
    batch: &[String],
    cache: &Mutex<RefinementCache>,
    state: &Mutex<Frontier>,
    work_cv: &Condvar,
) {
    loop {
        let item = {
            let mut st = lock(state);
            loop {
                if let Some(item) = st.queue.pop_front() {
                    st.active += 1;
                    break item;
                }
                if st.active == 0 {
                    // Nothing queued and nothing in flight: no item can
                    // ever be pushed again.
                    return;
                }
                // Timed wait as defense-in-depth, like the daemonset drain
                // pool: a missed notify costs 5 ms, not a hang.
                st = work_cv
                    .wait_timeout(st, Duration::from_millis(5))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        let measured = {
            let _experiment = pdmap_obs::span(experiment_obs_site());
            tool.experiment_cached(
                &Experiment {
                    metric: item.hyp.metric.to_string(),
                    focus: item.focus.clone(),
                },
                batch,
            )
        };
        let node = evaluate(tool, config, &item.hyp, &item.focus, measured);
        let refined = should_explore(&node, item.depth, config)
            .then(|| refinements(tool, cache, &item.focus));
        let mut st = lock(state);
        st.slots[item.slot].node = Some(node);
        if let Some(refined) = refined {
            for focus in refined.iter() {
                let slot = st.slots.len();
                st.slots.push(Slot::default());
                st.slots[item.slot].children.push(slot);
                st.queue.push_back(Item {
                    hyp: item.hyp,
                    focus: focus.clone(),
                    depth: item.depth + 1,
                    slot,
                });
            }
        }
        st.active -= 1;
        drop(st);
        // Refinements mean new work; a drained frontier means idle workers
        // must re-check the termination predicate. Either way, wake all.
        work_cv.notify_all();
    }
}

/// Rebuilds the tree below `idx` from the slot arena, child order as
/// recorded at push time.
fn assemble(slots: &mut [Slot], idx: usize) -> ExperimentNode {
    let children = std::mem::take(&mut slots[idx].children);
    let mut node = slots[idx].node.take().expect("every queued slot is filled");
    node.children = children.into_iter().map(|c| assemble(slots, c)).collect();
    node
}

/// Where-axis refinements of a focus (delegates to the data manager).
pub fn refinement_candidates(tool: &Paradyn, focus: &Focus) -> Arc<[Focus]> {
    tool.data().refinement_candidates(focus)
}

/// Walks a search forest and returns a violation report for every node
/// whose decided verdict is *not* backed by its interval — a `True`/`False`
/// answer while the interval straddles the threshold, which the
/// coverage-aware consultant must never emit. Empty means the invariant
/// holds; the chaos drill and CI fail on any entry.
pub fn audit(results: &[ExperimentNode], threshold: f64) -> Vec<String> {
    let mut violations = Vec::new();
    fn walk(node: &ExperimentNode, threshold: f64, out: &mut Vec<String>) {
        if node.verdict.is_decided() && node.interval.classify(threshold) == Side::Straddles {
            out.push(format!(
                "{} @ {}: verdict {:?} from straddling interval {} (coverage {})",
                node.hypothesis, node.focus, node.verdict, node.interval, node.coverage
            ));
        }
        for c in &node.children {
            walk(c, threshold, out);
        }
    }
    for node in results {
        walk(node, threshold, &mut violations);
    }
    violations
}

/// Renders the search tree, Performance Consultant style. Nodes measured
/// under complete coverage render exactly as the classic consultant did;
/// degraded or undecidable nodes carry their interval and coverage so a
/// degraded-fleet report is *visibly* degraded.
pub fn render(results: &[ExperimentNode]) -> String {
    let mut out = String::new();
    for node in results {
        render_node(node, 0, &mut out);
    }
    out
}

/// Formats a ratio bound end as a percentage, tolerating the unbounded
/// upper end of an unmeasured experiment.
fn pct(x: f64) -> String {
    if x.is_infinite() {
        "?".to_string()
    } else {
        format!("{:.1}%", x * 100.0)
    }
}

fn render_node(node: &ExperimentNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    if let Some(note) = &node.note {
        // An unmeasured experiment has no ratio; printing "0.0% of wall
        // time" would fabricate a measurement that never happened.
        write!(
            out,
            "{} {} @ {} ({note})",
            node.verdict.marker(),
            node.hypothesis,
            node.focus
        )
        .unwrap();
    } else {
        write!(
            out,
            "{} {} @ {} — {:.1}% of wall time",
            node.verdict.marker(),
            node.hypothesis,
            node.focus,
            node.ratio * 100.0
        )
        .unwrap();
        if !node.coverage.is_complete() || !node.interval.is_point() {
            write!(
                out,
                " in [{}, {}] ({}/{} nodes, >={} samples lost)",
                pct(node.interval.lo),
                pct(node.interval.hi),
                node.coverage.nodes_reporting,
                node.coverage.nodes_total,
                node.coverage.samples_lost
            )
            .unwrap();
        }
    }
    out.push('\n');
    for c in &node.children {
        render_node(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemonset::SessionCoverage;
    use cmrts_sim::MachineConfig;

    /// A communication-heavy program: sorts and transposes dominate.
    const COMM_HEAVY: &str = "\
PROGRAM COMMY
REAL A(512), B(512)
A = 1.0
B = SORT(A)
B = SORT(B)
A = CSHIFT(B, 7)
END
";

    fn tool_for(src: &str, nodes: usize) -> Paradyn {
        let mut t = Paradyn::new(MachineConfig {
            nodes,
            ..MachineConfig::default()
        });
        t.load_source(src).unwrap();
        t
    }

    #[test]
    fn finds_communication_bottleneck() {
        let t = tool_for(COMM_HEAVY, 4);
        let results = search(&t, &ConsultantConfig::default());
        let comm = results
            .iter()
            .find(|r| r.hypothesis == "ExcessiveCommunication")
            .unwrap();
        assert!(comm.verdict.is_true(), "ratio was {}", comm.ratio);
        assert!(comm.interval.is_point(), "full coverage, point estimate");
        let sorty = results
            .iter()
            .find(|r| r.hypothesis == "ExcessiveSortTime")
            .unwrap();
        assert!(sorty.verdict.is_true());
    }

    #[test]
    fn true_hypotheses_are_refined() {
        let t = tool_for(COMM_HEAVY, 4);
        let results = search(
            &t,
            &ConsultantConfig {
                threshold: 0.05,
                max_depth: 1,
            },
        );
        let comm = results
            .iter()
            .find(|r| r.hypothesis == "ExcessiveCommunication")
            .unwrap();
        assert!(!comm.children.is_empty(), "refinements explored");
        // Some refinement points at a specific statement or node.
        let shown = render(&results);
        assert!(shown.contains("[TRUE ]"));
        assert!(shown.contains("node#") || shown.contains("line#"));
    }

    #[test]
    fn io_free_program_rejects_io_hypothesis() {
        let t = tool_for(COMM_HEAVY, 2);
        let results = search(&t, &ConsultantConfig::default());
        let io = results
            .iter()
            .find(|r| r.hypothesis == "ExcessiveIOTime")
            .unwrap();
        assert_eq!(io.verdict, Verdict::False);
        assert!(io.children.is_empty());
    }

    #[test]
    fn parallel_search_renders_byte_identical_to_sequential() {
        let t = tool_for(COMM_HEAVY, 4);
        let config = ConsultantConfig {
            threshold: 0.05,
            max_depth: 2,
        };
        let sequential = render(&search(&t, &config));
        for _ in 0..3 {
            let parallel = render(&search_parallel(&t, &config));
            assert_eq!(
                sequential, parallel,
                "parallel search must render byte-identical to the baseline"
            );
        }
    }

    #[test]
    fn parallel_search_shares_runs_through_the_measurement_cache() {
        let t = tool_for(COMM_HEAVY, 4);
        t.clear_measurement_cache();
        let results = search_parallel(&t, &ConsultantConfig::default());
        assert_eq!(results.len(), HYPOTHESES.len());
        let st = t.measurement_cache_stats();
        // Six root experiments at the same whole-program focus: one run,
        // five hits — plus whatever the refinement levels share.
        assert!(st.hits >= 5, "expected ≥5 cache hits, got {st:?}");
        let experiments: u64 = {
            fn count(n: &ExperimentNode) -> u64 {
                1 + n.children.iter().map(count).sum::<u64>()
            }
            results.iter().map(count).sum()
        };
        assert_eq!(st.hits + st.misses, experiments);
        assert!(
            st.misses < experiments,
            "machine runs saved: {} runs for {experiments} experiments",
            st.misses
        );
    }

    #[test]
    fn refinement_candidates_prefer_arrays_over_subregions() {
        let t = tool_for(COMM_HEAVY, 2);
        // Populate subregions dynamically.
        let mut m = t.new_machine().unwrap();
        m.run();
        let cands = refinement_candidates(&t, &Focus::whole_program());
        let paths: Vec<String> = cands.iter().map(|f| f.to_string()).collect();
        assert!(paths.iter().any(|p| p.ends_with("/A")), "{paths:?}");
        assert!(
            !paths.iter().any(|p| p.contains("sub#")),
            "first refinement stops at arrays: {paths:?}"
        );
        // Refining from the array focus reaches its subregions.
        let array_focus = cands
            .iter()
            .find(|f| f.to_string().ends_with("/A"))
            .unwrap();
        let deeper = refinement_candidates(&t, array_focus);
        assert!(deeper.iter().any(|f| f.to_string().contains("sub#")));
    }

    #[test]
    fn degraded_fleet_flips_borderline_verdicts_to_unknown() {
        let t = tool_for(COMM_HEAVY, 4);
        let full = search(&t, &ConsultantConfig::default());
        // 3 of 4 nodes reporting: every False whose hi = ratio × 4/3 crosses
        // the threshold must become Unknown; clear-cut ones stay decided.
        t.set_session_coverage(Some(SessionCoverage {
            coverage: Coverage {
                nodes_reporting: 3,
                nodes_total: 4,
                samples_lost: 0,
            },
            max_sample_cost: 0.0,
        }));
        let degraded = search(&t, &ConsultantConfig::default());
        for (f, d) in full.iter().zip(&degraded) {
            match f.verdict {
                // lo is the observed ratio, unchanged by widening: True holds.
                Verdict::True => assert_eq!(d.verdict, Verdict::True, "{}", d.hypothesis),
                Verdict::False => assert!(
                    d.verdict != Verdict::True,
                    "{}: False may weaken to Unknown, never flip to True",
                    d.hypothesis
                ),
                Verdict::Unknown => {}
            }
            assert!(!d.coverage.is_complete());
            assert!(d.interval.hi >= d.interval.lo);
        }
        // The report is visibly degraded and the invariant audit is clean.
        let shown = render(&degraded);
        assert!(shown.contains("3/4 nodes"), "{shown}");
        assert!(audit(&degraded, 0.10).is_empty());
    }

    #[test]
    fn unknown_verdict_for_failed_measurement() {
        let t = tool_for(COMM_HEAVY, 2);
        let bogus = Hypothesis {
            name: "ExcessivePhantomTime",
            metric: "No Such Metric",
        };
        let node = test_hypothesis(
            &t,
            &ConsultantConfig::default(),
            &bogus,
            &Focus::whole_program(),
            0,
            &Mutex::new(RefinementCache::new()),
        );
        assert_eq!(node.verdict, Verdict::Unknown);
        let note = node
            .note
            .clone()
            .expect("failed measurement carries a note");
        assert!(note.contains("measurement failed"), "{note}");
        assert!(node.children.is_empty(), "unmeasured Unknown is terminal");
        let shown = render(&[node]);
        assert!(shown.contains("[?????]"), "{shown}");
        assert!(shown.contains("measurement failed"), "{shown}");
        assert!(
            !shown.contains("% of wall time"),
            "an unmeasured node must not fabricate a ratio: {shown}"
        );
    }

    #[test]
    fn unloaded_tool_searches_to_unknown_not_panic() {
        let t = Paradyn::new(MachineConfig::default());
        for results in [
            search(&t, &ConsultantConfig::default()),
            search_parallel(&t, &ConsultantConfig::default()),
        ] {
            assert_eq!(results.len(), HYPOTHESES.len());
            for node in &results {
                assert_eq!(node.verdict, Verdict::Unknown);
                let note = node.note.as_deref().unwrap();
                assert!(note.contains("no program loaded"), "{note}");
            }
        }
    }

    #[test]
    fn search_reuses_refinements_and_records_experiment_spans() {
        // The registry is global to the test binary, so measure deltas.
        let snap0 = pdmap_obs::snapshot();
        let hits0 = snap0.counter("consultant.cache_hit");
        let spans0 = snap0
            .site("consultant", "experiment")
            .map_or(0, |s| s.count);

        let t = tool_for(COMM_HEAVY, 4);
        let results = search(
            &t,
            &ConsultantConfig {
                threshold: 0.05,
                max_depth: 1,
            },
        );
        let experiments: usize = {
            fn count(n: &ExperimentNode) -> usize {
                1 + n.children.iter().map(count).sum::<usize>()
            }
            results.iter().map(count).sum()
        };

        let snap = pdmap_obs::snapshot();
        // Several hypotheses refine the same whole-program focus; all but
        // the first hit the cache.
        assert!(
            snap.counter("consultant.cache_hit") > hits0,
            "refinements of a repeated focus must come from the cache"
        );
        let spans = snap.site("consultant", "experiment").unwrap().count;
        assert!(
            spans - spans0 >= experiments as u64,
            "every experiment records a span: {} new spans for {experiments} experiments",
            spans - spans0
        );
    }

    #[test]
    fn early_cuts_are_counted() {
        // The obs registry is global to the test binary, so assert a
        // monotone lower bound (the delta may include concurrent tests'
        // cuts), derived from the tree the search actually produced.
        let t = tool_for(COMM_HEAVY, 4);
        let config = ConsultantConfig::default();
        let before = pdmap_obs::snapshot().counter("consultant.early_cut");
        let seq = search(&t, &config);
        let after = pdmap_obs::snapshot().counter("consultant.early_cut");
        fn cuts(n: &ExperimentNode, depth: usize, config: &ConsultantConfig) -> u64 {
            let cut = depth < config.max_depth
                && (n.verdict == Verdict::False
                    || (n.verdict == Verdict::Unknown && n.note.is_some()));
            u64::from(cut)
                + n.children
                    .iter()
                    .map(|c| cuts(c, depth + 1, config))
                    .sum::<u64>()
        }
        let expected: u64 = seq.iter().map(|n| cuts(n, 0, &config)).sum();
        assert!(expected > 0, "COMM_HEAVY decides some hypotheses False");
        assert!(
            after - before >= expected,
            "each cut subtree increments the counter: {} < {expected}",
            after - before
        );
    }

    #[test]
    fn audit_flags_handcrafted_violations() {
        let bad = ExperimentNode {
            hypothesis: "Fabricated".into(),
            focus: Focus::whole_program(),
            value: 0.09,
            wall: 1.0,
            ratio: 0.09,
            interval: Interval::new(0.09, 0.12),
            coverage: Coverage {
                nodes_reporting: 3,
                nodes_total: 4,
                samples_lost: 0,
            },
            verdict: Verdict::False,
            note: None,
            children: Vec::new(),
        };
        let v = audit(&[bad], 0.10);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("Fabricated"), "{v:?}");
    }
}
