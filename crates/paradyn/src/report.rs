//! Whole-run performance reports: the front end's summary view combining
//! the metric table, per-resource profiles, the where axis, and the
//! Performance Consultant's conclusions.

use crate::consultant::{render as render_search, search_parallel, ConsultantConfig};
use crate::tool::Paradyn;
use crate::visi;
use pdmap::hierarchy::Focus;
use std::fmt::Write as _;

/// A per-resource profile: one metric measured at every refinement of a
/// parent focus.
#[derive(Clone, Debug)]
pub struct Profile {
    /// The metric name.
    pub metric: String,
    /// `(focus, value)` rows, sorted descending by value.
    pub rows: Vec<(Focus, f64)>,
    /// Wall seconds of the profiling run(s).
    pub wall: f64,
}

impl Profile {
    /// Renders as a bar chart.
    pub fn render(&self, width: usize) -> String {
        let max = self
            .rows
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let mut out = format!("{} by resource:\n", self.metric);
        for (focus, v) in &self.rows {
            let n = ((v / max) * width as f64).round() as usize;
            writeln!(
                out,
                "  {:<44} {:<width$} {v:.6}",
                focus.to_string(),
                "#".repeat(n)
            )
            .unwrap();
        }
        out
    }
}

/// Measures `metric` at every refinement candidate of `parent` (arrays,
/// statements, nodes — whichever hierarchies refine), one fresh run per
/// candidate, and returns the sorted profile.
pub fn profile(tool: &Paradyn, metric: &str, parent: &Focus) -> Profile {
    let mut rows = Vec::new();
    let mut wall = 0.0;
    for focus in tool.data().refinement_candidates(parent).iter() {
        if let Ok((v, w)) = tool.measure(metric, focus) {
            rows.push((focus.clone(), v));
            wall = w;
        }
    }
    sort_rows(&mut rows);
    Profile {
        metric: metric.to_string(),
        rows,
        wall,
    }
}

/// Sorts profile rows descending by value with a total order: `total_cmp`
/// instead of `partial_cmp`, so a NaN measurement cannot make the sort
/// comparator inconsistent (the old `unwrap_or(Equal)` fallback let NaN
/// rows land anywhere, varying run to run). Equal values tie-break by the
/// rendered focus name ascending, making the report order fully
/// deterministic.
fn sort_rows(rows: &mut [(Focus, f64)]) {
    rows.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
    });
}

/// Produces a complete textual run report for the loaded program.
pub fn run_report(tool: &Paradyn, consultant_config: &ConsultantConfig) -> String {
    let mut out = String::new();

    // 1. Whole-program metric table.
    let names: Vec<String> = tool
        .metrics()
        .metric_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let requests: Vec<_> = names
        .iter()
        .filter_map(|n| tool.request(n, &Focus::whole_program()).ok())
        .collect();
    let mut machine = tool.new_machine().expect("program loaded");
    let summary = machine.run();
    writeln!(
        out,
        "run: {} blocks, {} messages, {} broadcasts, wall {} ticks",
        summary.blocks_dispatched,
        summary.messages,
        summary.broadcasts,
        machine.wall_clock()
    )
    .unwrap();
    // A degraded fleet must be visible at the top of the report; with
    // complete coverage the line is omitted and the report is unchanged.
    let coverage = tool.session_coverage();
    if !coverage.is_complete() {
        writeln!(out, "coverage: {coverage}").unwrap();
    }
    // Likewise the cost of watching: when any fleet node self-observes,
    // its aggregated perturbation estimate heads the report; with no
    // telemetry the line is omitted and the report is unchanged.
    if let Some(p) = tool.fleet_perturbation() {
        writeln!(out, "perturbation: {p}").unwrap();
    }
    // And the healing: a session that lost connections and got them back
    // (readmission or subtree re-parenting) says so, with its gap bound;
    // a session that never failed prints nothing.
    if let Some(r) = tool.fleet_recovery() {
        writeln!(out, "recovery: {r}").unwrap();
    }
    out.push('\n');
    let rows: Vec<(String, String, String)> = requests
        .iter()
        .map(|r| {
            let v = r.value(&machine);
            let value = if r.decl.is_timer() {
                format!("{v:.6} s")
            } else {
                format!("{v}")
            };
            (r.decl.name.clone(), value, r.decl.description.clone())
        })
        .collect();
    out.push_str(&visi::table(&rows));

    // 2. Communication profile by resource.
    out.push('\n');
    out.push_str(&profile(tool, "Point-to-Point Operations", &Focus::whole_program()).render(24));

    // 3. Where axis (static + whatever dynamic info the run produced).
    out.push_str("\nwhere axis:\n");
    out.push_str(&tool.render_where_axis());

    // 4. Consultant conclusions — via the parallel frontier, which
    // renders byte-identical to the sequential baseline.
    out.push_str("\nPerformance Consultant:\n");
    out.push_str(&render_search(&search_parallel(tool, consultant_config)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmrts_sim::MachineConfig;

    fn tool() -> Paradyn {
        let mut t = Paradyn::new(MachineConfig {
            nodes: 4,
            ..MachineConfig::default()
        });
        t.load_source(cmf_lang::samples::FIGURE4).unwrap();
        t
    }

    #[test]
    fn profile_ranks_arrays_by_traffic() {
        let t = tool();
        // Populate dynamic subregions first so candidates exist.
        let mut m = t.new_machine().unwrap();
        m.run();
        let p = profile(&t, "Point-to-Point Operations", &Focus::whole_program());
        assert!(!p.rows.is_empty());
        // Sorted descending.
        assert!(p.rows.windows(2).all(|w| w[0].1 >= w[1].1));
        // A and B each see 4 messages during their reductions; node#0
        // (the tree root + CP return) tops the per-node rows or ties.
        let rendered = p.render(16);
        assert!(rendered.contains("CMFarrays"), "{rendered}");
    }

    #[test]
    fn profile_sort_is_total_and_tie_breaks_by_name() {
        let f = |path: &str| Focus::whole_program().select("CMFarrays", path);
        // Ties, a NaN, and out-of-order values, deliberately scrambled.
        let mut rows = vec![
            (f("/B"), 2.0),
            (f("/D"), f64::NAN),
            (f("/C"), 2.0),
            (f("/A"), 5.0),
            (f("/E"), 0.5),
        ];
        sort_rows(&mut rows);
        let order: Vec<String> = rows
            .iter()
            .map(|(focus, _)| focus.selection("CMFarrays").to_string())
            .collect();
        // total_cmp places NaN above every finite value in descending
        // order; the 2.0 tie resolves by rendered focus name. The order
        // is pinned: rerunning the same profile can never reshuffle it.
        assert_eq!(order, ["/D", "/A", "/B", "/C", "/E"]);
        // Sorting an already-sorted copy is a fixed point.
        let mut again = rows.clone();
        sort_rows(&mut again);
        let reordered: Vec<String> = again
            .iter()
            .map(|(focus, _)| focus.selection("CMFarrays").to_string())
            .collect();
        assert_eq!(order, reordered);
    }

    #[test]
    fn run_report_contains_all_sections() {
        let t = tool();
        let report = run_report(
            &t,
            &ConsultantConfig {
                threshold: 0.2,
                max_depth: 0,
            },
        );
        assert!(report.contains("Metric"));
        assert!(report.contains("Summations"));
        assert!(report.contains("by resource"));
        assert!(report.contains("where axis"));
        assert!(report.contains("Performance Consultant"));
        // Complete coverage stays invisible: no degradation banner, and
        // no perturbation banner without telemetry.
        assert!(!report.contains("coverage:"), "{report}");
        assert!(!report.contains("perturbation:"), "{report}");
    }

    #[test]
    fn fleet_perturbation_shows_one_banner_line() {
        use crate::daemonset::FleetPerturbation;
        let t = tool();
        let cfg = ConsultantConfig {
            threshold: 0.2,
            max_depth: 0,
        };
        let plain = run_report(&t, &cfg);
        t.set_fleet_perturbation(Some(FleetPerturbation {
            nodes: 3,
            spans: 120,
            overhead_ns: 3_000,
            reported_ns: 1_200_000,
        }));
        let observed = run_report(&t, &cfg);
        assert!(
            observed.contains(
                "perturbation: 3 nodes self-observing: 120 spans, \
                 ~3000 ns overhead / 1200000 ns reported (0.25%)"
            ),
            "{observed}"
        );
        // Clearing restores the exact telemetry-free report.
        t.set_fleet_perturbation(None);
        assert_eq!(run_report(&t, &cfg), plain);
    }

    #[test]
    fn degraded_session_shows_coverage_banner() {
        use crate::daemonset::{Coverage, SessionCoverage};
        let t = tool();
        let cfg = ConsultantConfig {
            threshold: 0.2,
            max_depth: 0,
        };
        let full = run_report(&t, &cfg);
        t.set_session_coverage(Some(SessionCoverage {
            coverage: Coverage {
                nodes_reporting: 3,
                nodes_total: 4,
                samples_lost: 2,
            },
            max_sample_cost: 0.5,
        }));
        let degraded = run_report(&t, &cfg);
        assert!(
            degraded.contains("coverage: 3/4 nodes reporting, >=2 samples lost"),
            "{degraded}"
        );
        // Clearing the label restores the exact full-coverage report.
        t.set_session_coverage(None);
        assert_eq!(run_report(&t, &cfg), full);
    }

    #[test]
    fn healed_session_shows_recovery_banner() {
        use crate::daemonset::RecoverySummary;
        let t = tool();
        let cfg = ConsultantConfig {
            threshold: 0.2,
            max_depth: 0,
        };
        let clean = run_report(&t, &cfg);
        assert!(!clean.contains("recovery:"), "{clean}");
        t.set_fleet_recovery(Some(RecoverySummary {
            readmissions: 1,
            reparents: 1,
            nodes_rehomed: 2,
            gap: 3,
        }));
        let healed = run_report(&t, &cfg);
        assert!(
            healed.contains(
                "recovery: 1 readmissions, 1 re-parents (2 nodes re-homed), >=3 samples gap"
            ),
            "{healed}"
        );
        // Clearing the rollup restores the exact failure-free report.
        t.set_fleet_recovery(None);
        assert_eq!(run_report(&t, &cfg), clean);
    }
}
