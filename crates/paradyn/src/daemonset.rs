//! Multi-daemon sessions: N `pdmapd` processes feeding one tool.
//!
//! §4.2.3: the real Paradyn runs "a daemon per node" and merges their
//! sample streams into one Data Manager. A [`DaemonSet`] is the tool side
//! of that topology: it connects to N daemon addresses over the
//! `pdmap-transport` frame protocol, pumps every link, routes each
//! connection's mapping information to its own [`DataManager`] shard, and
//! aligns each daemon's `wall` stamps onto the tool clock so the merged
//! stream sorts correctly.
//!
//! # Clock alignment
//!
//! `pdmap_obs::now_ns` is *per-process* (ns since that process's origin),
//! so two daemons' wall stamps are mutually meaningless — the offsets
//! between processes are arbitrary and large. [`DaemonSet::clock_sync`]
//! runs the classic bounded-round-trip exchange per daemon: the tool sends
//! [`DaemonMsg::ClockProbe`] carrying its clock `t0`, the daemon echoes it
//! back with its own clock `t_d`, and on receipt at `t1` the tool computes
//!
//! ```text
//! rtt    = t1 − t0
//! offset = t_d − (t0 + rtt/2)        // daemon clock − tool clock
//! ```
//!
//! The estimate's error is bounded by `rtt/2`; over several rounds the
//! minimum-RTT round wins (least queueing noise). Every sample from that
//! daemon is then mapped to tool time as `aligned = wall − offset`.
//!
//! # Sharding
//!
//! Connection `i` owns shard `i % shard_count` of the data manager, so N
//! daemons import mappings and deliver samples concurrently without
//! sharing a lock (see `datamgr`'s module docs for the invariants).
//!
//! # Supervision and partial failure
//!
//! §4.2.4 concedes that mapping information can be lost or delayed; a set
//! that assumes every daemon stays up silently biases every merged metric
//! the moment one dies. Each connection therefore carries a supervisor
//! state machine ([`DaemonHealth`]):
//!
//! ```text
//!            silence/errors            dead link or error burst
//! Healthy ──────────────────▶ Degraded ─────────────────────▶ Quarantined
//!    ▲                           │                                 │
//!    │                           ▼ (recovers on traffic)           │ retry with
//!    │◀──────────────────────────┘                                 │ capped backoff
//!    │                                                             ▼
//!    └──────────────────────── Recovered ◀─────────── reconnect + clock re-sync
//! ```
//!
//! [`DaemonSet::supervise`] drives the transitions from heartbeat age,
//! decode-error rate and clock-sync failures (thresholds in
//! [`SupervisorPolicy`]). Quarantined daemons are excluded from pumping
//! and retried with capped exponential backoff + jitter; a successful
//! retry re-dials (via the connection's reconnect factory), re-syncs the
//! clock, relies on the data manager's content-hash dedup to absorb the
//! re-shipped PIF, and logs a [`RecoveryReport`] with the sample-sequence
//! gap. Every transition bumps a `daemonset.*` counter so the tool's
//! self-mapping (`selfmap`) can display its own failure handling.
//!
//! Loss is *accounted*, never silent: [`Coverage`] labels every merged
//! result with how many nodes actually reported and a lower bound on the
//! samples lost (exact when the daemon announced its send count in a
//! [`DaemonMsg::Goodbye`]; otherwise the missing node itself is the
//! signal). A lost shard's cost is a bound, never silently zero.

use crate::daemon::{DaemonError, DaemonMsg};
use crate::datamgr::DataManager;
use crate::selfmap;
use crate::stream::Stream;
use cmrts_sim::machine::ArrayAllocInfo;
use cmrts_sim::ArrayId;
use pdmap::intern::Symbol;
use pdmap::interval::Interval;
use pdmap::model::Namespace;
use pdmap_transport::{
    send_wire, Frame, FrameKind, PifBlob, SampleBatch, TcpClient, TopoChild, TopologyMsg,
    Transport, TransportConfig, WirePayload,
};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::SocketAddr;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Locks a mutex, surviving poison: a panicked drain thread must not take
/// the whole session down with it.
///
/// NOTE for callers: [`DaemonSet::conn`] hands out a guard backed by one
/// of these mutexes, and the locks are not reentrant. Never let a `conn(i)`
/// temporary live across a second `conn(i)` — in edition 2021 a `match` or
/// `if let` scrutinee keeps its temporaries alive for every arm, which
/// turns the second lookup into a silent self-deadlock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tokens correlate clock probes with replies across all sessions in the
/// process; uniqueness is all that matters.
static TOKENS: AtomicU64 = AtomicU64::new(1);

/// A per-daemon clock-offset estimate (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClockEstimate {
    /// Daemon clock minus tool clock, in ns. Subtract from a daemon wall
    /// stamp to land on the tool clock.
    pub offset_ns: i64,
    /// Round-trip time of the winning (minimum-RTT) probe; the alignment
    /// error is bounded by half of this.
    pub rtt_ns: u64,
    /// Probe rounds that completed.
    pub rounds: u32,
}

/// A metric sample stamped onto the tool clock.
///
/// Names are shared `Arc<str>`s: a batched frame's dictionary is decoded
/// once and every sample in it references the same allocations, so the
/// root's per-sample drain cost is pointer copies, not string clones.
#[derive(Clone, Debug, PartialEq)]
pub struct AlignedSample {
    /// Index of the daemon connection that delivered it.
    pub daemon: usize,
    /// Metric display name.
    pub metric: Arc<str>,
    /// Focus, rendered.
    pub focus: Arc<str>,
    /// The daemon's original wall stamp (its own clock).
    pub wall: u64,
    /// The stamp mapped onto the tool clock (`wall − offset`).
    pub aligned_ns: u64,
    /// Sampled value.
    pub value: f64,
}

/// Clock synchronisation failed for one daemon (no reply within the
/// timeout — link dead or daemon not answering probes).
#[derive(Clone, Debug)]
pub struct ClockSyncError {
    /// Connection index within the set.
    pub daemon: usize,
    /// Address (or label) of the connection.
    pub addr: String,
}

impl fmt::Display for ClockSyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clock sync with daemon {} ({}) timed out",
            self.daemon, self.addr
        )
    }
}

impl std::error::Error for ClockSyncError {}

/// Supervisor state of one daemon connection (see the module docs for the
/// transition diagram).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DaemonHealth {
    /// Reporting normally.
    Healthy,
    /// Suspicious (stale heartbeat or elevated decode-error rate) but still
    /// pumped; recovers to Healthy on its own when traffic resumes.
    Degraded,
    /// Excluded from pumping; retried with capped backoff.
    Quarantined,
    /// Readmitted after a successful retry (fresh link, clock re-synced);
    /// becomes Healthy at the next supervision pass.
    Recovered,
}

impl DaemonHealth {
    /// Stable lowercase name, used in logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            DaemonHealth::Healthy => "healthy",
            DaemonHealth::Degraded => "degraded",
            DaemonHealth::Quarantined => "quarantined",
            DaemonHealth::Recovered => "recovered",
        }
    }
}

/// Thresholds driving the supervisor state machine.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorPolicy {
    /// Silence (no frame received) after which a connection is Degraded.
    pub degrade_after: Duration,
    /// Silence with a dead transport after which it is Quarantined.
    pub quarantine_after: Duration,
    /// Decode errors in the current life after which it is Degraded.
    pub degrade_errors: usize,
    /// Decode errors in the current life after which it is Quarantined.
    pub quarantine_errors: usize,
    /// Backoff schedule for readmission retries (capped exponential with
    /// deterministic jitter — the transport's own reconnect curve).
    pub retry: pdmap_transport::ReconnectPolicy,
    /// Clock-probe rounds a readmission retry must complete.
    pub retry_sync_rounds: u32,
    /// Budget for those rounds; an unanswered retry fails and backs off.
    pub retry_sync_timeout: Duration,
    /// When true, quarantining a connection that announced a topology (a
    /// relay) re-parents its orphaned children: the supervisor dials each
    /// child directly, seeds its replay watermark from the relay's last
    /// announcement, and folds the subtree back into coverage. Off by
    /// default: without failover-aware daemons (`pdmapd --failover-ms`),
    /// a dark subtree should stay visibly dark, not half-adopted.
    pub adopt_orphans: bool,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            degrade_after: Duration::from_secs(2),
            quarantine_after: Duration::from_secs(4),
            degrade_errors: 8,
            quarantine_errors: 64,
            retry: pdmap_transport::ReconnectPolicy::default(),
            retry_sync_rounds: 3,
            retry_sync_timeout: Duration::from_secs(2),
            adopt_orphans: false,
        }
    }
}

/// How much of the fleet a merged answer actually covers. Attached to
/// [`DaemonSet::merged_samples`]/[`DaemonSet::merged_streams`] (and, via
/// the tool layer, to metric request results) so a degraded answer is
/// *labeled* degraded: a lost shard shows up as `nodes_reporting <
/// nodes_total` and a `samples_lost` lower bound, never as a silent zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Daemons currently admitted to the session (not quarantined).
    pub nodes_reporting: usize,
    /// Daemons the session was built over.
    pub nodes_total: usize,
    /// Lower bound on samples lost: exact per-daemon when the daemon
    /// announced its send count in a [`DaemonMsg::Goodbye`]; a daemon that
    /// died unannounced contributes only to the node deficit (its loss is
    /// unknowable, which is precisely why it must not read as zero).
    pub samples_lost: u64,
}

impl Coverage {
    /// True when every node reported and no announced sample is missing.
    pub fn is_complete(&self) -> bool {
        self.nodes_reporting == self.nodes_total && self.samples_lost == 0
    }

    /// Complete coverage over `nodes` nodes — what a single-process tool
    /// stamps on its own results.
    pub fn complete(nodes: usize) -> Self {
        Self {
            nodes_reporting: nodes,
            nodes_total: nodes,
            samples_lost: 0,
        }
    }

    /// The fraction of the fleet that is *not* reporting:
    /// `1 - nodes_reporting/nodes_total` (zero for an empty fleet).
    pub fn missing_fraction(&self) -> f64 {
        if self.nodes_total == 0 {
            0.0
        } else {
            1.0 - self.nodes_reporting as f64 / self.nodes_total as f64
        }
    }

    /// Bounds the true total metric mass given what was actually observed.
    ///
    /// `observed` is the mass accumulated from the reporting part of the
    /// fleet; `max_per_sample` is the largest per-sample contribution seen
    /// (so lost samples can be bounded). The returned interval:
    ///
    /// * `lo = observed` — missing contributions are nonnegative, so the
    ///   observed mass is a genuine lower bound;
    /// * `hi = (observed + samples_lost × max_per_sample) × total/reporting`
    ///   — lost samples each contributed at most the max observed cost,
    ///   and each silent node at most as much, pro-rata, as the reporting
    ///   ones plus their share of the lost mass.
    ///
    /// Complete coverage collapses to the point `[observed, observed]`, so
    /// interval-aware consumers reproduce point-estimate behaviour exactly
    /// when nothing was lost. A fleet with *no* reporting nodes yields
    /// `[0, +inf)`: nothing was observed, nothing is ruled out. The width
    /// is monotone in both `samples_lost` and the node deficit.
    pub fn bound_mass(&self, observed: f64, max_per_sample: f64) -> Interval {
        if self.nodes_reporting == 0 && self.nodes_total > 0 {
            return Interval::unknown();
        }
        let lost_mass = self.samples_lost as f64 * max_per_sample.max(0.0);
        let scale = if self.nodes_reporting > 0 {
            self.nodes_total as f64 / self.nodes_reporting as f64
        } else {
            1.0
        };
        Interval::new(observed, (observed + lost_mass) * scale)
    }
}

/// The per-session label a multi-daemon frontend pushes into a
/// [`crate::tool::Paradyn`]: the fleet's [`Coverage`] plus the largest
/// per-sample metric contribution observed so far (the bound used to price
/// lost samples in [`Coverage::bound_mass`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionCoverage {
    /// How much of the fleet is reporting.
    pub coverage: Coverage,
    /// Largest per-sample value seen on the merged stream; `0.0` when the
    /// session has seen no samples (the lost-mass term then vanishes, but
    /// the node-deficit widening still applies).
    pub max_sample_cost: f64,
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} nodes reporting, >={} samples lost",
            self.nodes_reporting, self.nodes_total, self.samples_lost
        )
    }
}

/// One successful readmission, recorded by [`DaemonSet::supervise`].
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Connection index within the set.
    pub daemon: usize,
    /// Address (or label) of the connection.
    pub addr: String,
    /// Failed retries before the one that succeeded.
    pub attempts: u32,
    /// The previous life's sample-sequence gap: `Some(n)` when that life
    /// ended with a Goodbye announcing its send count (n = announced −
    /// received), `None` when the daemon died without announcing.
    pub gap: Option<u64>,
}

/// A one-line rollup of the session's recovery history — readmissions,
/// subtree re-parentings, and the total announced gap across both — the
/// label run_report prints as its `recovery:` banner. Built by
/// [`DaemonSet::recovery_summary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Quarantined connections successfully readmitted.
    pub readmissions: usize,
    /// Dead relays whose subtrees were re-parented.
    pub reparents: usize,
    /// Orphaned children re-homed as direct connections.
    pub nodes_rehomed: usize,
    /// Total announced sample gap across those events — a lower bound
    /// (lives that died unannounced contribute nothing here).
    pub gap: u64,
}

impl fmt::Display for RecoverySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} readmissions, {} re-parents ({} nodes re-homed), >={} samples gap",
            self.readmissions, self.reparents, self.nodes_rehomed, self.gap
        )
    }
}

/// One subtree re-parenting, recorded by [`DaemonSet::supervise`] when a
/// quarantined relay's orphaned children were adopted as direct
/// connections (see [`SupervisorPolicy::adopt_orphans`]).
#[derive(Clone, Debug)]
pub struct ReparentReport {
    /// Connection index of the quarantined relay.
    pub daemon: usize,
    /// Address (or label) of the quarantined relay.
    pub addr: String,
    /// Addresses of the children adopted from its last topology
    /// announcement (in announcement order).
    pub subtree: Vec<String>,
    /// The relay's own announced-minus-received gap at quarantine time:
    /// `Some(n)` when its life ended with a Goodbye, `None` when it died
    /// unannounced. The *children's* in-flight batches are not part of
    /// this gap — they replay to the new parent and dedup by sequence.
    pub gap: Option<u64>,
    /// The set-wide topology epoch this adoption established.
    pub epoch: u64,
}

/// A factory producing a fresh tool-side transport for a daemon — how a
/// quarantined connection is re-dialed (possibly at a new address, if the
/// daemon restarted on a different port).
pub type ReconnectFn = Box<dyn Fn() -> Arc<dyn Transport> + Send>;

/// Dials an arbitrary address on behalf of the set — how orphaned subtree
/// members (addresses learned only at quarantine time, from the dead
/// relay's topology announcement) are adopted. `Arc` so per-connection
/// reconnect factories for adopted children can share it.
pub type DialFn = Arc<dyn Fn(SocketAddr) -> Arc<dyn Transport> + Send + Sync>;

/// Health telemetry about one fleet node, assembled from the `Obs *`
/// samples the node ships about itself under a
/// [`selfmap::OBS_FOCUS_PREFIX`] focus (see `pdmapd --obs-period`).
///
/// Keyed by the node's focus label, *not* by connection: a relay's link
/// multiplexes its whole subtree, so one connection can carry many nodes'
/// telemetry — and a leaf that dies behind a healthy relay goes stale
/// here while the relay's connection stays green.
#[derive(Clone, Debug)]
pub struct NodeHealth {
    /// Connection index that last delivered this node's telemetry.
    pub daemon: usize,
    /// The node's focus label, e.g. `Tool/daemon:127.0.0.1:7001`.
    pub label: String,
    /// Tool-side arrival time of the freshest telemetry sample.
    pub last_seen: Instant,
    /// Latest aligned (tool-clock) stamp on this node's telemetry.
    pub last_aligned_ns: u64,
    /// Telemetry samples received from this node so far.
    pub samples: u64,
    /// Latest value per telemetry metric name.
    metrics: HashMap<Arc<str>, f64>,
}

impl NodeHealth {
    /// The latest value of one telemetry metric, if the node reported it.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// All metric names this node has reported (unordered).
    pub fn metric_names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(|k| &**k)
    }

    /// Rebuilds `(component, verb, count, total_ns)` span-site totals from
    /// the node's Time/Count rows — the shape [`selfmap::ask_obs_totals`]
    /// answers questions over. Counter, perturbation and subtree rows do
    /// not parse as sites and are excluded by construction.
    pub fn site_totals(&self) -> Vec<selfmap::SiteTotal> {
        let mut by_site: HashMap<(String, String), (u64, u64)> = HashMap::new();
        for (name, &v) in &self.metrics {
            let Some((component, verb, is_time)) = selfmap::parse_obs_metric(name) else {
                continue;
            };
            let entry = by_site
                .entry((component.to_string(), verb.to_string()))
                .or_default();
            if is_time {
                entry.1 = v as u64;
            } else {
                entry.0 = v as u64;
            }
        }
        by_site
            .into_iter()
            .map(|((c, v), (count, total_ns))| (c, v, count, total_ns))
            .collect()
    }
}

/// The tool's live view of fleet self-telemetry: one [`NodeHealth`] per
/// reporting node, updated as `Obs *` samples drain through the set. A
/// node that *never* reported is invisible here — heartbeat silence (the
/// supervisor's existing signal) covers that case; this view catches the
/// node that was reporting and stopped.
#[derive(Clone, Debug, Default)]
pub struct FleetHealth {
    nodes: Vec<NodeHealth>,
}

impl FleetHealth {
    /// Every node seen so far, in first-report order.
    pub fn nodes(&self) -> &[NodeHealth] {
        &self.nodes
    }

    /// The node reporting under `label`, if any.
    pub fn node(&self, label: &str) -> Option<&NodeHealth> {
        self.nodes.iter().find(|n| n.label == label)
    }

    /// Number of nodes that have reported telemetry.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has reported yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes whose freshest telemetry is at least `max_age` old — nodes
    /// that were reporting and went dark.
    pub fn stale(&self, max_age: Duration) -> Vec<&NodeHealth> {
        let now = Instant::now();
        self.nodes
            .iter()
            .filter(|n| now.duration_since(n.last_seen) >= max_age)
            .collect()
    }

    /// True when connection `i` has delivered telemetry and *all* of it
    /// has gone stale — the per-connection degrade signal. One stale leaf
    /// behind a busy relay does not trip this; the whole link's telemetry
    /// falling silent does.
    fn conn_stale(&self, i: usize, now: Instant, max_age: Duration) -> bool {
        let mut any = false;
        for n in &self.nodes {
            if n.daemon == i {
                any = true;
                if now.duration_since(n.last_seen) < max_age {
                    return false;
                }
            }
        }
        any
    }

    /// Folds one telemetry sample into the node it describes.
    fn observe(&mut self, s: &AlignedSample) {
        match self.nodes.iter_mut().find(|n| *n.label == *s.focus) {
            Some(n) => {
                n.daemon = s.daemon;
                n.last_seen = Instant::now();
                n.last_aligned_ns = n.last_aligned_ns.max(s.aligned_ns);
                n.samples += 1;
                n.metrics.insert(s.metric.clone(), s.value);
            }
            None => {
                let mut metrics = HashMap::new();
                metrics.insert(s.metric.clone(), s.value);
                self.nodes.push(NodeHealth {
                    daemon: s.daemon,
                    label: s.focus.to_string(),
                    last_seen: Instant::now(),
                    last_aligned_ns: s.aligned_ns,
                    samples: 1,
                    metrics,
                });
            }
        }
    }
}

/// Fleet-wide perturbation rollup: the sum of every reporting node's
/// self-measured observation cost (see `pdmap_obs::PerturbationReport`),
/// assembled from the four `Obs perturbation *` telemetry rows.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FleetPerturbation {
    /// Nodes whose telemetry included a perturbation estimate.
    pub nodes: usize,
    /// Total spans recorded across those nodes.
    pub spans: u64,
    /// Estimated total measurement overhead, ns (spans × each node's
    /// calibrated null-span cost).
    pub overhead_ns: u64,
    /// Total span nanoseconds those nodes reported (pre-correction).
    pub reported_ns: u64,
}

impl FleetPerturbation {
    /// Overhead as a fraction of reported span time (0 when nothing was
    /// reported — no evidence of perturbation is not evidence of none,
    /// but there is nothing to scale against).
    pub fn overhead_fraction(&self) -> f64 {
        if self.reported_ns == 0 {
            0.0
        } else {
            self.overhead_ns as f64 / self.reported_ns as f64
        }
    }
}

impl fmt::Display for FleetPerturbation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes self-observing: {} spans, ~{} ns overhead / {} ns reported ({:.2}%)",
            self.nodes,
            self.spans,
            self.overhead_ns,
            self.reported_ns,
            self.overhead_fraction() * 100.0
        )
    }
}

/// One daemon connection: its transport, shard assignment, clock estimate,
/// supervisor state, and per-connection tallies.
pub struct DaemonConn {
    addr: String,
    tx: Arc<dyn Transport>,
    shard: usize,
    clock: ClockEstimate,
    samples_received: u64,
    pif_imports: u64,
    decode_errors: Vec<DaemonError>,
    health: DaemonHealth,
    /// When the last frame (of any kind) arrived on this link.
    last_frame: Instant,
    /// `decode_errors.len()` when the current life started, so error-rate
    /// thresholds look at the current link, not ancient history.
    errors_at_life_start: usize,
    /// Samples received in the current life (since connect or readmission).
    life_received: u64,
    /// Send count the current life's Goodbye announced, if any.
    announced_sent: Option<u64>,
    /// Known losses folded in from previous lives.
    lost_prior: u64,
    retry_attempt: u32,
    next_retry: Option<Instant>,
    reconnect: Option<ReconnectFn>,
    /// Shared `Arc<str>` names for the *unbatched* sample path: a daemon
    /// that sends loose [`DaemonMsg::Sample`]s repeats the same handful of
    /// metric/focus strings per sample, so they are interned here and every
    /// [`AlignedSample`] shares the allocation — the same economy the
    /// batched path gets from its frame dictionary.
    interned: HashSet<Arc<str>>,
    /// The latest [`DaemonMsg::SubtreeCoverage`] this peer reported —
    /// present when the peer is a relay aggregating a subtree, absent for
    /// a leaf daemon (which counts as a 1/1 subtree).
    subtree: Option<Coverage>,
    /// Highest [`SampleBatch::seq`] folded in on this link — the dedup
    /// watermark that suppresses replayed batches after a handover.
    last_seq: u64,
    /// Replayed batches suppressed by the sequence watermark.
    replays_suppressed: u64,
    /// Samples this node delivered to a *previous* parent before we
    /// adopted it — accounted as received, not lost, when closing its
    /// announced-vs-received ledger.
    prior_received: u64,
    /// The peer's latest topology announcement (its children and their
    /// per-child watermarks) — the adoption map if this relay dies.
    topo: Option<TopologyMsg>,
    /// Cumulative per-grandchild source marks folded from this link's
    /// batches: `origin -> (through_seq, samples)`. Delivered-atomic, so
    /// they seed exact replay watermarks when grandchildren are adopted.
    source_marks: HashMap<String, (u64, u64)>,
    /// This (dead) connection's subtree was re-parented: its nodes now
    /// report through other connections, so it must contribute neither
    /// nodes nor a retry — only its own already-known loss.
    subtree_adopted: bool,
    /// Watermark seed still owed to this (adopted) child: sent after the
    /// first successful clock sync so the orphan can replay its ring
    /// suffix. `(through_seq, samples)` from the dead parent's marks.
    seed_watermark: Option<(u64, u64)>,
}

impl DaemonConn {
    /// Address or label this connection was opened with.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The data-manager shard this connection feeds.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The clock estimate from the last [`DaemonSet::clock_sync`].
    pub fn clock(&self) -> ClockEstimate {
        self.clock
    }

    /// Samples delivered by this daemon so far.
    pub fn samples_received(&self) -> u64 {
        self.samples_received
    }

    /// PIF blobs received from this daemon (including duplicates of
    /// already-imported catalogues).
    pub fn pif_imports(&self) -> u64 {
        self.pif_imports
    }

    /// Decode/receive errors on this link.
    pub fn decode_errors(&self) -> &[DaemonError] {
        &self.decode_errors
    }

    /// Current supervisor state.
    pub fn health(&self) -> DaemonHealth {
        self.health
    }

    /// This connection's known sample loss: previous lives' announced gaps
    /// plus the current life's (once its Goodbye arrives). A lower bound —
    /// a daemon killed before announcing contributes nothing here, only to
    /// the coverage node deficit.
    pub fn samples_lost(&self) -> u64 {
        self.lost_prior
            + self
                .announced_sent
                .map(|a| a.saturating_sub(self.life_received + self.prior_received))
                .unwrap_or(0)
    }

    /// Replayed batches this link's sequence watermark suppressed — each
    /// one a duplicate that a handover replayed and dedup caught.
    pub fn replays_suppressed(&self) -> u64 {
        self.replays_suppressed
    }

    /// The peer's latest topology announcement, if it is a relay.
    pub fn topology(&self) -> Option<&TopologyMsg> {
        self.topo.as_ref()
    }

    /// True when this connection's subtree was re-parented after
    /// quarantine — its nodes now report through other connections.
    pub fn is_subtree_adopted(&self) -> bool {
        self.subtree_adopted
    }

    /// The send count announced by this life's Goodbye, if it arrived.
    pub fn announced_sent(&self) -> Option<u64> {
        self.announced_sent
    }

    /// The subtree coverage this peer last reported — `Some` when the peer
    /// is a relay, `None` for a leaf daemon.
    pub fn subtree_coverage(&self) -> Option<Coverage> {
        self.subtree
    }

    /// This end's transport self-metrics.
    pub fn transport_stats(&self) -> pdmap_transport::TransportStats {
        self.tx.stats()
    }

    /// Decode errors in the current life (since connect or readmission).
    fn life_errors(&self) -> usize {
        self.decode_errors
            .len()
            .saturating_sub(self.errors_at_life_start)
    }

    /// Maps a daemon wall stamp onto the tool clock.
    fn align(&self, wall: u64) -> u64 {
        (wall as i64 - self.clock.offset_ns).max(0) as u64
    }

    /// The shared `Arc<str>` for `s`, allocated on first sight only — so
    /// an unbatched sample costs one allocation per *distinct* name, not
    /// one per sample.
    fn intern(&mut self, s: String) -> Arc<str> {
        match self.interned.get(s.as_str()) {
            Some(shared) => shared.clone(),
            None => {
                let shared: Arc<str> = s.into();
                self.interned.insert(shared.clone());
                shared
            }
        }
    }

    /// Drains every frame currently queued on this link into `out`,
    /// forwarding mapping information to `data`'s shard. If `want_token`
    /// is set, a matching clock reply is returned (and not dispatched).
    /// Returns `(frames_processed, matched_reply_t_daemon)`.
    fn drain(
        &mut self,
        data: &DataManager,
        out: &mut Vec<AlignedSample>,
        index: usize,
        want_token: Option<u64>,
    ) -> (usize, Option<u64>) {
        let mut n = 0;
        loop {
            match self.tx.try_recv() {
                Ok(Some(frame)) => {
                    n += 1;
                    self.last_frame = Instant::now();
                    if let Some(t_d) = self.dispatch(frame, data, out, index, want_token) {
                        return (n, Some(t_d));
                    }
                }
                Ok(None) => return (n, None),
                Err(e) => {
                    // Same contract as `Daemon::pump`: a link failure is
                    // recorded (and counted as `daemon.error.recv`), never
                    // silently swallowed; sticky repeats are deduped.
                    let err = crate::daemon::track_error(DaemonError::Recv(e.to_string()));
                    if self.decode_errors.last() != Some(&err) {
                        self.decode_errors.push(err);
                    }
                    return (n, None);
                }
            }
        }
    }

    /// Drains this link like [`DaemonConn::drain`], but batched samples
    /// decode straight to columns and land in the data manager's shard
    /// buffer — no per-sample structs, no `Arc` refcount traffic. Every
    /// other frame kind (control frames, loose samples, PIF blobs) takes
    /// the usual [`DaemonConn::dispatch`] path; those are cold.
    fn drain_columns(
        &mut self,
        data: &DataManager,
        out: &mut Vec<AlignedSample>,
        index: usize,
    ) -> usize {
        let mut n = 0;
        loop {
            match self.tx.try_recv() {
                Ok(Some(frame)) => {
                    n += 1;
                    self.last_frame = Instant::now();
                    if frame.kind == FrameKind::SampleBatch {
                        self.fold_batch_columns(&frame, data, index);
                    } else {
                        self.dispatch(frame, data, out, index, None);
                    }
                }
                Ok(None) => return n,
                Err(e) => {
                    let err = crate::daemon::track_error(DaemonError::Recv(e.to_string()));
                    if self.decode_errors.last() != Some(&err) {
                        self.decode_errors.push(err);
                    }
                    return n;
                }
            }
        }
    }

    /// The columnar twin of the `SampleBatch` arm of
    /// [`DaemonConn::dispatch`]: identical sequence-watermark dedup,
    /// provenance folding, and conservation accounting — only the sample
    /// payload takes the columnar route into the shard buffer.
    fn fold_batch_columns(&mut self, frame: &Frame, data: &DataManager, index: usize) {
        match SampleBatch::columns_from_frame(frame) {
            Ok(cols) => {
                if cols.seq != 0 && cols.seq <= self.last_seq {
                    self.replays_suppressed += 1;
                    return;
                }
                if cols.seq != 0 {
                    self.last_seq = cols.seq;
                }
                for m in &cols.sources {
                    let e = self.source_marks.entry(m.origin.clone()).or_insert((0, 0));
                    if m.through_seq >= e.0 {
                        *e = (m.through_seq, m.samples);
                    }
                }
                let n = cols.len() as u64;
                self.samples_received += n;
                self.life_received += n;
                // `append_columns_on` moves the shard's sample counters
                // itself — the columnar `note_samples_on`.
                data.append_columns_on(self.shard, index as u32, self.clock.offset_ns, &cols);
            }
            Err(e) => self
                .decode_errors
                .push(crate::daemon::track_error(DaemonError::Codec(e.0))),
        }
    }

    fn dispatch(
        &mut self,
        frame: Frame,
        data: &DataManager,
        out: &mut Vec<AlignedSample>,
        index: usize,
        want_token: Option<u64>,
    ) -> Option<u64> {
        match frame.kind {
            FrameKind::Daemon => match DaemonMsg::from_frame(&frame) {
                Ok(DaemonMsg::ArrayAllocated {
                    id,
                    name,
                    extents,
                    dist,
                    subgrids,
                }) => {
                    data.array_allocated_on(
                        self.shard,
                        &ArrayAllocInfo {
                            array: ArrayId(id),
                            name,
                            extents,
                            dist,
                            subgrids,
                        },
                    );
                }
                Ok(DaemonMsg::ArrayFreed { id }) => data.array_freed_on(self.shard, ArrayId(id)),
                Ok(DaemonMsg::Sample {
                    metric,
                    focus,
                    wall,
                    value,
                }) => {
                    self.samples_received += 1;
                    self.life_received += 1;
                    data.note_samples_on(self.shard, 1);
                    out.push(AlignedSample {
                        daemon: index,
                        metric: self.intern(metric),
                        focus: self.intern(focus),
                        wall,
                        aligned_ns: self.align(wall),
                        value,
                    });
                }
                Ok(DaemonMsg::ClockReply {
                    token, t_daemon_ns, ..
                }) if want_token == Some(token) => return Some(t_daemon_ns),
                Ok(DaemonMsg::Goodbye { samples_sent }) => {
                    // The daemon's final flush frame: its side of the
                    // conservation law, making this life's loss exact.
                    self.announced_sent = Some(samples_sent as u64);
                }
                Ok(DaemonMsg::SubtreeCoverage {
                    nodes_reporting,
                    nodes_total,
                    samples_lost,
                }) => {
                    // The peer is a relay: remember how much of its subtree
                    // is alive so [`DaemonSet::coverage`] composes fleet
                    // coverage instead of counting the relay as one node.
                    self.subtree = Some(Coverage {
                        nodes_reporting: nodes_reporting as usize,
                        nodes_total: nodes_total as usize,
                        samples_lost,
                    });
                }
                // A reply for an abandoned round, a probe echoed back, or a
                // shutdown request bouncing to the tool side: stale, carries
                // nothing to forward.
                Ok(DaemonMsg::ClockReply { .. })
                | Ok(DaemonMsg::ClockProbe { .. })
                | Ok(DaemonMsg::Shutdown) => {}
                Err(e) => self
                    .decode_errors
                    .push(crate::daemon::track_error(DaemonError::Codec(e.0))),
            },
            FrameKind::SampleBatch => match SampleBatch::from_frame(&frame) {
                Ok(batch) => {
                    // Sequence-watermark dedup: a handover replays the
                    // sender's ring suffix, and anything we already folded
                    // in arrives again with a seq at or below our
                    // watermark. Seq 0 is a legacy unsequenced batch —
                    // never deduped.
                    if batch.seq != 0 && batch.seq <= self.last_seq {
                        self.replays_suppressed += 1;
                        return None;
                    }
                    if batch.seq != 0 {
                        self.last_seq = batch.seq;
                    }
                    // Cumulative per-grandchild provenance: a mark in this
                    // batch proves everything through its `through_seq`
                    // already arrived here — the exact replay watermark if
                    // this relay dies and we adopt its children.
                    for m in &batch.sources {
                        let e = self.source_marks.entry(m.origin.clone()).or_insert((0, 0));
                        if m.through_seq >= e.0 {
                            *e = (m.through_seq, m.samples);
                        }
                    }
                    let n = batch.samples.len() as u64;
                    self.samples_received += n;
                    self.life_received += n;
                    data.note_samples_on(self.shard, n);
                    let offset = self.clock.offset_ns;
                    out.extend(batch.samples.into_iter().map(|s| AlignedSample {
                        daemon: index,
                        aligned_ns: (s.wall as i64 - offset).max(0) as u64,
                        metric: s.metric,
                        focus: s.focus,
                        wall: s.wall,
                        value: s.value,
                    }));
                }
                Err(e) => self
                    .decode_errors
                    .push(crate::daemon::track_error(DaemonError::Codec(e.0))),
            },
            FrameKind::PifBlob => {
                match PifBlob::from_frame(&frame) {
                    Ok(blob) => {
                        self.pif_imports += 1;
                        match String::from_utf8(blob.0) {
                            Ok(text) => {
                                if let Err(e) = data.import_pif_text(self.shard, &text) {
                                    self.decode_errors.push(crate::daemon::track_error(
                                        DaemonError::Codec(format!("pif parse: {e}")),
                                    ));
                                }
                            }
                            Err(_) => self.decode_errors.push(crate::daemon::track_error(
                                DaemonError::Codec("pif blob is not utf-8".into()),
                            )),
                        }
                    }
                    Err(e) => self
                        .decode_errors
                        .push(crate::daemon::track_error(DaemonError::Codec(e.0))),
                }
            }
            FrameKind::Topology => match TopologyMsg::from_frame(&frame) {
                Ok(msg) => {
                    // A relay announcing its children (and their per-child
                    // watermarks) — the map the supervisor adopts from if
                    // this link dies. A self-beacon (one entry naming the
                    // origin itself) carries no subtree and is ignored:
                    // leaves beacon standby relays, not the tool.
                    let beacon = msg.children.len() == 1 && msg.children[0].addr == msg.origin;
                    if !beacon {
                        self.topo = Some(msg);
                    }
                }
                Err(e) => self
                    .decode_errors
                    .push(crate::daemon::track_error(DaemonError::Codec(e.0))),
            },
            // Heartbeats/acks/hellos are consumed inside the transport;
            // anything else surfacing here has no daemon-channel meaning.
            _ => {}
        }
        None
    }
}

/// Cached `pdmap-obs` counters for supervisor transitions, so the tool's
/// own failure handling shows up in its self-mapping.
struct SetObs {
    quarantine: Arc<pdmap_obs::Counter>,
    degraded: Arc<pdmap_obs::Counter>,
    recovered: Arc<pdmap_obs::Counter>,
    retry: Arc<pdmap_obs::Counter>,
    /// Workers spawned into drain pools (`daemonset.pool.workers`) — the
    /// fleet-wide pool size, since pools never shrink.
    pool_workers: Arc<pdmap_obs::Counter>,
    /// Parallel drain passes dispatched (`daemonset.pool.drains`).
    pool_drains: Arc<pdmap_obs::Counter>,
    /// Degrades triggered by stale self-telemetry (`daemonset.obs_stale`).
    obs_stale: Arc<pdmap_obs::Counter>,
    /// Subtrees re-parented after relay quarantine (`daemonset.reparent`).
    reparent: Arc<pdmap_obs::Counter>,
    /// Orphaned children adopted as direct conns (`daemonset.adopted`).
    adopted: Arc<pdmap_obs::Counter>,
}

fn set_obs() -> &'static SetObs {
    static OBS: std::sync::OnceLock<SetObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| SetObs {
        quarantine: pdmap_obs::counter("daemonset.quarantine"),
        degraded: pdmap_obs::counter("daemonset.degraded"),
        recovered: pdmap_obs::counter("daemonset.recovered"),
        retry: pdmap_obs::counter("daemonset.retry"),
        pool_workers: pdmap_obs::counter("daemonset.pool.workers"),
        pool_drains: pdmap_obs::counter("daemonset.pool.drains"),
        obs_stale: pdmap_obs::counter("daemonset.obs_stale"),
        reparent: pdmap_obs::counter("daemonset.reparent"),
        adopted: pdmap_obs::counter("daemonset.adopted"),
    })
}

/// One parallel-drain dispatch: the admitted connections to drain this
/// epoch, a shared cursor, and the accumulated results.
struct PoolEpoch {
    /// `(connection index, connection)` pairs still to drain; workers claim
    /// them through `cursor` so a slow link never blocks the others.
    jobs: Vec<(usize, Arc<Mutex<DaemonConn>>)>,
    cursor: usize,
    /// Workers that have not finished the current epoch.
    active: usize,
    frames: usize,
    samples: Vec<AlignedSample>,
    data: Option<Arc<DataManager>>,
}

struct PoolShared {
    state: Mutex<(u64, bool, PoolEpoch)>, // (epoch, shutdown, work)
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A persistent bounded worker pool draining daemon connections — the
/// fleet-scale replacement for thread-per-connection scoped spawns. Built
/// lazily at the first [`DaemonSet::pump_parallel`] with
/// `min(connections, available_parallelism)` workers, which then live for
/// the session: each drain pass is a condvar wakeup, not N thread spawns.
struct DrainPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DrainPool {
    fn new(size: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new((
                0,
                false,
                PoolEpoch {
                    jobs: Vec::new(),
                    cursor: 0,
                    active: 0,
                    frames: 0,
                    samples: Vec::new(),
                    data: None,
                },
            )),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..size.max(1))
            .map(|_| {
                let shared = shared.clone();
                set_obs().pool_workers.incr();
                std::thread::Builder::new()
                    .name("pdmap-drain".into())
                    .spawn(move || Self::worker(&shared))
                    .expect("spawn drain worker")
            })
            .collect();
        Self { shared, workers }
    }

    fn worker(shared: &PoolShared) {
        let mut seen_epoch = 0u64;
        loop {
            let mut st = lock(&shared.state);
            while st.0 == seen_epoch && !st.1 {
                // Timed wait as defense-in-depth: the predicate re-check
                // every few milliseconds bounds the damage of any missed
                // handoff on a heavily oversubscribed host at 5 ms of
                // latency instead of a hang.
                st = shared
                    .work_cv
                    .wait_timeout(st, Duration::from_millis(5))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
            if st.1 {
                return;
            }
            seen_epoch = st.0;
            let data = st.2.data.clone();
            let mut local_frames = 0usize;
            let mut local_samples: Vec<AlignedSample> = Vec::new();
            loop {
                let job = if st.2.cursor < st.2.jobs.len() {
                    let j = st.2.jobs[st.2.cursor].clone();
                    st.2.cursor += 1;
                    Some(j)
                } else {
                    None
                };
                match job {
                    Some((index, cell)) => {
                        drop(st); // drain off-lock so workers overlap
                        if let Some(data) = data.as_deref() {
                            let mut conn = lock(&cell);
                            local_frames += conn.drain(data, &mut local_samples, index, None).0;
                        }
                        st = lock(&shared.state);
                    }
                    None => break,
                }
            }
            st.2.frames += local_frames;
            st.2.samples.append(&mut local_samples);
            st.2.active -= 1;
            if st.2.active == 0 {
                shared.done_cv.notify_all();
            }
        }
    }

    /// Dispatches one drain pass over `jobs` and blocks until every job has
    /// been drained. Returns `(frames, samples)` merged across workers.
    fn run(
        &self,
        jobs: Vec<(usize, Arc<Mutex<DaemonConn>>)>,
        data: Arc<DataManager>,
    ) -> (usize, Vec<AlignedSample>) {
        set_obs().pool_drains.incr();
        let mut st = lock(&self.shared.state);
        st.2.jobs = jobs;
        st.2.cursor = 0;
        st.2.frames = 0;
        st.2.samples.clear();
        st.2.data = Some(data);
        st.2.active = self.workers.len();
        st.0 += 1;
        self.shared.work_cv.notify_all();
        while st.2.active > 0 {
            // Same timed re-check as the worker's wait.
            st = self
                .shared
                .done_cv
                .wait_timeout(st, Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        st.2.jobs.clear();
        st.2.data = None;
        (st.2.frames, std::mem::take(&mut st.2.samples))
    }

    fn size(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for DrainPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.1 = true;
        }
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Runs `rounds` bounded-round-trip probe rounds against one daemon and
/// returns the minimum-RTT estimate, or `None` if no round completed.
/// Frames that arrive while waiting (samples, mappings) are dispatched
/// normally, not dropped.
fn sync_conn(
    conn: &mut DaemonConn,
    data: &DataManager,
    out: &mut Vec<AlignedSample>,
    index: usize,
    rounds: u32,
    timeout: Duration,
) -> Option<ClockEstimate> {
    let mut best: Option<ClockEstimate> = None;
    let mut done = 0u32;
    for _ in 0..rounds.max(1) {
        let token = TOKENS.fetch_add(1, Ordering::Relaxed);
        let t0 = pdmap_obs::now_ns();
        if send_wire(
            &*conn.tx,
            &DaemonMsg::ClockProbe {
                token,
                t_tool_ns: t0,
            },
        )
        .is_err()
        {
            continue;
        }
        let deadline = Instant::now() + timeout;
        let mut reply = None;
        while reply.is_none() && Instant::now() < deadline {
            let (n, r) = conn.drain(data, out, index, Some(token));
            reply = r;
            if reply.is_none() && n == 0 {
                std::thread::yield_now();
            }
        }
        let Some(t_daemon) = reply else { continue };
        let t1 = pdmap_obs::now_ns();
        let rtt = t1.saturating_sub(t0);
        let offset = t_daemon as i64 - (t0 + rtt / 2) as i64;
        done += 1;
        if best.is_none() || rtt < best.unwrap().rtt_ns {
            best = Some(ClockEstimate {
                offset_ns: offset,
                rtt_ns: rtt,
                rounds: 0,
            });
        }
    }
    best.map(|mut est| {
        est.rounds = done;
        est
    })
}

/// Delivers the watermark seed an adopted orphan is waiting on: a
/// [`TopologyMsg`] naming the child itself and the highest batch sequence
/// (plus cumulative samples) this set already folded in. The orphan then
/// bumps its epoch and replays exactly its ring suffix past the mark.
/// Returns true when the seed was queued.
fn send_seed(conn: &DaemonConn, epoch: u64, watermark: u64, received: u64) -> bool {
    let seed = TopologyMsg {
        epoch,
        origin: "tool".into(),
        children: vec![TopoChild {
            addr: conn.addr.clone(),
            watermark,
            received,
        }],
    };
    send_wire(&*conn.tx, &seed).is_ok()
}

/// The tool side of a multi-daemon session (see the module docs).
///
/// Connections are individually locked so the persistent drain pool can
/// pump them concurrently; all other access is single-threaded through
/// `&mut self`, so the locks are uncontended outside a parallel drain.
pub struct DaemonSet {
    data: Arc<DataManager>,
    conns: Vec<Arc<Mutex<DaemonConn>>>,
    samples: Vec<AlignedSample>,
    policy: SupervisorPolicy,
    recoveries: Vec<RecoveryReport>,
    reparents: Vec<ReparentReport>,
    /// How to dial an address first learned at quarantine time (an
    /// orphaned subtree member). Installed by [`DaemonSet::connect`];
    /// absent for transport-injected sets unless [`DaemonSet::set_dialer`]
    /// provides one — without it, orphans cannot be adopted.
    dialer: Option<DialFn>,
    /// Monotonic set-wide topology epoch, bumped per adoption.
    epoch: u64,
    /// Built lazily at the first [`DaemonSet::pump_parallel`].
    pool: Option<DrainPool>,
    /// Per-node health assembled from streamed `Obs *` telemetry.
    health_view: FleetHealth,
    /// Index into `samples` up to which telemetry has been folded into
    /// `health_view`, so each pump scans only the new arrivals.
    health_cursor: usize,
}

/// A borrowed view of one connection — a lock guard that derefs to
/// [`DaemonConn`], so `set.conn(i).clock()`-style call sites read exactly
/// as they did when connections were plain fields.
pub struct ConnRef<'a>(MutexGuard<'a, DaemonConn>);

impl Deref for ConnRef<'_> {
    type Target = DaemonConn;
    fn deref(&self) -> &DaemonConn {
        &self.0
    }
}

impl DaemonSet {
    /// Connects to `addrs` over TCP, one [`TcpClient`] per daemon,
    /// assigning connection `i` to data-manager shard `i % shard_count`.
    /// Connection establishment is asynchronous (the transport reconnects
    /// until the server appears), so this returns immediately;
    /// [`DaemonSet::clock_sync`] is the natural "is everyone up" barrier.
    ///
    /// Each connection gets a default reconnect factory that re-dials the
    /// same address with the same config, so [`DaemonSet::supervise`] can
    /// readmit a quarantined daemon that restarted on its old port;
    /// [`DaemonSet::set_reconnect`] overrides it for restarts elsewhere.
    pub fn connect(addrs: &[SocketAddr], cfg: TransportConfig, data: Arc<DataManager>) -> Self {
        let transports: Vec<(String, Arc<dyn Transport>)> = addrs
            .iter()
            .map(|a| {
                (
                    a.to_string(),
                    TcpClient::connect(*a, cfg) as Arc<dyn Transport>,
                )
            })
            .collect();
        let mut set = Self::over_transports(transports, data);
        for (cell, &addr) in set.conns.iter().zip(addrs) {
            lock(cell).reconnect = Some(Box::new(move || {
                TcpClient::connect(addr, cfg) as Arc<dyn Transport>
            }));
        }
        // Addresses inside an orphaned subtree are only learned at
        // quarantine time, so adoption needs a general dialer too.
        set.dialer = Some(Arc::new(move |a: SocketAddr| {
            TcpClient::connect(a, cfg) as Arc<dyn Transport>
        }));
        set
    }

    /// Builds a set over already-connected transports — the seam used by
    /// in-process tests (and any future backend): element `i` of
    /// `transports` is `(label, tool-side transport of daemon i)`.
    pub fn over_transports(
        transports: Vec<(String, Arc<dyn Transport>)>,
        data: Arc<DataManager>,
    ) -> Self {
        let shards = data.shard_count();
        let conns = transports
            .into_iter()
            .enumerate()
            .map(|(i, (addr, tx))| {
                Arc::new(Mutex::new(DaemonConn {
                    addr,
                    tx,
                    shard: i % shards,
                    clock: ClockEstimate::default(),
                    samples_received: 0,
                    pif_imports: 0,
                    decode_errors: Vec::new(),
                    health: DaemonHealth::Healthy,
                    last_frame: Instant::now(),
                    errors_at_life_start: 0,
                    life_received: 0,
                    announced_sent: None,
                    lost_prior: 0,
                    retry_attempt: 0,
                    next_retry: None,
                    reconnect: None,
                    interned: HashSet::new(),
                    subtree: None,
                    last_seq: 0,
                    replays_suppressed: 0,
                    prior_received: 0,
                    topo: None,
                    source_marks: HashMap::new(),
                    subtree_adopted: false,
                    seed_watermark: None,
                }))
            })
            .collect();
        Self {
            data,
            conns,
            samples: Vec::new(),
            policy: SupervisorPolicy::default(),
            recoveries: Vec::new(),
            reparents: Vec::new(),
            dialer: None,
            epoch: 0,
            pool: None,
            health_view: FleetHealth::default(),
            health_cursor: 0,
        }
    }

    /// Number of daemon connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when the set has no connections.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The shared data manager.
    pub fn data(&self) -> &Arc<DataManager> {
        &self.data
    }

    /// Connection `i` (a lock-guard view; hold it briefly).
    pub fn conn(&self, i: usize) -> ConnRef<'_> {
        ConnRef(lock(&self.conns[i]))
    }

    /// The drain-pool size, once the pool exists (after the first
    /// [`DaemonSet::pump_parallel`]).
    pub fn pool_size(&self) -> Option<usize> {
        self.pool.as_ref().map(|p| p.size())
    }

    /// The active supervisor thresholds.
    pub fn policy(&self) -> SupervisorPolicy {
        self.policy
    }

    /// Replaces the supervisor thresholds (tests shrink them to make
    /// failure detection immediate).
    pub fn set_policy(&mut self, policy: SupervisorPolicy) {
        self.policy = policy;
    }

    /// Installs the reconnect factory used to re-dial daemon `i` after
    /// quarantine — e.g. pointing at the new port of a restarted daemon.
    pub fn set_reconnect(&mut self, i: usize, f: ReconnectFn) {
        lock(&self.conns[i]).reconnect = Some(f);
    }

    /// Supervisor state of daemon `i`.
    pub fn health(&self, i: usize) -> DaemonHealth {
        lock(&self.conns[i]).health
    }

    /// Installs the dialer used to adopt orphaned subtree members —
    /// addresses first seen in a dead relay's topology announcement.
    /// [`DaemonSet::connect`] installs a TCP one; transport-injected sets
    /// (tests) provide their own seam here.
    pub fn set_dialer(&mut self, f: DialFn) {
        self.dialer = Some(f);
    }

    /// Readmissions logged so far (in the order they happened).
    pub fn recoveries(&self) -> &[RecoveryReport] {
        &self.recoveries
    }

    /// Subtree re-parentings logged so far (in the order they happened).
    pub fn reparents(&self) -> &[ReparentReport] {
        &self.reparents
    }

    /// Rolls the recovery history up into the `recovery:` banner label —
    /// `None` while nothing has been readmitted or re-parented, so a
    /// clean session's report stays byte-identical.
    pub fn recovery_summary(&self) -> Option<RecoverySummary> {
        if self.recoveries.is_empty() && self.reparents.is_empty() {
            return None;
        }
        let gap: u64 = self.recoveries.iter().filter_map(|r| r.gap).sum::<u64>()
            + self.reparents.iter().filter_map(|r| r.gap).sum::<u64>();
        Some(RecoverySummary {
            readmissions: self.recoveries.len(),
            reparents: self.reparents.len(),
            nodes_rehomed: self.reparents.iter().map(|r| r.subtree.len()).sum(),
            gap,
        })
    }

    /// The set-wide topology epoch (bumped once per adoption).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// How much of the fleet the session currently covers — attach this to
    /// anything computed from the merged stream.
    ///
    /// Tree-aware: a peer that reported a [`DaemonMsg::SubtreeCoverage`]
    /// (a relay) contributes its whole subtree's node counts and losses; a
    /// leaf daemon contributes `1/1`. A quarantined relay therefore costs
    /// the session its entire subtree — never silently one node.
    pub fn coverage(&self) -> Coverage {
        let mut cov = Coverage::default();
        for cell in &self.conns {
            let c = lock(cell);
            // A re-parented relay's subtree now reports through other
            // connections: counting its nodes here would double them.
            // Only its own already-known loss still belongs to it.
            if c.subtree_adopted {
                cov.samples_lost += c.samples_lost();
                continue;
            }
            let sub = c.subtree.unwrap_or(Coverage {
                nodes_reporting: 1,
                nodes_total: 1,
                samples_lost: 0,
            });
            cov.nodes_total += sub.nodes_total;
            if c.health != DaemonHealth::Quarantined {
                cov.nodes_reporting += sub.nodes_reporting;
            }
            cov.samples_lost += c.samples_lost() + sub.samples_lost;
        }
        cov
    }

    /// Runs `rounds` probe rounds against every admitted daemon, keeping
    /// each daemon's minimum-RTT estimate. `timeout` bounds each round; a
    /// daemon that never answers is quarantined (scheduled for retry) and
    /// reported in the returned error — the *other* daemons still get
    /// their estimates, so the set stays usable around the failure.
    pub fn clock_sync(&mut self, rounds: u32, timeout: Duration) -> Result<(), ClockSyncError> {
        let data = self.data.clone();
        let policy = self.policy;
        let mut first_err: Option<ClockSyncError> = None;
        for (i, cell) in self.conns.iter().enumerate() {
            let mut conn = lock(cell);
            if conn.health == DaemonHealth::Quarantined {
                continue;
            }
            match sync_conn(&mut conn, &data, &mut self.samples, i, rounds, timeout) {
                Some(est) => conn.clock = est,
                None => {
                    conn.health = DaemonHealth::Quarantined;
                    conn.retry_attempt = 0;
                    conn.next_retry = Some(Instant::now() + policy.retry.delay_for(0));
                    set_obs().quarantine.incr();
                    if first_err.is_none() {
                        first_err = Some(ClockSyncError {
                            daemon: i,
                            addr: conn.addr.clone(),
                        });
                    }
                }
            }
        }
        // Re-align anything that arrived before (or during) the handshake —
        // the struct spine in place, the columnar shard buffers as a
        // column pass per daemon.
        let offsets: Vec<i64> = self.conns.iter().map(|c| lock(c).clock.offset_ns).collect();
        for s in &mut self.samples {
            s.aligned_ns = (s.wall as i64 - offsets[s.daemon]).max(0) as u64;
        }
        self.data.realign_columns_all(&offsets);
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// One supervision pass: drives every connection's state machine (see
    /// the module docs) and attempts due readmission retries. Call it from
    /// the same loop that pumps; it is cheap when nothing is wrong.
    /// Returns the post-pass [`Coverage`].
    pub fn supervise(&mut self) -> Coverage {
        self.update_fleet_health();
        let now = Instant::now();
        let policy = self.policy;
        let data = self.data.clone();
        // Telemetry staleness per connection: a link whose self-reports
        // all went dark is degraded even while other frames keep its
        // heartbeat fresh — the daemon's watchdog stopped barking.
        let obs_stale: Vec<bool> = (0..self.conns.len())
            .map(|i| self.health_view.conn_stale(i, now, policy.degrade_after))
            .collect();
        for (i, cell) in self.conns.iter().enumerate() {
            let mut conn = lock(cell);
            match conn.health {
                // Readmitted last pass; traffic (or its absence) now speaks
                // for itself again.
                DaemonHealth::Recovered => conn.health = DaemonHealth::Healthy,
                DaemonHealth::Healthy | DaemonHealth::Degraded => {
                    let silence = now.duration_since(conn.last_frame);
                    let errs = conn.life_errors();
                    let dead = !conn.tx.is_alive();
                    if errs >= policy.quarantine_errors
                        || (dead && silence >= policy.quarantine_after)
                    {
                        conn.health = DaemonHealth::Quarantined;
                        conn.retry_attempt = 0;
                        conn.next_retry = Some(now + policy.retry.delay_for(0));
                        set_obs().quarantine.incr();
                    } else if dead
                        || errs >= policy.degrade_errors
                        || silence >= policy.degrade_after
                        || obs_stale[i]
                    {
                        if conn.health == DaemonHealth::Healthy {
                            conn.health = DaemonHealth::Degraded;
                            set_obs().degraded.incr();
                            if obs_stale[i] {
                                set_obs().obs_stale.incr();
                            }
                        }
                    } else if conn.health == DaemonHealth::Degraded {
                        conn.health = DaemonHealth::Healthy;
                    }
                }
                DaemonHealth::Quarantined => {
                    // A re-parented relay must not be re-dialed: its old
                    // children now report directly, and a restarted relay
                    // re-attaching them would double every sample.
                    if conn.subtree_adopted {
                        continue;
                    }
                    if !conn.next_retry.map(|t| now >= t).unwrap_or(true) {
                        continue;
                    }
                    set_obs().retry.incr();
                    let Some(factory) = conn.reconnect.as_ref() else {
                        // No way back; keep backing off so we don't spin.
                        conn.retry_attempt = conn.retry_attempt.saturating_add(1);
                        conn.next_retry = Some(now + policy.retry.delay_for(conn.retry_attempt));
                        continue;
                    };
                    // Fold the dead life's announced gap into the prior-loss
                    // tally, then start a fresh life over a fresh link. The
                    // daemon re-ships its PIF on reconnect; the data
                    // manager's content-hash dedup absorbs the duplicate.
                    let gap = conn
                        .announced_sent
                        .map(|a| a.saturating_sub(conn.life_received));
                    let fresh = factory();
                    conn.tx.close();
                    conn.tx = fresh;
                    conn.lost_prior += gap.unwrap_or(0);
                    conn.life_received = 0;
                    conn.announced_sent = None;
                    conn.errors_at_life_start = conn.decode_errors.len();
                    match sync_conn(
                        &mut conn,
                        &data,
                        &mut self.samples,
                        i,
                        policy.retry_sync_rounds,
                        policy.retry_sync_timeout,
                    ) {
                        Some(est) => {
                            conn.clock = est;
                            conn.health = DaemonHealth::Recovered;
                            conn.last_frame = now;
                            let attempts = conn.retry_attempt;
                            conn.retry_attempt = 0;
                            conn.next_retry = None;
                            if let Some((w, p)) = conn.seed_watermark {
                                // An adopted child whose first sync failed:
                                // it is still paused awaiting its watermark
                                // seed, so deliver it now (keeping the seq
                                // watermark — its ring replay dedups here).
                                if send_seed(&conn, self.epoch, w, p) {
                                    conn.seed_watermark = None;
                                }
                            } else {
                                // A *restarted* daemon begins a fresh
                                // sequence space at 1; the old watermark
                                // would wrongly suppress its first batches.
                                conn.last_seq = 0;
                            }
                            set_obs().recovered.incr();
                            self.recoveries.push(RecoveryReport {
                                daemon: i,
                                addr: conn.addr.clone(),
                                attempts,
                                gap,
                            });
                        }
                        None => {
                            conn.tx.close();
                            conn.retry_attempt = conn.retry_attempt.saturating_add(1);
                            conn.next_retry =
                                Some(now + policy.retry.delay_for(conn.retry_attempt));
                        }
                    }
                }
            }
        }
        if policy.adopt_orphans {
            self.adopt_orphans();
        }
        self.coverage()
    }

    /// Re-parents every newly quarantined relay's orphaned subtree: each
    /// child named in the relay's last topology announcement is dialed
    /// directly, clock-synced, and seeded with the exact replay watermark
    /// this set already folded in (the delivered-atomic source marks that
    /// rode in the relay's batches — or, for a child never seen in a mark,
    /// the announcement's own watermark). The orphan replays its ring
    /// suffix past the seed; anything the dead relay managed to forward
    /// arrives twice and is suppressed by [`DaemonConn::last_seq`] — no
    /// double count, no silent gap.
    fn adopt_orphans(&mut self) {
        let Some(dialer) = self.dialer.clone() else {
            return;
        };
        let data = self.data.clone();
        let policy = self.policy;
        // Pass 1 (short lock holds): claim newly quarantined relays that
        // announced a topology, taking their adoption map.
        let mut work = Vec::new();
        for (i, cell) in self.conns.iter().enumerate() {
            let mut c = lock(cell);
            if c.health != DaemonHealth::Quarantined || c.subtree_adopted || c.topo.is_none() {
                continue;
            }
            let topo = c.topo.take().expect("checked above");
            let marks = std::mem::take(&mut c.source_marks);
            let gap = c
                .announced_sent
                .map(|a| a.saturating_sub(c.life_received + c.prior_received));
            c.subtree_adopted = true;
            work.push((i, c.addr.clone(), topo, marks, gap));
        }
        let shards = data.shard_count();
        for (i, addr, topo, marks, gap) in work {
            self.epoch += 1;
            set_obs().reparent.incr();
            let mut subtree = Vec::new();
            for tc in &topo.children {
                subtree.push(tc.addr.clone());
                if self.conns.iter().any(|c| lock(c).addr == tc.addr) {
                    // Already a direct connection (e.g. adopted from an
                    // earlier failure, or dual-homed): never dial twice.
                    continue;
                }
                let Ok(sock) = tc.addr.parse::<SocketAddr>() else {
                    continue;
                };
                // Exact watermark when a source mark proved delivery here;
                // the announcement's (relay-side) watermark otherwise —
                // still duplicate-free, the relay's in-flight tail becomes
                // labeled loss instead.
                let (w, prior) = marks
                    .get(&tc.addr)
                    .copied()
                    .unwrap_or((tc.watermark, tc.received));
                let d = dialer.clone();
                let idx = self.conns.len();
                let mut conn = DaemonConn {
                    addr: tc.addr.clone(),
                    tx: dialer(sock),
                    shard: idx % shards,
                    clock: ClockEstimate::default(),
                    samples_received: 0,
                    pif_imports: 0,
                    decode_errors: Vec::new(),
                    health: DaemonHealth::Recovered,
                    last_frame: Instant::now(),
                    errors_at_life_start: 0,
                    life_received: 0,
                    announced_sent: None,
                    lost_prior: 0,
                    retry_attempt: 0,
                    next_retry: None,
                    reconnect: Some(Box::new(move || d(sock))),
                    interned: HashSet::new(),
                    subtree: None,
                    last_seq: w,
                    replays_suppressed: 0,
                    prior_received: prior,
                    topo: None,
                    source_marks: HashMap::new(),
                    subtree_adopted: false,
                    seed_watermark: Some((w, prior)),
                };
                set_obs().adopted.incr();
                match sync_conn(
                    &mut conn,
                    &data,
                    &mut self.samples,
                    idx,
                    policy.retry_sync_rounds,
                    policy.retry_sync_timeout,
                ) {
                    Some(est) => {
                        conn.clock = est;
                        if send_seed(&conn, self.epoch, w, prior) {
                            conn.seed_watermark = None;
                        }
                    }
                    None => {
                        // Keep the connection (and its owed seed): the
                        // ordinary retry machinery readmits it and sends
                        // the seed once the orphan answers.
                        conn.health = DaemonHealth::Quarantined;
                        conn.next_retry = Some(Instant::now() + policy.retry.delay_for(0));
                        set_obs().quarantine.incr();
                    }
                }
                self.conns.push(Arc::new(Mutex::new(conn)));
            }
            self.reparents.push(ReparentReport {
                daemon: i,
                addr,
                subtree,
                gap,
                epoch: self.epoch,
            });
        }
    }

    /// Asks daemon `i` to shut down gracefully (drain, then announce its
    /// send count in a [`DaemonMsg::Goodbye`]). Returns false if the
    /// request could not even be queued.
    pub fn shutdown(&self, i: usize) -> bool {
        let tx = lock(&self.conns[i]).tx.clone();
        send_wire(&*tx, &DaemonMsg::Shutdown).is_ok()
    }

    /// Asks every admitted daemon to shut down, then pumps until each has
    /// announced its send count (or `timeout` elapses). The returned
    /// [`Coverage`] is the session's final conservation report.
    pub fn shutdown_all(&mut self, timeout: Duration) -> Coverage {
        for cell in &self.conns {
            // Clone the transport handle and drop the conn guard before
            // sending: a full send queue blocks on backpressure, and that
            // wait must never happen while holding a connection lock.
            let tx = {
                let conn = lock(cell);
                (conn.health != DaemonHealth::Quarantined).then(|| conn.tx.clone())
            };
            if let Some(tx) = tx {
                let _ = send_wire(&*tx, &DaemonMsg::Shutdown);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            self.pump();
            let all_announced = self.conns.iter().all(|c| {
                let c = lock(c);
                c.health == DaemonHealth::Quarantined || c.announced_sent.is_some()
            });
            if all_announced || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.coverage()
    }

    /// Drains every admitted (non-quarantined) link once, sequentially.
    /// Returns frames processed.
    pub fn pump(&mut self) -> usize {
        let data = self.data.clone();
        let mut n = 0;
        for (i, cell) in self.conns.iter().enumerate() {
            let mut conn = lock(cell);
            if conn.health == DaemonHealth::Quarantined {
                continue;
            }
            n += conn.drain(&data, &mut self.samples, i, None).0;
        }
        self.update_fleet_health();
        n
    }

    /// Drains every admitted link concurrently through the persistent
    /// drain pool — `min(connections, available_parallelism)` long-lived
    /// workers claim connections off a shared cursor, each feeding its own
    /// data-manager shard (the contention the sharded manager exists to
    /// absorb). The pool is built at the first call and reused for the
    /// session: a drain pass costs a condvar wakeup, not one thread spawn
    /// per connection. Quarantined connections are never dispatched.
    /// Returns frames processed.
    pub fn pump_parallel(&mut self) -> usize {
        let jobs: Vec<(usize, Arc<Mutex<DaemonConn>>)> = self
            .conns
            .iter()
            .enumerate()
            .filter(|(_, cell)| lock(cell).health != DaemonHealth::Quarantined)
            .map(|(i, cell)| (i, cell.clone()))
            .collect();
        if jobs.is_empty() {
            return 0;
        }
        let pool = self.pool.get_or_insert_with(|| {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            DrainPool::new(self.conns.len().min(cores))
        });
        let (frames, samples) = pool.run(jobs, self.data.clone());
        self.samples.extend(samples);
        self.update_fleet_health();
        frames
    }

    /// The drain strategy the persistent pool replaced — one scoped thread
    /// per admitted connection, spawned fresh on every call — kept as the
    /// measured reference: the fleet drill's flat baseline drains through
    /// this path, so its headline ratio compares the relay/batch/pool
    /// subsystem against the architecture it superseded rather than
    /// against a strawman. Not for production call sites; use
    /// [`DaemonSet::pump_parallel`].
    pub fn pump_parallel_unpooled(&mut self) -> usize {
        let data = self.data.clone();
        let mut total = 0;
        let mut merged: Vec<AlignedSample> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .conns
                .iter()
                .enumerate()
                .filter(|(_, cell)| lock(cell).health != DaemonHealth::Quarantined)
                .map(|(i, cell)| {
                    let data = &data;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        let n = lock(cell).drain(data, &mut local, i, None).0;
                        (n, local)
                    })
                })
                .collect();
            for h in handles {
                let (n, local) = h.join().expect("pump thread panicked");
                total += n;
                merged.extend(local);
            }
        });
        self.samples.extend(merged);
        self.update_fleet_health();
        total
    }

    /// Pumps all links until at least `want` samples have been received in
    /// total (across the session's lifetime) or `timeout` elapses. Drains
    /// through the pooled parallel path, so a large fleet never serializes
    /// on one thread. Returns the session's sample total.
    pub fn pump_until_samples(&mut self, want: usize, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            let got = self.pump_parallel();
            if self.samples.len() >= want || Instant::now() >= deadline {
                return self.samples.len();
            }
            if got > 0 {
                spins = 0;
            } else if spins < 64 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    /// All samples received so far, in arrival order.
    pub fn samples(&self) -> &[AlignedSample] {
        &self.samples
    }

    /// The largest per-sample value received so far — the per-sample cost
    /// bound [`Coverage::bound_mass`] prices lost samples at.
    pub fn max_sample_value(&self) -> f64 {
        self.samples.iter().map(|s| s.value).fold(0.0, f64::max)
    }

    /// The session label to stamp on a coverage-aware tool
    /// ([`crate::tool::Paradyn::set_session_coverage`]): the current
    /// [`Coverage`] plus the max observed per-sample cost.
    pub fn session_coverage(&self) -> SessionCoverage {
        SessionCoverage {
            coverage: self.coverage(),
            max_sample_cost: self.max_sample_value(),
        }
    }

    /// The fleet-health view assembled from streamed telemetry — current
    /// as of the last pump or supervision pass.
    pub fn fleet_health(&self) -> &FleetHealth {
        &self.health_view
    }

    /// Folds telemetry samples that arrived since the last call into the
    /// fleet-health view. A telemetry sample is any sample whose focus
    /// carries the [`selfmap::OBS_FOCUS_PREFIX`] and whose metric is an
    /// `Obs *` row; everything else is application data and is skipped.
    fn update_fleet_health(&mut self) {
        for s in &self.samples[self.health_cursor..] {
            if s.focus.starts_with(selfmap::OBS_FOCUS_PREFIX) && s.metric.starts_with("Obs ") {
                self.health_view.observe(s);
            }
        }
        self.health_cursor = self.samples.len();
    }

    /// Asks a span-site question about a *remote* node — "how much time
    /// did the node reporting as `label` spend in `component` `verb`?" —
    /// answered from its streamed telemetry through the same SAS
    /// machinery as the local [`selfmap::ask_obs`]. Returns `None` when
    /// the node has not reported or the site never ran there.
    pub fn ask_fleet_obs(
        &self,
        ns: &Namespace,
        label: &str,
        component: &str,
        verb: &str,
    ) -> Option<u64> {
        let node = self.health_view.node(label)?;
        selfmap::ask_obs_totals(ns, &node.site_totals(), component, verb)
    }

    /// Aggregates every reporting node's self-measured perturbation
    /// estimate into one fleet rollup; `None` until some node has shipped
    /// its `Obs perturbation *` rows.
    pub fn fleet_perturbation(&self) -> Option<FleetPerturbation> {
        let mut agg = FleetPerturbation::default();
        for n in self.health_view.nodes() {
            let Some(spans) = n.metric(selfmap::OBS_PERTURB_SPANS) else {
                continue;
            };
            agg.nodes += 1;
            agg.spans += spans as u64;
            agg.overhead_ns += n.metric(selfmap::OBS_PERTURB_OVERHEAD).unwrap_or(0.0) as u64;
            agg.reported_ns += n.metric(selfmap::OBS_PERTURB_REPORTED).unwrap_or(0.0) as u64;
        }
        (agg.nodes > 0).then_some(agg)
    }

    /// The merged sample stream, sorted by aligned (tool-clock) time —
    /// the single stream the paper's front end consumes. Stable, so
    /// same-instant samples keep arrival order. The result carries the
    /// session's [`Coverage`], so a merge computed over a degraded fleet
    /// is labeled as such instead of silently reading low.
    pub fn merged_samples(&self) -> Merged {
        let mut out = self.samples.clone();
        out.sort_by_key(|s| s.aligned_ns);
        Merged {
            samples: out,
            coverage: self.coverage(),
        }
    }

    /// Groups the merged stream into one [`Stream`] per (metric, focus)
    /// pair, with sample times on the tool clock. Units are unknown at
    /// this layer (the wire protocol does not carry them). Carries the
    /// same [`Coverage`] label as [`DaemonSet::merged_samples`].
    pub fn merged_streams(&self) -> MergedStreams {
        let mut out: Vec<Stream> = Vec::new();
        for s in self.merged_samples() {
            match out
                .iter_mut()
                .find(|st| *st.metric == *s.metric && *st.focus == *s.focus)
            {
                Some(st) => st.samples.push((s.aligned_ns, s.value)),
                None => out.push(Stream {
                    metric: s.metric.to_string(),
                    focus: s.focus.to_string(),
                    units: String::new(),
                    samples: vec![(s.aligned_ns, s.value)],
                }),
            }
        }
        MergedStreams {
            streams: out,
            coverage: self.coverage(),
        }
    }

    /// Pumps every admitted link once through the **columnar** ingest
    /// path: batched samples decode straight to flat columns and land in
    /// the data manager's per-shard buffers ([`DaemonConn::drain_columns`]);
    /// control frames and loose samples take the classic dispatch. The
    /// struct-spine [`DaemonSet::pump`] remains the default path — this is
    /// its measured fast twin, rendered at [`DaemonSet::columnar_streams`].
    pub fn pump_columns(&mut self) -> usize {
        let data = self.data.clone();
        let mut n = 0;
        for (i, cell) in self.conns.iter().enumerate() {
            let mut conn = lock(cell);
            if conn.health == DaemonHealth::Quarantined {
                continue;
            }
            n += conn.drain_columns(&data, &mut self.samples, i);
        }
        self.update_fleet_health();
        n
    }

    /// Render edge of the columnar spine: the shard-merged, aligned-sorted
    /// columns grouped into one [`Stream`] per (metric, focus) key in
    /// first-seen order — grouping compares interned `u32` pairs, and the
    /// key strings are materialized exactly once per stream, here. Renders
    /// byte-identically to [`DaemonSet::merged_streams`] over the same
    /// frames. Carries the session's [`Coverage`] like every merged view.
    pub fn columnar_streams(&self) -> MergedStreams {
        let cols = self.data.merged_sample_columns();
        let mut index: HashMap<(Symbol, Symbol), usize> = HashMap::new();
        let mut out: Vec<Stream> = Vec::new();
        for i in 0..cols.len() {
            let key = (cols.metrics()[i], cols.foci()[i]);
            let slot = *index.entry(key).or_insert_with(|| {
                out.push(Stream {
                    metric: key.0.as_str().to_string(),
                    focus: key.1.as_str().to_string(),
                    units: String::new(),
                    samples: Vec::new(),
                });
                out.len() - 1
            });
            out[slot]
                .samples
                .push((cols.aligneds()[i], cols.values()[i]));
        }
        MergedStreams {
            streams: out,
            coverage: self.coverage(),
        }
    }
}

/// The merged, aligned sample stream plus the [`Coverage`] it was computed
/// under. Derefs to the sample vector, so existing slice-style consumers
/// keep working; the label rides along for anyone who asks.
#[derive(Clone, Debug)]
pub struct Merged {
    samples: Vec<AlignedSample>,
    coverage: Coverage,
}

impl Merged {
    /// How much of the fleet this merge covers.
    pub fn coverage(&self) -> Coverage {
        self.coverage
    }

    /// Consumes the wrapper, keeping just the samples.
    pub fn into_vec(self) -> Vec<AlignedSample> {
        self.samples
    }
}

impl Deref for Merged {
    type Target = Vec<AlignedSample>;
    fn deref(&self) -> &Vec<AlignedSample> {
        &self.samples
    }
}

impl IntoIterator for Merged {
    type Item = AlignedSample;
    type IntoIter = std::vec::IntoIter<AlignedSample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Merged {
    type Item = &'a AlignedSample;
    type IntoIter = std::slice::Iter<'a, AlignedSample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// The merged per-(metric, focus) streams plus their [`Coverage`] label.
#[derive(Clone, Debug)]
pub struct MergedStreams {
    streams: Vec<Stream>,
    coverage: Coverage,
}

impl MergedStreams {
    /// How much of the fleet these streams cover.
    pub fn coverage(&self) -> Coverage {
        self.coverage
    }

    /// Consumes the wrapper, keeping just the streams.
    pub fn into_vec(self) -> Vec<Stream> {
        self.streams
    }
}

impl Deref for MergedStreams {
    type Target = Vec<Stream>;
    fn deref(&self) -> &Vec<Stream> {
        &self.streams
    }
}

impl IntoIterator for MergedStreams {
    type Item = Stream;
    type IntoIter = std::vec::IntoIter<Stream>;
    fn into_iter(self) -> Self::IntoIter {
        self.streams.into_iter()
    }
}

impl<'a> IntoIterator for &'a MergedStreams {
    type Item = &'a Stream;
    type IntoIter = std::slice::Iter<'a, Stream>;
    fn into_iter(self) -> Self::IntoIter {
        self.streams.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfmap::{
        obs_count_metric, obs_focus, obs_time_metric, OBS_PERTURB_NULL, OBS_PERTURB_OVERHEAD,
        OBS_PERTURB_REPORTED, OBS_PERTURB_SPANS,
    };
    use pdmap::model::Namespace;
    use pdmap_transport::Backend;

    /// An in-process fake `pdmapd`: answers clock probes with a skewed
    /// clock and lets the test send samples with the same skew — the
    /// process-boundary behaviour of `pdmapd` without the processes.
    struct FakeDaemon {
        tx: Arc<dyn Transport>,
        skew_ns: i64,
    }

    impl FakeDaemon {
        fn now(&self) -> u64 {
            (pdmap_obs::now_ns() as i64 + self.skew_ns).max(0) as u64
        }

        fn answer_probes(&self) {
            while let Ok(Some(frame)) = self.tx.try_recv() {
                if let Ok(DaemonMsg::ClockProbe { token, t_tool_ns }) =
                    DaemonMsg::from_frame(&frame)
                {
                    let _ = send_wire(
                        &*self.tx,
                        &DaemonMsg::ClockReply {
                            token,
                            t_tool_ns,
                            t_daemon_ns: self.now(),
                        },
                    );
                }
            }
        }

        fn send_sample(&self, metric: &str, value: f64) {
            self.send_focused(metric, "/", value);
        }

        fn send_focused(&self, metric: &str, focus: &str, value: f64) {
            let _ = send_wire(
                &*self.tx,
                &DaemonMsg::Sample {
                    metric: metric.into(),
                    focus: focus.into(),
                    wall: self.now(),
                    value,
                },
            );
        }
    }

    fn set_with_skews(skews: &[i64]) -> (DaemonSet, Vec<FakeDaemon>) {
        let cfg = TransportConfig::default();
        let mut transports = Vec::new();
        let mut daemons = Vec::new();
        for (i, &skew_ns) in skews.iter().enumerate() {
            let link = Backend::InProc.link(&cfg);
            transports.push((format!("fake#{i}"), link.client));
            daemons.push(FakeDaemon {
                tx: link.server,
                skew_ns,
            });
        }
        let data = Arc::new(DataManager::sharded(
            Namespace::new(),
            "CM Fortran",
            skews.len(),
        ));
        (DaemonSet::over_transports(transports, data), daemons)
    }

    /// Clock sync + probe answering interleaved: the fake daemons answer
    /// from a helper thread while the tool syncs.
    fn sync(set: &mut DaemonSet, daemons: &[FakeDaemon]) {
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for d in daemons {
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        d.answer_probes();
                        std::thread::yield_now();
                    }
                });
            }
            set.clock_sync(5, Duration::from_secs(2)).unwrap();
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn clock_sync_recovers_injected_skew() {
        let skews = [50_000_000i64, -50_000_000];
        let (mut set, daemons) = set_with_skews(&skews);
        sync(&mut set, &daemons);
        for (i, &skew) in skews.iter().enumerate() {
            let est = set.conn(i).clock();
            assert_eq!(est.rounds, 5);
            let err = (est.offset_ns - skew).unsigned_abs();
            // The estimate's error is bounded by rtt/2; allow headroom for
            // a loaded CI box, but ±50 ms skews must be clearly separated.
            assert!(
                err <= est.rtt_ns / 2 + 5_000_000,
                "daemon {i}: offset {} vs skew {skew} (rtt {})",
                est.offset_ns,
                est.rtt_ns
            );
        }
    }

    #[test]
    fn merged_stream_sorts_by_aligned_time_under_skew() {
        // Daemon 0 runs 50 ms fast, daemon 1 runs 50 ms slow. Samples are
        // sent alternately with real gaps between them, so the true send
        // order is 0,1,2,... (encoded in the value). Raw wall stamps order
        // all of daemon 1 before daemon 0 — a 100 ms split across a ~40 ms
        // experiment — so an unaligned merge is provably wrong, and the
        // aligned merge must recover the send order.
        let (mut set, daemons) = set_with_skews(&[50_000_000, -50_000_000]);
        sync(&mut set, &daemons);
        let n = 8usize;
        for i in 0..n {
            daemons[i % 2].send_sample("M", i as f64);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(set.pump_until_samples(n, Duration::from_secs(5)), n);

        let merged = set.merged_samples();
        let aligned_order: Vec<f64> = merged.iter().map(|s| s.value).collect();
        let want: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_eq!(aligned_order, want, "aligned merge = true send order");
        assert!(
            merged
                .windows(2)
                .all(|w| w[0].aligned_ns <= w[1].aligned_ns),
            "merged stream is nondecreasing in aligned time"
        );

        let mut by_wall = set.samples().to_vec();
        by_wall.sort_by_key(|s| s.wall);
        let wall_order: Vec<f64> = by_wall.iter().map(|s| s.value).collect();
        assert_ne!(
            wall_order, want,
            "raw wall stamps mis-order the merge; alignment is load-bearing"
        );
        assert_eq!(
            set.data().shard_stats(0).samples + set.data().shard_stats(1).samples,
            n as u64
        );
    }

    #[test]
    fn mappings_and_streams_flow_through_the_set() {
        let (mut set, daemons) = set_with_skews(&[0, 0]);
        sync(&mut set, &daemons);
        for (i, d) in daemons.iter().enumerate() {
            let _ = send_wire(
                &*d.tx,
                &DaemonMsg::ArrayAllocated {
                    id: i as u32,
                    name: format!("ARR{i}"),
                    extents: vec![64],
                    dist: cmrts_sim::Distribution::Block,
                    subgrids: vec![(i, 32, 32), (i + 2, 32, 32)],
                },
            );
            d.send_sample("Computation Time", 1.0 + i as f64);
        }
        set.pump_until_samples(2, Duration::from_secs(5));
        assert_eq!(set.data().dynamic_arrays().len(), 2);
        assert_eq!(set.data().shard_stats(0).imports, 1);
        assert_eq!(set.data().shard_stats(1).imports, 1);
        let axis = set.data().render_where_axis();
        assert!(axis.contains("ARR0") && axis.contains("ARR1"), "{axis}");
        let streams = set.merged_streams();
        assert_eq!(streams.len(), 1, "one (metric, focus) pair");
        assert_eq!(streams[0].len(), 2);
        assert_eq!(streams[0].metric, "Computation Time");
    }

    #[test]
    fn pump_parallel_feeds_all_shards() {
        let (mut set, daemons) = set_with_skews(&[0, 0, 0, 0]);
        for (i, d) in daemons.iter().enumerate() {
            for k in 0..8 {
                d.send_sample("M", (i * 8 + k) as f64);
            }
        }
        let mut total = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while total < 32 && Instant::now() < deadline {
            set.pump_parallel();
            total = set.samples().len();
        }
        assert_eq!(total, 32);
        for i in 0..4 {
            assert_eq!(set.data().shard_stats(i).samples, 8, "shard {i}");
            assert_eq!(set.conn(i).samples_received(), 8);
        }
    }

    /// Thresholds shrunk so a test detects failure in milliseconds, not
    /// seconds.
    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            degrade_after: Duration::from_millis(5),
            quarantine_after: Duration::from_millis(10),
            degrade_errors: 2,
            quarantine_errors: 4,
            retry: pdmap_transport::ReconnectPolicy {
                max_attempts: 10,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                jitter_seed: 1,
            },
            retry_sync_rounds: 2,
            retry_sync_timeout: Duration::from_millis(500),
            adopt_orphans: false,
        }
    }

    /// Spawns a throwaway fake daemon behind a reconnect factory: each
    /// call opens a fresh in-process link with an answering thread on the
    /// far end, exactly what a restarted `pdmapd` looks like to the tool.
    fn reconnectable_fake(skew_ns: i64) -> ReconnectFn {
        Box::new(move || {
            let link = Backend::InProc.link(&TransportConfig::default());
            let server = link.server.clone();
            std::thread::spawn(move || {
                let fd = FakeDaemon {
                    tx: server,
                    skew_ns,
                };
                let deadline = Instant::now() + Duration::from_secs(5);
                while fd.tx.is_alive() && Instant::now() < deadline {
                    fd.answer_probes();
                    std::thread::yield_now();
                }
            });
            link.client
        })
    }

    #[test]
    fn dead_daemon_is_quarantined_then_readmitted() {
        let (mut set, daemons) = set_with_skews(&[0, 0]);
        sync(&mut set, &daemons);
        set.set_policy(fast_policy());
        assert!(set.coverage().is_complete());

        // Kill daemon 0's link; daemon 1 keeps talking (its samples keep
        // its heartbeat fresh, so only the dead link degrades).
        daemons[0].tx.close();
        std::thread::sleep(Duration::from_millis(15));
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.health(0) != DaemonHealth::Quarantined && Instant::now() < deadline {
            daemons[1].send_sample("keepalive", 0.0);
            set.pump();
            set.supervise();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(set.health(0), DaemonHealth::Quarantined);
        assert_eq!(set.health(1), DaemonHealth::Healthy);
        let cov = set.coverage();
        assert_eq!(
            (cov.nodes_reporting, cov.nodes_total),
            (1, 2),
            "lost node must show in coverage: {cov}"
        );
        assert!(!cov.is_complete());

        // The daemon "restarts": readmission re-dials through the factory,
        // re-syncs the clock, and coverage returns to complete.
        set.set_reconnect(0, reconnectable_fake(0));
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.health(0) == DaemonHealth::Quarantined && Instant::now() < deadline {
            set.supervise();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            matches!(
                set.health(0),
                DaemonHealth::Recovered | DaemonHealth::Healthy
            ),
            "daemon 0 should be readmitted, is {:?}",
            set.health(0)
        );
        assert_eq!(set.coverage().nodes_reporting, 2);
        let rec = &set.recoveries()[0];
        assert_eq!(rec.daemon, 0);
        assert_eq!(rec.gap, None, "died unannounced: gap unknowable");
        assert!(set.conn(0).clock().rounds > 0, "clock re-synced on readmit");
    }

    #[test]
    fn clock_sync_failure_names_the_daemon_and_spares_the_rest() {
        // Daemon 1 never answers probes; daemon 0 is healthy.
        let (mut set, daemons) = set_with_skews(&[0, 0]);
        let stop = std::sync::atomic::AtomicBool::new(false);
        let err = std::thread::scope(|s| {
            let stop = &stop;
            let d0 = &daemons[0];
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    d0.answer_probes();
                    std::thread::yield_now();
                }
            });
            let err = set
                .clock_sync(2, Duration::from_millis(100))
                .expect_err("daemon 1 must fail the sync");
            stop.store(true, Ordering::Relaxed);
            err
        });
        assert_eq!(err.daemon, 1);
        assert_eq!(err.addr, "fake#1");
        assert!(err.to_string().contains("fake#1"), "{err}");
        // The failure quarantined 1 but daemon 0 is synced and usable.
        assert_eq!(set.health(1), DaemonHealth::Quarantined);
        assert_eq!(set.health(0), DaemonHealth::Healthy);
        assert!(set.conn(0).clock().rounds > 0);
        daemons[0].send_sample("M", 7.0);
        assert_eq!(set.pump_until_samples(1, Duration::from_secs(5)), 1);
        let cov = set.merged_samples().coverage();
        assert_eq!((cov.nodes_reporting, cov.nodes_total), (1, 2));
    }

    #[test]
    fn goodbye_makes_sample_loss_exact() {
        let (mut set, daemons) = set_with_skews(&[0]);
        sync(&mut set, &daemons);
        for i in 0..3 {
            daemons[0].send_sample("M", i as f64);
        }
        set.pump_until_samples(3, Duration::from_secs(5));
        assert_eq!(set.coverage().samples_lost, 0);

        // The daemon claims it sent 5; we saw 3 — exactly 2 lost.
        let _ = send_wire(&*daemons[0].tx, &DaemonMsg::Goodbye { samples_sent: 5 });
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.conn(0).announced_sent().is_none() && Instant::now() < deadline {
            set.pump();
            std::thread::yield_now();
        }
        assert_eq!(set.conn(0).announced_sent(), Some(5));
        assert_eq!(set.conn(0).samples_lost(), 2);
        let cov = set.merged_samples().coverage();
        assert_eq!(cov.samples_lost, 2, "loss is a bound, never silent: {cov}");
        assert!(!cov.is_complete());
    }

    #[test]
    fn complete_coverage_bounds_collapse_to_points() {
        let cov = Coverage::complete(4);
        assert_eq!(cov.missing_fraction(), 0.0);
        let iv = cov.bound_mass(3.5, 10.0);
        assert!(iv.is_point(), "{iv}");
        assert_eq!(iv.lo, 3.5);
    }

    #[test]
    fn node_deficit_and_lost_samples_widen_monotonically() {
        // 3 of 4 reporting, no lost samples: hi scales by 4/3, lo stays.
        let cov34 = Coverage {
            nodes_reporting: 3,
            nodes_total: 4,
            samples_lost: 0,
        };
        let iv = cov34.bound_mass(3.0, 1.0);
        assert_eq!(iv.lo, 3.0);
        assert!((iv.hi - 4.0).abs() < 1e-12, "{iv}");

        // Lost samples add max-cost mass before the node scaling.
        let mut widths = Vec::new();
        for lost in 0..5u64 {
            let cov = Coverage {
                samples_lost: lost,
                ..cov34
            };
            widths.push(cov.bound_mass(3.0, 1.0).width());
        }
        assert!(
            widths.windows(2).all(|w| w[0] < w[1]),
            "width monotone in loss: {widths:?}"
        );

        // And monotone in the node deficit too.
        let mut deficit_widths = Vec::new();
        for reporting in (1..=4usize).rev() {
            let cov = Coverage {
                nodes_reporting: reporting,
                nodes_total: 4,
                samples_lost: 0,
            };
            deficit_widths.push(cov.bound_mass(3.0, 1.0).width());
        }
        assert!(
            deficit_widths.windows(2).all(|w| w[0] < w[1]),
            "width monotone in deficit: {deficit_widths:?}"
        );
    }

    #[test]
    fn zero_reporting_nodes_bound_nothing() {
        let cov = Coverage {
            nodes_reporting: 0,
            nodes_total: 4,
            samples_lost: 0,
        };
        let iv = cov.bound_mass(0.0, 1.0);
        assert_eq!(iv.lo, 0.0);
        assert!(iv.hi.is_infinite());
    }

    #[test]
    fn session_coverage_tracks_max_sample() {
        let (mut set, daemons) = set_with_skews(&[0]);
        sync(&mut set, &daemons);
        daemons[0].send_sample("M", 2.0);
        daemons[0].send_sample("M", 7.0);
        daemons[0].send_sample("M", 3.0);
        set.pump_until_samples(3, Duration::from_secs(5));
        let label = set.session_coverage();
        assert_eq!(label.max_sample_cost, 7.0);
        assert!(label.coverage.is_complete());
    }

    #[test]
    fn shutdown_all_collects_goodbyes() {
        let (mut set, daemons) = set_with_skews(&[0, 0]);
        sync(&mut set, &daemons);
        for (i, d) in daemons.iter().enumerate() {
            d.send_sample("M", i as f64);
        }
        set.pump_until_samples(2, Duration::from_secs(5));

        // Fake the daemon side of graceful shutdown: on Shutdown, reply
        // with a Goodbye announcing the true send count.
        let stop = std::sync::atomic::AtomicBool::new(false);
        let cov = std::thread::scope(|s| {
            let stop = &stop;
            for d in &daemons {
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        while let Ok(Some(frame)) = d.tx.try_recv() {
                            if matches!(DaemonMsg::from_frame(&frame), Ok(DaemonMsg::Shutdown)) {
                                let _ = send_wire(&*d.tx, &DaemonMsg::Goodbye { samples_sent: 1 });
                            }
                        }
                        std::thread::yield_now();
                    }
                });
            }
            let cov = set.shutdown_all(Duration::from_secs(5));
            stop.store(true, Ordering::Relaxed);
            cov
        });
        assert_eq!((cov.nodes_reporting, cov.nodes_total), (2, 2));
        assert_eq!(cov.samples_lost, 0, "everything announced was received");
        assert!(cov.is_complete());
        assert_eq!(set.conn(0).announced_sent(), Some(1));
        assert_eq!(set.conn(1).announced_sent(), Some(1));
    }

    #[test]
    fn drain_pool_is_built_once_and_reused() {
        let (mut set, daemons) = set_with_skews(&[0, 0, 0]);
        assert_eq!(set.pool_size(), None, "no pool before the first drain");
        for d in &daemons {
            d.send_sample("M", 1.0);
        }
        set.pump_until_samples(3, Duration::from_secs(5));
        let size = set.pool_size().expect("pool built by first parallel drain");
        assert!((1..=3).contains(&size), "min(conns, cores): {size}");
        for d in &daemons {
            d.send_sample("M", 2.0);
        }
        set.pump_until_samples(6, Duration::from_secs(5));
        assert_eq!(set.pool_size(), Some(size), "pool persists across drains");
        assert_eq!(set.samples().len(), 6);
    }

    #[test]
    fn sample_batches_drain_like_individual_samples() {
        let (mut set, daemons) = set_with_skews(&[0]);
        sync(&mut set, &daemons);
        let wall = daemons[0].now();
        let batch = pdmap_transport::SampleBatch {
            samples: (0..5)
                .map(|i| pdmap_transport::BatchSample {
                    metric: "M".into(),
                    focus: "/".into(),
                    wall: wall + i * 1_000,
                    value: i as f64,
                })
                .collect(),
            ..Default::default()
        };
        send_wire(&*daemons[0].tx, &batch).unwrap();
        assert_eq!(set.pump_until_samples(5, Duration::from_secs(5)), 5);
        assert_eq!(set.conn(0).samples_received(), 5);
        assert_eq!(set.data().shard_stats(0).samples, 5);
        let merged = set.merged_samples();
        let values: Vec<f64> = merged.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn columnar_streams_render_byte_identically_to_merged_streams() {
        // Two skewed daemons, each sending the SAME batch twice: once
        // drained by the classic struct pump, once by the columnar pump.
        // The two spines store independently, so rendering both and
        // comparing their Debug text proves byte-identity end to end
        // (skew correction, merge order, grouping, name materialization).
        let skews = [40_000_000i64, -25_000_000];
        let (mut set, daemons) = set_with_skews(&skews);
        sync(&mut set, &daemons);
        let batches: Vec<pdmap_transport::SampleBatch> = daemons
            .iter()
            .enumerate()
            .map(|(di, d)| pdmap_transport::SampleBatch {
                samples: (0..6)
                    .map(|i| pdmap_transport::BatchSample {
                        metric: if i % 2 == 0 { "CPU time" } else { "Summations" }.into(),
                        focus: if i < 3 { "/" } else { "/CMFarrays/bow.fcm" }.into(),
                        wall: d.now() + di as u64 * 100 + i * 1_000,
                        value: i as f64 * 0.5,
                    })
                    .collect(),
                ..Default::default()
            })
            .collect();
        for (d, b) in daemons.iter().zip(&batches) {
            send_wire(&*d.tx, b).unwrap();
        }
        assert_eq!(set.pump_until_samples(12, Duration::from_secs(5)), 12);
        for (d, b) in daemons.iter().zip(&batches) {
            send_wire(&*d.tx, b).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.data().merged_sample_columns().len() < 12 && Instant::now() < deadline {
            set.pump_columns();
        }
        let classic = set.merged_streams();
        let columnar = set.columnar_streams();
        assert_eq!(classic.len(), 4);
        assert_eq!(format!("{classic:?}"), format!("{columnar:?}"));
    }

    #[test]
    fn relay_subtree_coverage_composes_into_the_sets() {
        // Conn 0 is a leaf (1/1); conn 1 is a relay standing for a 4-node
        // subtree with one node already dark and 3 samples lost below it.
        let (mut set, daemons) = set_with_skews(&[0, 0]);
        sync(&mut set, &daemons);
        send_wire(
            &*daemons[1].tx,
            &DaemonMsg::SubtreeCoverage {
                nodes_reporting: 3,
                nodes_total: 4,
                samples_lost: 3,
            },
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.conn(1).subtree_coverage().is_none() && Instant::now() < deadline {
            set.pump();
        }
        assert_eq!(
            set.conn(1).subtree_coverage(),
            Some(Coverage {
                nodes_reporting: 3,
                nodes_total: 4,
                samples_lost: 3,
            })
        );
        let cov = set.coverage();
        assert_eq!((cov.nodes_reporting, cov.nodes_total), (4, 5));
        assert_eq!(cov.samples_lost, 3);

        // Quarantining the relay must cost its whole subtree, not one node.
        set.set_policy(fast_policy());
        daemons[1].tx.close();
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.health(1) != DaemonHealth::Quarantined && Instant::now() < deadline {
            set.supervise();
            std::thread::sleep(Duration::from_millis(2));
        }
        let cov = set.coverage();
        assert_eq!(
            (cov.nodes_reporting, cov.nodes_total),
            (1, 5),
            "a dark relay removes its entire subtree from coverage"
        );
    }

    #[test]
    fn unbatched_samples_intern_metric_and_focus() {
        let (mut set, daemons) = set_with_skews(&[0]);
        sync(&mut set, &daemons);
        daemons[0].send_sample("Computation Time", 1.0);
        daemons[0].send_sample("Computation Time", 2.0);
        set.pump_until_samples(2, Duration::from_secs(5));
        let s = set.samples();
        assert!(
            Arc::ptr_eq(&s[0].metric, &s[1].metric),
            "repeated metric names share one allocation"
        );
        assert!(
            Arc::ptr_eq(&s[0].focus, &s[1].focus),
            "repeated focus names share one allocation"
        );
    }

    /// Ships a synthetic telemetry snapshot — the rows `pdmapd --obs-period`
    /// would send — for a node reporting as `focus`.
    fn send_telemetry(d: &FakeDaemon, focus: &str) {
        d.send_focused(&obs_time_metric("daemon", "deliver"), focus, 2_000_000.0);
        d.send_focused(&obs_count_metric("daemon", "deliver"), focus, 4.0);
        d.send_focused(OBS_PERTURB_SPANS, focus, 4.0);
        d.send_focused(OBS_PERTURB_NULL, focus, 25.0);
        d.send_focused(OBS_PERTURB_OVERHEAD, focus, 100.0);
        d.send_focused(OBS_PERTURB_REPORTED, focus, 2_000_000.0);
    }

    #[test]
    fn fleet_health_assembles_nodes_and_answers_remote_questions() {
        let (mut set, daemons) = set_with_skews(&[0]);
        sync(&mut set, &daemons);
        let focus = obs_focus("daemon", "fake#0");
        send_telemetry(&daemons[0], &focus);
        daemons[0].send_sample("Computation Time", 1.0); // app data, not telemetry
        set.pump_until_samples(7, Duration::from_secs(5));

        let health = set.fleet_health();
        assert_eq!(health.len(), 1, "app samples must not create nodes");
        let node = health.node(&focus).expect("node visible");
        assert_eq!(node.daemon, 0);
        assert_eq!(node.samples, 6);
        assert_eq!(node.metric(OBS_PERTURB_SPANS), Some(4.0));

        // The SAS question about the remote node, answered from telemetry.
        let ns = Namespace::new();
        assert_eq!(
            set.ask_fleet_obs(&ns, &focus, "daemon", "deliver"),
            Some(2_000_000),
            "remote span-site question answered from streamed rows"
        );
        assert_eq!(
            set.ask_fleet_obs(&ns, &focus, "daemon", "send"),
            None,
            "a site the node never ran is not satisfied"
        );
        assert_eq!(
            set.ask_fleet_obs(&ns, "Tool/daemon:unknown", "daemon", "deliver"),
            None,
            "an unreported node is not satisfied"
        );
    }

    #[test]
    fn fleet_perturbation_aggregates_across_nodes() {
        let (mut set, daemons) = set_with_skews(&[0, 0]);
        sync(&mut set, &daemons);
        assert!(set.fleet_perturbation().is_none(), "no telemetry yet");
        send_telemetry(&daemons[0], &obs_focus("daemon", "fake#0"));
        send_telemetry(&daemons[1], &obs_focus("daemon", "fake#1"));
        set.pump_until_samples(12, Duration::from_secs(5));
        let p = set.fleet_perturbation().expect("both nodes reported");
        assert_eq!(p.nodes, 2);
        assert_eq!(p.spans, 8);
        assert_eq!(p.overhead_ns, 200);
        assert_eq!(p.reported_ns, 4_000_000);
        assert!((p.overhead_fraction() - 200.0 / 4_000_000.0).abs() < 1e-12);
        let banner = p.to_string();
        assert!(banner.contains("2 nodes"), "{banner}");
        assert!(banner.contains('%'), "{banner}");
    }

    #[test]
    fn stale_telemetry_degrades_a_chatty_connection() {
        let (mut set, daemons) = set_with_skews(&[0]);
        sync(&mut set, &daemons);
        set.set_policy(fast_policy());
        let focus = obs_focus("daemon", "fake#0");
        send_telemetry(&daemons[0], &focus);
        set.pump_until_samples(6, Duration::from_secs(5));
        assert_eq!(set.supervise().nodes_reporting, 1);
        assert_eq!(set.health(0), DaemonHealth::Healthy, "fresh telemetry");

        // Telemetry stops but application traffic keeps the heartbeat
        // fresh: silence-based degrade must NOT fire, staleness must.
        std::thread::sleep(Duration::from_millis(10));
        daemons[0].send_sample("keepalive", 0.0);
        set.pump();
        set.supervise();
        assert_eq!(
            set.health(0),
            DaemonHealth::Degraded,
            "stale telemetry degrades even a chatty link"
        );
        assert_eq!(
            set.fleet_health()
                .stale(set.policy().degrade_after)
                .first()
                .map(|n| n.label.as_str()),
            Some(focus.as_str()),
            "the stale node is named"
        );

        // Fresh telemetry clears the flag at the next pass.
        send_telemetry(&daemons[0], &focus);
        set.pump_until_samples(13, Duration::from_secs(5));
        set.supervise();
        assert_eq!(set.health(0), DaemonHealth::Healthy, "recovers on traffic");
    }

    fn seq_batch(seq: u64, epoch: u64, n: usize, wall: u64) -> pdmap_transport::SampleBatch {
        pdmap_transport::SampleBatch {
            samples: (0..n)
                .map(|i| pdmap_transport::BatchSample {
                    metric: "M".into(),
                    focus: "/".into(),
                    wall: wall + i as u64,
                    value: i as f64,
                })
                .collect(),
            epoch,
            seq,
            sources: Vec::new(),
        }
    }

    #[test]
    fn replayed_batches_are_suppressed_by_the_seq_watermark() {
        let (mut set, daemons) = set_with_skews(&[0]);
        sync(&mut set, &daemons);
        let wall = daemons[0].now();
        send_wire(&*daemons[0].tx, &seq_batch(1, 0, 3, wall)).unwrap();
        send_wire(&*daemons[0].tx, &seq_batch(2, 0, 2, wall)).unwrap();
        assert_eq!(set.pump_until_samples(5, Duration::from_secs(5)), 5);
        assert_eq!(set.conn(0).replays_suppressed(), 0);

        // A handover replays seq 2 under a bumped epoch: exactly one
        // suppression, zero new samples.
        send_wire(&*daemons[0].tx, &seq_batch(2, 1, 2, wall)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.conn(0).replays_suppressed() == 0 && Instant::now() < deadline {
            set.pump();
            std::thread::yield_now();
        }
        assert_eq!(set.conn(0).replays_suppressed(), 1);
        assert_eq!(set.conn(0).samples_received(), 5, "no double count");

        // Fresh seqs past the watermark still land; legacy unsequenced
        // batches (seq 0) are never deduped.
        send_wire(&*daemons[0].tx, &seq_batch(3, 1, 1, wall)).unwrap();
        send_wire(&*daemons[0].tx, &seq_batch(0, 0, 1, wall)).unwrap();
        assert_eq!(set.pump_until_samples(7, Duration::from_secs(5)), 7);
        assert_eq!(set.conn(0).replays_suppressed(), 1);
    }

    #[test]
    fn recovery_summary_rolls_up_readmissions_and_reparents() {
        let (mut set, _daemons) = set_with_skews(&[0]);
        assert!(set.recovery_summary().is_none(), "clean session: no banner");
        set.recoveries.push(RecoveryReport {
            daemon: 0,
            addr: "a".into(),
            attempts: 1,
            gap: Some(2),
        });
        set.reparents.push(ReparentReport {
            daemon: 0,
            addr: "a".into(),
            subtree: vec!["b".into(), "c".into()],
            gap: Some(3),
            epoch: 1,
        });
        let s = set.recovery_summary().unwrap();
        assert_eq!(
            (s.readmissions, s.reparents, s.nodes_rehomed, s.gap),
            (1, 1, 2, 5)
        );
        assert_eq!(
            s.to_string(),
            "1 readmissions, 1 re-parents (2 nodes re-homed), >=5 samples gap"
        );
    }

    /// A dialer seam standing in for the orphaned child of a dead relay:
    /// every dial opens an in-process link whose far end answers clock
    /// probes and records the [`TopologyMsg`] watermark seeds it is sent,
    /// then hands the server end to the test once the helper stops.
    struct OrphanDialer {
        seeds: Arc<Mutex<Vec<TopologyMsg>>>,
        servers: Arc<Mutex<Vec<Arc<dyn Transport>>>>,
        stop: Arc<std::sync::atomic::AtomicBool>,
    }

    impl OrphanDialer {
        fn new() -> Self {
            Self {
                seeds: Arc::new(Mutex::new(Vec::new())),
                servers: Arc::new(Mutex::new(Vec::new())),
                stop: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            }
        }

        fn dialer(&self) -> DialFn {
            let seeds = self.seeds.clone();
            let servers = self.servers.clone();
            let stop = self.stop.clone();
            Arc::new(move |_addr| {
                let link = Backend::InProc.link(&TransportConfig::default());
                lock(&servers).push(link.server.clone());
                let server = link.server.clone();
                let seeds = seeds.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let deadline = Instant::now() + Duration::from_secs(5);
                    while !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
                        while let Ok(Some(frame)) = server.try_recv() {
                            match frame.kind {
                                FrameKind::Topology => {
                                    if let Ok(msg) = TopologyMsg::from_frame(&frame) {
                                        lock(&seeds).push(msg);
                                    }
                                }
                                FrameKind::Daemon => {
                                    if let Ok(DaemonMsg::ClockProbe { token, t_tool_ns }) =
                                        DaemonMsg::from_frame(&frame)
                                    {
                                        let _ = send_wire(
                                            &*server,
                                            &DaemonMsg::ClockReply {
                                                token,
                                                t_tool_ns,
                                                t_daemon_ns: pdmap_obs::now_ns(),
                                            },
                                        );
                                    }
                                }
                                _ => {}
                            }
                        }
                        std::thread::yield_now();
                    }
                });
                link.client
            })
        }
    }

    #[test]
    fn quarantined_relay_subtree_is_adopted_with_exact_watermarks() {
        let (mut set, daemons) = set_with_skews(&[0]);
        sync(&mut set, &daemons);
        let mut policy = fast_policy();
        policy.adopt_orphans = true;
        set.set_policy(policy);
        let dialer = OrphanDialer::new();
        set.set_dialer(dialer.dialer());

        // Conn 0 is a relay: it announces one child, and its batches carry
        // a source mark proving the child's data through seq 2 (5 samples)
        // already arrived here — a tighter watermark than the
        // announcement's own (seq 1, 3 samples).
        let child = "127.0.0.1:47101";
        send_wire(
            &*daemons[0].tx,
            &TopologyMsg {
                epoch: 0,
                origin: "fake#0".into(),
                children: vec![TopoChild {
                    addr: child.into(),
                    watermark: 1,
                    received: 3,
                }],
            },
        )
        .unwrap();
        let mut batch = seq_batch(1, 0, 2, daemons[0].now());
        batch.sources = vec![pdmap_transport::SourceMark {
            origin: child.into(),
            through_seq: 2,
            samples: 5,
        }];
        send_wire(&*daemons[0].tx, &batch).unwrap();
        assert_eq!(set.pump_until_samples(2, Duration::from_secs(5)), 2);
        assert!(set.conn(0).topology().is_some(), "announcement folded in");

        // Kill the relay; supervision must quarantine it and re-parent the
        // orphan: dial it, sync it, and seed the *mark's* watermark.
        daemons[0].tx.close();
        std::thread::sleep(Duration::from_millis(15));
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.reparents().is_empty() && Instant::now() < deadline {
            set.supervise();
            std::thread::sleep(Duration::from_millis(2));
        }
        let rep = set.reparents().first().expect("subtree adopted").clone();
        assert_eq!((rep.daemon, rep.epoch), (0, 1));
        assert_eq!(rep.subtree, vec![child.to_string()]);
        assert_eq!(rep.gap, None, "relay died unannounced");
        assert_eq!(set.len(), 2, "the orphan is now a direct connection");
        assert_eq!(set.conn(1).addr(), child);
        assert!(set.conn(0).is_subtree_adopted());
        assert_eq!(set.epoch(), 1);

        let deadline = Instant::now() + Duration::from_secs(5);
        while lock(&dialer.seeds).is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let seed = lock(&dialer.seeds).first().cloned().expect("seed sent");
        assert_eq!(seed.origin, "tool");
        assert_eq!(seed.children[0].addr, child);
        assert_eq!(
            (seed.children[0].watermark, seed.children[0].received),
            (2, 5),
            "the delivered-atomic source mark beats the stale announcement"
        );

        // The dead relay's subtree no longer counts against coverage (its
        // node reports directly now), and the relay is never re-dialed —
        // a restarted relay re-attaching the child would double count.
        let cov = set.supervise();
        assert_eq!((cov.nodes_reporting, cov.nodes_total), (1, 1), "{cov}");
        assert!(set.recoveries().is_empty(), "no readmission for the relay");

        // End-to-end dedup through the seeded watermark: the orphan
        // replays its ring suffix (seq ≤ 2 suppressed, seq 3 folded).
        dialer.stop.store(true, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        let orphan = lock(&dialer.servers).first().cloned().expect("dialed once");
        send_wire(&*orphan, &seq_batch(2, 1, 5, pdmap_obs::now_ns())).unwrap();
        send_wire(&*orphan, &seq_batch(3, 1, 4, pdmap_obs::now_ns())).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while set.conn(1).replays_suppressed() == 0 && Instant::now() < deadline {
            set.pump();
            std::thread::yield_now();
        }
        assert_eq!(set.conn(1).replays_suppressed(), 1, "replay suppressed");
        assert_eq!(set.conn(1).samples_received(), 4, "only the fresh batch");
        assert_eq!(
            set.recovery_summary().unwrap().nodes_rehomed,
            1,
            "the banner counts the re-homed orphan"
        );
    }
}
