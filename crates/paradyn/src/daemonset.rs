//! Multi-daemon sessions: N `pdmapd` processes feeding one tool.
//!
//! §4.2.3: the real Paradyn runs "a daemon per node" and merges their
//! sample streams into one Data Manager. A [`DaemonSet`] is the tool side
//! of that topology: it connects to N daemon addresses over the
//! `pdmap-transport` frame protocol, pumps every link, routes each
//! connection's mapping information to its own [`DataManager`] shard, and
//! aligns each daemon's `wall` stamps onto the tool clock so the merged
//! stream sorts correctly.
//!
//! # Clock alignment
//!
//! `pdmap_obs::now_ns` is *per-process* (ns since that process's origin),
//! so two daemons' wall stamps are mutually meaningless — the offsets
//! between processes are arbitrary and large. [`DaemonSet::clock_sync`]
//! runs the classic bounded-round-trip exchange per daemon: the tool sends
//! [`DaemonMsg::ClockProbe`] carrying its clock `t0`, the daemon echoes it
//! back with its own clock `t_d`, and on receipt at `t1` the tool computes
//!
//! ```text
//! rtt    = t1 − t0
//! offset = t_d − (t0 + rtt/2)        // daemon clock − tool clock
//! ```
//!
//! The estimate's error is bounded by `rtt/2`; over several rounds the
//! minimum-RTT round wins (least queueing noise). Every sample from that
//! daemon is then mapped to tool time as `aligned = wall − offset`.
//!
//! # Sharding
//!
//! Connection `i` owns shard `i % shard_count` of the data manager, so N
//! daemons import mappings and deliver samples concurrently without
//! sharing a lock (see `datamgr`'s module docs for the invariants).

use crate::daemon::{DaemonError, DaemonMsg};
use crate::datamgr::DataManager;
use crate::stream::Stream;
use cmrts_sim::machine::ArrayAllocInfo;
use cmrts_sim::ArrayId;
use pdmap_transport::{
    send_wire, Frame, FrameKind, PifBlob, TcpClient, Transport, TransportConfig, WirePayload,
};
use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tokens correlate clock probes with replies across all sessions in the
/// process; uniqueness is all that matters.
static TOKENS: AtomicU64 = AtomicU64::new(1);

/// A per-daemon clock-offset estimate (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClockEstimate {
    /// Daemon clock minus tool clock, in ns. Subtract from a daemon wall
    /// stamp to land on the tool clock.
    pub offset_ns: i64,
    /// Round-trip time of the winning (minimum-RTT) probe; the alignment
    /// error is bounded by half of this.
    pub rtt_ns: u64,
    /// Probe rounds that completed.
    pub rounds: u32,
}

/// A metric sample stamped onto the tool clock.
#[derive(Clone, Debug, PartialEq)]
pub struct AlignedSample {
    /// Index of the daemon connection that delivered it.
    pub daemon: usize,
    /// Metric display name.
    pub metric: String,
    /// Focus, rendered.
    pub focus: String,
    /// The daemon's original wall stamp (its own clock).
    pub wall: u64,
    /// The stamp mapped onto the tool clock (`wall − offset`).
    pub aligned_ns: u64,
    /// Sampled value.
    pub value: f64,
}

/// Clock synchronisation failed for one daemon (no reply within the
/// timeout — link dead or daemon not answering probes).
#[derive(Clone, Debug)]
pub struct ClockSyncError {
    /// Connection index within the set.
    pub daemon: usize,
    /// Address (or label) of the connection.
    pub addr: String,
}

impl fmt::Display for ClockSyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clock sync with daemon {} ({}) timed out",
            self.daemon, self.addr
        )
    }
}

impl std::error::Error for ClockSyncError {}

/// One daemon connection: its transport, shard assignment, clock estimate,
/// and per-connection tallies.
pub struct DaemonConn {
    addr: String,
    tx: Arc<dyn Transport>,
    shard: usize,
    clock: ClockEstimate,
    samples_received: u64,
    pif_imports: u64,
    decode_errors: Vec<DaemonError>,
}

impl DaemonConn {
    /// Address or label this connection was opened with.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The data-manager shard this connection feeds.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The clock estimate from the last [`DaemonSet::clock_sync`].
    pub fn clock(&self) -> ClockEstimate {
        self.clock
    }

    /// Samples delivered by this daemon so far.
    pub fn samples_received(&self) -> u64 {
        self.samples_received
    }

    /// PIF blobs received from this daemon (including duplicates of
    /// already-imported catalogues).
    pub fn pif_imports(&self) -> u64 {
        self.pif_imports
    }

    /// Decode/receive errors on this link.
    pub fn decode_errors(&self) -> &[DaemonError] {
        &self.decode_errors
    }

    /// Maps a daemon wall stamp onto the tool clock.
    fn align(&self, wall: u64) -> u64 {
        (wall as i64 - self.clock.offset_ns).max(0) as u64
    }

    /// Drains every frame currently queued on this link into `out`,
    /// forwarding mapping information to `data`'s shard. If `want_token`
    /// is set, a matching clock reply is returned (and not dispatched).
    /// Returns `(frames_processed, matched_reply_t_daemon)`.
    fn drain(
        &mut self,
        data: &DataManager,
        out: &mut Vec<AlignedSample>,
        index: usize,
        want_token: Option<u64>,
    ) -> (usize, Option<u64>) {
        let mut n = 0;
        loop {
            match self.tx.try_recv() {
                Ok(Some(frame)) => {
                    n += 1;
                    if let Some(t_d) = self.dispatch(frame, data, out, index, want_token) {
                        return (n, Some(t_d));
                    }
                }
                Ok(None) => return (n, None),
                Err(e) => {
                    // Same contract as `Daemon::pump`: a link failure is
                    // recorded (and counted as `daemon.error.recv`), never
                    // silently swallowed; sticky repeats are deduped.
                    let err = crate::daemon::track_error(DaemonError::Recv(e.to_string()));
                    if self.decode_errors.last() != Some(&err) {
                        self.decode_errors.push(err);
                    }
                    return (n, None);
                }
            }
        }
    }

    fn dispatch(
        &mut self,
        frame: Frame,
        data: &DataManager,
        out: &mut Vec<AlignedSample>,
        index: usize,
        want_token: Option<u64>,
    ) -> Option<u64> {
        match frame.kind {
            FrameKind::Daemon => match DaemonMsg::from_frame(&frame) {
                Ok(DaemonMsg::ArrayAllocated {
                    id,
                    name,
                    extents,
                    dist,
                    subgrids,
                }) => {
                    data.array_allocated_on(
                        self.shard,
                        &ArrayAllocInfo {
                            array: ArrayId(id),
                            name,
                            extents,
                            dist,
                            subgrids,
                        },
                    );
                }
                Ok(DaemonMsg::ArrayFreed { id }) => data.array_freed_on(self.shard, ArrayId(id)),
                Ok(DaemonMsg::Sample {
                    metric,
                    focus,
                    wall,
                    value,
                }) => {
                    self.samples_received += 1;
                    data.note_samples_on(self.shard, 1);
                    out.push(AlignedSample {
                        daemon: index,
                        metric,
                        focus,
                        wall,
                        aligned_ns: self.align(wall),
                        value,
                    });
                }
                Ok(DaemonMsg::ClockReply {
                    token, t_daemon_ns, ..
                }) if want_token == Some(token) => return Some(t_daemon_ns),
                // A reply for an abandoned round, or a probe echoed back:
                // stale, carries nothing to forward.
                Ok(DaemonMsg::ClockReply { .. }) | Ok(DaemonMsg::ClockProbe { .. }) => {}
                Err(e) => self
                    .decode_errors
                    .push(crate::daemon::track_error(DaemonError::Codec(e.0))),
            },
            FrameKind::PifBlob => {
                match PifBlob::from_frame(&frame) {
                    Ok(blob) => {
                        self.pif_imports += 1;
                        match String::from_utf8(blob.0) {
                            Ok(text) => {
                                if let Err(e) = data.import_pif_text(self.shard, &text) {
                                    self.decode_errors.push(crate::daemon::track_error(
                                        DaemonError::Codec(format!("pif parse: {e}")),
                                    ));
                                }
                            }
                            Err(_) => self.decode_errors.push(crate::daemon::track_error(
                                DaemonError::Codec("pif blob is not utf-8".into()),
                            )),
                        }
                    }
                    Err(e) => self
                        .decode_errors
                        .push(crate::daemon::track_error(DaemonError::Codec(e.0))),
                }
            }
            // Heartbeats/acks/hellos are consumed inside the transport;
            // anything else surfacing here has no daemon-channel meaning.
            _ => {}
        }
        None
    }
}

/// The tool side of a multi-daemon session (see the module docs).
pub struct DaemonSet {
    data: Arc<DataManager>,
    conns: Vec<DaemonConn>,
    samples: Vec<AlignedSample>,
}

impl DaemonSet {
    /// Connects to `addrs` over TCP, one [`TcpClient`] per daemon,
    /// assigning connection `i` to data-manager shard `i % shard_count`.
    /// Connection establishment is asynchronous (the transport reconnects
    /// until the server appears), so this returns immediately;
    /// [`DaemonSet::clock_sync`] is the natural "is everyone up" barrier.
    pub fn connect(addrs: &[SocketAddr], cfg: TransportConfig, data: Arc<DataManager>) -> Self {
        let transports: Vec<(String, Arc<dyn Transport>)> = addrs
            .iter()
            .map(|a| {
                (
                    a.to_string(),
                    TcpClient::connect(*a, cfg) as Arc<dyn Transport>,
                )
            })
            .collect();
        Self::over_transports(transports, data)
    }

    /// Builds a set over already-connected transports — the seam used by
    /// in-process tests (and any future backend): element `i` of
    /// `transports` is `(label, tool-side transport of daemon i)`.
    pub fn over_transports(
        transports: Vec<(String, Arc<dyn Transport>)>,
        data: Arc<DataManager>,
    ) -> Self {
        let shards = data.shard_count();
        let conns = transports
            .into_iter()
            .enumerate()
            .map(|(i, (addr, tx))| DaemonConn {
                addr,
                tx,
                shard: i % shards,
                clock: ClockEstimate::default(),
                samples_received: 0,
                pif_imports: 0,
                decode_errors: Vec::new(),
            })
            .collect();
        Self {
            data,
            conns,
            samples: Vec::new(),
        }
    }

    /// Number of daemon connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when the set has no connections.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The shared data manager.
    pub fn data(&self) -> &Arc<DataManager> {
        &self.data
    }

    /// Connection `i`.
    pub fn conn(&self, i: usize) -> &DaemonConn {
        &self.conns[i]
    }

    /// Runs `rounds` probe rounds against every daemon, keeping each
    /// daemon's minimum-RTT estimate. `timeout` bounds each round; a
    /// daemon that never answers fails the sync. Frames that arrive while
    /// waiting (samples, mappings) are dispatched normally, not dropped.
    pub fn clock_sync(&mut self, rounds: u32, timeout: Duration) -> Result<(), ClockSyncError> {
        let data = self.data.clone();
        for (i, conn) in self.conns.iter_mut().enumerate() {
            let mut best: Option<ClockEstimate> = None;
            let mut done = 0u32;
            for _ in 0..rounds.max(1) {
                let token = TOKENS.fetch_add(1, Ordering::Relaxed);
                let t0 = pdmap_obs::now_ns();
                if send_wire(
                    &*conn.tx,
                    &DaemonMsg::ClockProbe {
                        token,
                        t_tool_ns: t0,
                    },
                )
                .is_err()
                {
                    continue;
                }
                let deadline = Instant::now() + timeout;
                let mut reply = None;
                while reply.is_none() && Instant::now() < deadline {
                    let (n, r) = conn.drain(&data, &mut self.samples, i, Some(token));
                    reply = r;
                    if reply.is_none() && n == 0 {
                        std::thread::yield_now();
                    }
                }
                let Some(t_daemon) = reply else { continue };
                let t1 = pdmap_obs::now_ns();
                let rtt = t1.saturating_sub(t0);
                let offset = t_daemon as i64 - (t0 + rtt / 2) as i64;
                done += 1;
                if best.is_none() || rtt < best.unwrap().rtt_ns {
                    best = Some(ClockEstimate {
                        offset_ns: offset,
                        rtt_ns: rtt,
                        rounds: 0,
                    });
                }
            }
            match best {
                Some(mut est) => {
                    est.rounds = done;
                    conn.clock = est;
                }
                None => {
                    return Err(ClockSyncError {
                        daemon: i,
                        addr: conn.addr.clone(),
                    })
                }
            }
        }
        // Re-align anything that arrived before (or during) the handshake.
        for s in &mut self.samples {
            s.aligned_ns = (s.wall as i64 - self.conns[s.daemon].clock.offset_ns).max(0) as u64;
        }
        Ok(())
    }

    /// Drains every link once, sequentially. Returns frames processed.
    pub fn pump(&mut self) -> usize {
        let data = self.data.clone();
        let mut n = 0;
        for (i, conn) in self.conns.iter_mut().enumerate() {
            n += conn.drain(&data, &mut self.samples, i, None).0;
        }
        n
    }

    /// Drains every link concurrently — one thread per connection, each
    /// feeding its own data-manager shard, which is the contention the
    /// sharded manager exists to absorb. Returns frames processed.
    pub fn pump_parallel(&mut self) -> usize {
        let data = &self.data;
        let mut batches: Vec<Vec<AlignedSample>> = Vec::new();
        let mut total = 0;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .conns
                .iter_mut()
                .enumerate()
                .map(|(i, conn)| {
                    s.spawn(move || {
                        let mut local = Vec::new();
                        let n = conn.drain(data, &mut local, i, None).0;
                        (n, local)
                    })
                })
                .collect();
            for h in handles {
                let (n, local) = h.join().expect("pump thread panicked");
                total += n;
                batches.push(local);
            }
        });
        for local in batches {
            self.samples.extend(local);
        }
        total
    }

    /// Pumps all links until at least `want` samples have been received in
    /// total (across the session's lifetime) or `timeout` elapses. Returns
    /// the session's sample total.
    pub fn pump_until_samples(&mut self, want: usize, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut spins = 0u32;
        loop {
            let got = self.pump();
            if self.samples.len() >= want || Instant::now() >= deadline {
                return self.samples.len();
            }
            if got > 0 {
                spins = 0;
            } else if spins < 64 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    /// All samples received so far, in arrival order.
    pub fn samples(&self) -> &[AlignedSample] {
        &self.samples
    }

    /// The merged sample stream, sorted by aligned (tool-clock) time —
    /// the single stream the paper's front end consumes. Stable, so
    /// same-instant samples keep arrival order.
    pub fn merged_samples(&self) -> Vec<AlignedSample> {
        let mut out = self.samples.clone();
        out.sort_by_key(|s| s.aligned_ns);
        out
    }

    /// Groups the merged stream into one [`Stream`] per (metric, focus)
    /// pair, with sample times on the tool clock. Units are unknown at
    /// this layer (the wire protocol does not carry them).
    pub fn merged_streams(&self) -> Vec<Stream> {
        let mut out: Vec<Stream> = Vec::new();
        for s in self.merged_samples() {
            match out
                .iter_mut()
                .find(|st| st.metric == s.metric && st.focus == s.focus)
            {
                Some(st) => st.samples.push((s.aligned_ns, s.value)),
                None => out.push(Stream {
                    metric: s.metric.clone(),
                    focus: s.focus.clone(),
                    units: String::new(),
                    samples: vec![(s.aligned_ns, s.value)],
                }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmap::model::Namespace;
    use pdmap_transport::Backend;

    /// An in-process fake `pdmapd`: answers clock probes with a skewed
    /// clock and lets the test send samples with the same skew — the
    /// process-boundary behaviour of `pdmapd` without the processes.
    struct FakeDaemon {
        tx: Arc<dyn Transport>,
        skew_ns: i64,
    }

    impl FakeDaemon {
        fn now(&self) -> u64 {
            (pdmap_obs::now_ns() as i64 + self.skew_ns).max(0) as u64
        }

        fn answer_probes(&self) {
            while let Ok(Some(frame)) = self.tx.try_recv() {
                if let Ok(DaemonMsg::ClockProbe { token, t_tool_ns }) =
                    DaemonMsg::from_frame(&frame)
                {
                    let _ = send_wire(
                        &*self.tx,
                        &DaemonMsg::ClockReply {
                            token,
                            t_tool_ns,
                            t_daemon_ns: self.now(),
                        },
                    );
                }
            }
        }

        fn send_sample(&self, metric: &str, value: f64) {
            let _ = send_wire(
                &*self.tx,
                &DaemonMsg::Sample {
                    metric: metric.into(),
                    focus: "/".into(),
                    wall: self.now(),
                    value,
                },
            );
        }
    }

    fn set_with_skews(skews: &[i64]) -> (DaemonSet, Vec<FakeDaemon>) {
        let cfg = TransportConfig::default();
        let mut transports = Vec::new();
        let mut daemons = Vec::new();
        for (i, &skew_ns) in skews.iter().enumerate() {
            let link = Backend::InProc.link(&cfg);
            transports.push((format!("fake#{i}"), link.client));
            daemons.push(FakeDaemon {
                tx: link.server,
                skew_ns,
            });
        }
        let data = Arc::new(DataManager::sharded(
            Namespace::new(),
            "CM Fortran",
            skews.len(),
        ));
        (DaemonSet::over_transports(transports, data), daemons)
    }

    /// Clock sync + probe answering interleaved: the fake daemons answer
    /// from a helper thread while the tool syncs.
    fn sync(set: &mut DaemonSet, daemons: &[FakeDaemon]) {
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for d in daemons {
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        d.answer_probes();
                        std::thread::yield_now();
                    }
                });
            }
            set.clock_sync(5, Duration::from_secs(2)).unwrap();
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn clock_sync_recovers_injected_skew() {
        let skews = [50_000_000i64, -50_000_000];
        let (mut set, daemons) = set_with_skews(&skews);
        sync(&mut set, &daemons);
        for (i, &skew) in skews.iter().enumerate() {
            let est = set.conn(i).clock();
            assert_eq!(est.rounds, 5);
            let err = (est.offset_ns - skew).unsigned_abs();
            // The estimate's error is bounded by rtt/2; allow headroom for
            // a loaded CI box, but ±50 ms skews must be clearly separated.
            assert!(
                err <= est.rtt_ns / 2 + 5_000_000,
                "daemon {i}: offset {} vs skew {skew} (rtt {})",
                est.offset_ns,
                est.rtt_ns
            );
        }
    }

    #[test]
    fn merged_stream_sorts_by_aligned_time_under_skew() {
        // Daemon 0 runs 50 ms fast, daemon 1 runs 50 ms slow. Samples are
        // sent alternately with real gaps between them, so the true send
        // order is 0,1,2,... (encoded in the value). Raw wall stamps order
        // all of daemon 1 before daemon 0 — a 100 ms split across a ~40 ms
        // experiment — so an unaligned merge is provably wrong, and the
        // aligned merge must recover the send order.
        let (mut set, daemons) = set_with_skews(&[50_000_000, -50_000_000]);
        sync(&mut set, &daemons);
        let n = 8usize;
        for i in 0..n {
            daemons[i % 2].send_sample("M", i as f64);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(set.pump_until_samples(n, Duration::from_secs(5)), n);

        let merged = set.merged_samples();
        let aligned_order: Vec<f64> = merged.iter().map(|s| s.value).collect();
        let want: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_eq!(aligned_order, want, "aligned merge = true send order");
        assert!(
            merged
                .windows(2)
                .all(|w| w[0].aligned_ns <= w[1].aligned_ns),
            "merged stream is nondecreasing in aligned time"
        );

        let mut by_wall = set.samples().to_vec();
        by_wall.sort_by_key(|s| s.wall);
        let wall_order: Vec<f64> = by_wall.iter().map(|s| s.value).collect();
        assert_ne!(
            wall_order, want,
            "raw wall stamps mis-order the merge; alignment is load-bearing"
        );
        assert_eq!(
            set.data().shard_stats(0).samples + set.data().shard_stats(1).samples,
            n as u64
        );
    }

    #[test]
    fn mappings_and_streams_flow_through_the_set() {
        let (mut set, daemons) = set_with_skews(&[0, 0]);
        sync(&mut set, &daemons);
        for (i, d) in daemons.iter().enumerate() {
            let _ = send_wire(
                &*d.tx,
                &DaemonMsg::ArrayAllocated {
                    id: i as u32,
                    name: format!("ARR{i}"),
                    extents: vec![64],
                    dist: cmrts_sim::Distribution::Block,
                    subgrids: vec![(i, 32, 32), (i + 2, 32, 32)],
                },
            );
            d.send_sample("Computation Time", 1.0 + i as f64);
        }
        set.pump_until_samples(2, Duration::from_secs(5));
        assert_eq!(set.data().dynamic_arrays().len(), 2);
        assert_eq!(set.data().shard_stats(0).imports, 1);
        assert_eq!(set.data().shard_stats(1).imports, 1);
        let axis = set.data().render_where_axis();
        assert!(axis.contains("ARR0") && axis.contains("ARR1"), "{axis}");
        let streams = set.merged_streams();
        assert_eq!(streams.len(), 1, "one (metric, focus) pair");
        assert_eq!(streams[0].len(), 2);
        assert_eq!(streams[0].metric, "Computation Time");
    }

    #[test]
    fn pump_parallel_feeds_all_shards() {
        let (mut set, daemons) = set_with_skews(&[0, 0, 0, 0]);
        for (i, d) in daemons.iter().enumerate() {
            for k in 0..8 {
                d.send_sample("M", (i * 8 + k) as f64);
            }
        }
        let mut total = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while total < 32 && Instant::now() < deadline {
            set.pump_parallel();
            total = set.samples().len();
        }
        assert_eq!(total, 32);
        for i in 0..4 {
            assert_eq!(set.data().shard_stats(i).samples, 8, "shard {i}");
            assert_eq!(set.conn(i).samples_received(), 8);
        }
    }
}
