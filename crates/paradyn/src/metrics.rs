//! The Metric Manager: on-request instantiation of MDL metrics, focus
//! constraints, and the mapping instrumentation that feeds the SAS.
//!
//! §6.3: "Paradyn compiles the descriptions into code that is inserted into
//! running applications at precisely the moment when the particular metric
//! is requested." A [`MetricRequest`] is one such insertion; dropping the
//! request (`cancel`) removes every snippet again.

use crate::catalogue::figure9_catalogue;
use crate::datamgr::{DataManager, FocusError};
use cmrts_sim::{CmrtsPoints, Machine};
use dyninst_sim::mdl::{parse_mdl, MdlFile, MetricDecl};
use dyninst_sim::{
    instantiate, InstrumentationManager, MetricInstance, Op, Pred, SentenceArg, Snippet,
    SnippetHandle,
};
use pdmap::hierarchy::Focus;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Failure to satisfy a metric request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// No metric with that name or id is in the catalogue.
    UnknownMetric(String),
    /// The focus could not be resolved.
    Focus(FocusError),
    /// The tool has no program loaded, so no machine can run the
    /// experiment.
    NoProgram,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::UnknownMetric(m) => write!(f, "unknown metric '{m}'"),
            RequestError::Focus(e) => write!(f, "focus error: {e}"),
            RequestError::NoProgram => write!(f, "no program loaded"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<FocusError> for RequestError {
    fn from(e: FocusError) -> Self {
        RequestError::Focus(e)
    }
}

/// A live metric request: metric × focus, instrumented and accumulating.
#[derive(Debug)]
pub struct MetricRequest {
    /// The requested metric's declaration.
    pub decl: MetricDecl,
    /// The focus it is constrained to.
    pub focus: Focus,
    /// How much of the fleet this request's value covers. A local
    /// (single-process) request is complete by construction; a
    /// multi-daemon frontend stamps the session's coverage here so a
    /// value computed while a node is quarantined is labeled, never
    /// silently low (see `daemonset::Coverage`).
    pub coverage: crate::daemonset::Coverage,
    instance: MetricInstance,
    ticks_per_second: f64,
}

impl MetricRequest {
    /// The current value in the metric's declared units, as of the
    /// machine's wall clock.
    pub fn value(&self, machine: &Machine) -> f64 {
        self.instance.value(
            machine.manager().primitives(),
            machine.wall_clock(),
            self.ticks_per_second,
        )
    }

    /// The raw primitive value (counter value or timer ticks).
    pub fn raw(&self, machine: &Machine) -> i64 {
        self.instance
            .read_raw(machine.manager().primitives(), machine.wall_clock())
    }

    /// The §6 answer as an interval: [`MetricRequest::value`] widened by
    /// the request's [`Coverage`](crate::daemonset::Coverage) stamp
    /// (`max_per_sample` prices lost samples — pass the session's max
    /// observed per-sample cost, or `0.0` when no samples were lost).
    /// Complete coverage yields the degenerate point, so this is a strict
    /// generalisation of the scalar answer.
    pub fn value_interval(
        &self,
        machine: &Machine,
        max_per_sample: f64,
    ) -> pdmap::interval::Interval {
        self.coverage
            .bound_mass(self.value(machine), max_per_sample)
    }

    /// Removes the request's instrumentation (idempotent).
    pub fn cancel(&mut self, mgr: &InstrumentationManager) {
        self.instance.uninstall(mgr);
    }

    /// True while the request's snippets are installed.
    pub fn active(&self) -> bool {
        self.instance.installed()
    }

    /// The backing primitive (for timer-state inspection).
    pub fn primitive(&self) -> dyninst_sim::MetricPrimitive {
        self.instance.primitive
    }
}

/// The metric manager: the catalogue plus request machinery.
pub struct MetricManager {
    mgr: Arc<InstrumentationManager>,
    catalogue: MdlFile,
    by_key: BTreeMap<String, usize>,
}

impl MetricManager {
    /// Creates a manager pre-loaded with the Figure 9 catalogue.
    pub fn new(mgr: Arc<InstrumentationManager>) -> Self {
        let mut mm = Self {
            mgr,
            catalogue: MdlFile::default(),
            by_key: BTreeMap::new(),
        };
        mm.install_file(figure9_catalogue());
        mm
    }

    fn install_file(&mut self, file: MdlFile) {
        for m in file.metrics {
            let idx = self.catalogue.metrics.len();
            self.by_key.insert(m.id.clone(), idx);
            self.by_key.insert(m.name.clone(), idx);
            self.catalogue.metrics.push(m);
        }
    }

    /// Adds user-defined metrics from MDL source (§6.3: users can define
    /// new metrics).
    pub fn add_mdl(&mut self, src: &str) -> Result<usize, dyninst_sim::MdlError> {
        let file = parse_mdl(src)?;
        let n = file.metrics.len();
        self.install_file(file);
        Ok(n)
    }

    /// All metric display names, catalogue order.
    pub fn metric_names(&self) -> Vec<&str> {
        self.catalogue
            .metrics
            .iter()
            .map(|m| m.name.as_str())
            .collect()
    }

    /// Looks up a declaration by id or display name.
    pub fn decl(&self, name: &str) -> Option<&MetricDecl> {
        self.by_key.get(name).map(|&i| &self.catalogue.metrics[i])
    }

    /// Requests `metric` constrained to `focus`: resolves the focus to
    /// guard predicates via the data manager, instantiates the MDL
    /// declaration, and inserts the snippets.
    pub fn request(
        &self,
        metric: &str,
        data: &DataManager,
        focus: &Focus,
        ticks_per_second: f64,
    ) -> Result<MetricRequest, RequestError> {
        self.request_in(&self.mgr, metric, data, focus, ticks_per_second)
    }

    /// Like [`MetricManager::request`], but inserts the snippets into an
    /// arbitrary instrumentation manager instead of the catalogue's own.
    /// The pure-experiment path uses this to instrument a *private*
    /// per-run manager, so concurrent experiments never execute each
    /// other's snippets against shared primitives.
    pub fn request_in(
        &self,
        mgr: &Arc<InstrumentationManager>,
        metric: &str,
        data: &DataManager,
        focus: &Focus,
        ticks_per_second: f64,
    ) -> Result<MetricRequest, RequestError> {
        let decl = self
            .decl(metric)
            .ok_or_else(|| RequestError::UnknownMetric(metric.to_string()))?
            .clone();
        let guard: Vec<Pred> = data.resolve_focus(focus)?;
        let instance = instantiate(mgr, &decl, guard);
        Ok(MetricRequest {
            decl,
            focus: focus.clone(),
            coverage: crate::daemonset::Coverage::default(),
            instance,
            ticks_per_second,
        })
    }

    /// The shared instrumentation manager.
    pub fn manager(&self) -> &Arc<InstrumentationManager> {
        &self.mgr
    }
}

/// The mapping instrumentation: SAS activate/deactivate snippets installed
/// at the substrate's entry/exit point pairs (§4.1's mapping points + the
/// §6.1 dispatcher→SAS channel). Removable as a unit — §5: "Paradyn allows
/// users to turn on or turn off all dynamic mapping instrumentation points
/// at once."
#[derive(Debug)]
pub struct MappingInstrumentation {
    handles: Vec<SnippetHandle>,
    installed: bool,
}

impl MappingInstrumentation {
    /// Installs activate/deactivate snippets at every sentence-carrying
    /// point pair of the CMRTS.
    pub fn install(mgr: &InstrumentationManager) -> Self {
        let points = CmrtsPoints::intern(mgr.registry());
        let pairs = [
            (points.array_enter, points.array_exit),
            (points.stmt_entry, points.stmt_exit),
            (points.block_entry, points.block_exit),
            (points.reduce_entry, points.reduce_exit),
            (points.xform_entry, points.xform_exit),
            (points.scan_entry, points.scan_exit),
            (points.sort_entry, points.sort_exit),
            (points.compute_entry, points.compute_exit),
            (points.io_entry, points.io_exit),
            (points.msg_send, points.msg_send_done),
        ];
        let mut handles = Vec::with_capacity(pairs.len() * 2);
        for (entry, exit) in pairs {
            // Activations run before any metric guard reads the SAS;
            // deactivations run after guarded timer stops have fired.
            handles.push(mgr.insert_with_priority(
                entry,
                Snippet::new(vec![Op::SasActivate(SentenceArg::FromContext)]),
                -10,
            ));
            handles.push(mgr.insert_with_priority(
                exit,
                Snippet::new(vec![Op::SasDeactivate(SentenceArg::FromContext)]),
                10,
            ));
        }
        Self {
            handles,
            installed: true,
        }
    }

    /// Removes all mapping snippets (idempotent).
    pub fn remove(&mut self, mgr: &InstrumentationManager) {
        if !self.installed {
            return;
        }
        for h in self.handles.drain(..) {
            mgr.remove(h);
        }
        self.installed = false;
    }

    /// True while installed.
    pub fn installed(&self) -> bool {
        self.installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmrts_sim::MachineConfig;
    use pdmap::model::Namespace;

    struct Fixture {
        ns: Namespace,
        mgr: Arc<InstrumentationManager>,
        dm: Arc<DataManager>,
        compiled: cmf_lang::Compiled,
    }

    fn fixture() -> Fixture {
        let ns = Namespace::new();
        let mgr = Arc::new(InstrumentationManager::new());
        let compiled = cmf_lang::compile(
            cmf_lang::samples::FIGURE4,
            &ns,
            &cmf_lang::CompileOptions::default(),
        )
        .unwrap();
        let dm = Arc::new(DataManager::new(ns.clone(), "CM Fortran"));
        dm.import_pif(&compiled.pif).unwrap();
        dm.ensure_machine(4);
        Fixture {
            ns,
            mgr,
            dm,
            compiled,
        }
    }

    fn machine(f: &Fixture) -> Machine {
        Machine::new(
            MachineConfig {
                nodes: 4,
                ..MachineConfig::default()
            },
            f.ns.clone(),
            f.mgr.clone(),
            f.compiled.program().clone(),
        )
        .unwrap()
    }

    #[test]
    fn whole_program_metric_counts_everything() {
        let f = fixture();
        let mm = MetricManager::new(f.mgr.clone());
        let req = mm
            .request("Summations", &f.dm, &Focus::whole_program(), 1e9)
            .unwrap();
        let mut m = machine(&f);
        m.run();
        // One SUM on 4 nodes: each node participates once.
        assert_eq!(req.value(&m), 4.0);
    }

    #[test]
    fn request_interval_widens_with_its_coverage_stamp() {
        let f = fixture();
        let mm = MetricManager::new(f.mgr.clone());
        let mut req = mm
            .request("Summations", &f.dm, &Focus::whole_program(), 1e9)
            .unwrap();
        let mut m = machine(&f);
        m.run();
        // The default stamp is zero-valued Coverage (0/0 nodes): complete
        // by convention, so the interval is a point.
        assert!(req.value_interval(&m, 1.0).is_point());
        // Restamping with a degraded fleet widens the same answer.
        req.coverage = crate::daemonset::Coverage {
            nodes_reporting: 2,
            nodes_total: 4,
            samples_lost: 1,
        };
        let iv = req.value_interval(&m, 1.0);
        assert_eq!(iv.lo, 4.0, "observed mass is the lower bound");
        assert!((iv.hi - 10.0).abs() < 1e-12, "(4 + 1×1) × 4/2 = 10: {iv}");
    }

    #[test]
    fn timer_metric_reports_seconds() {
        let f = fixture();
        let mm = MetricManager::new(f.mgr.clone());
        let tps = 1e9;
        let req = mm
            .request("Computation Time", &f.dm, &Focus::whole_program(), tps)
            .unwrap();
        let mut m = machine(&f);
        m.run();
        let v = req.value(&m);
        assert!(v > 0.0);
        // 2 fused fills over 2×1024 elements at elem_compute ticks each,
        // summed across the overlapping node timers — bounded by total
        // element-ticks.
        let upper = (2.0 * 1024.0 * m.cost_model().elem_compute as f64) / tps;
        assert!(v <= upper * 1.01, "v={v}, upper={upper}");
    }

    #[test]
    fn array_constrained_metric_separates_a_from_b() {
        let f = fixture();
        let mm = MetricManager::new(f.mgr.clone());
        let mut m = machine(&f);
        // The SAS must see array activity: install mapping instrumentation.
        let mut mi = MappingInstrumentation::install(&f.mgr);
        let focus_a = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
        let focus_b = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/B");
        let sum_a = mm.request("Summations", &f.dm, &focus_a, 1e9).unwrap();
        let sum_b = mm.request("Summations", &f.dm, &focus_b, 1e9).unwrap();
        let max_b = mm.request("MAXVAL Count", &f.dm, &focus_b, 1e9).unwrap();
        m.run();
        assert_eq!(sum_a.value(&m), 4.0, "SUM(A) on 4 nodes");
        assert_eq!(sum_b.value(&m), 0.0, "B is never summed");
        assert_eq!(max_b.value(&m), 4.0, "MAXVAL(B) on 4 nodes");
        mi.remove(&f.mgr);
    }

    #[test]
    fn node_constrained_metric() {
        let f = fixture();
        let mm = MetricManager::new(f.mgr.clone());
        let focus = Focus::whole_program().select("Machine", "/node#0");
        let req = mm.request("Node Activations", &f.dm, &focus, 1e9).unwrap();
        let all = mm
            .request("Node Activations", &f.dm, &Focus::whole_program(), 1e9)
            .unwrap();
        let mut m = machine(&f);
        m.run();
        let blocks = m.summary().blocks_dispatched as f64;
        assert_eq!(req.value(&m), blocks);
        assert_eq!(all.value(&m), blocks * 4.0);
    }

    #[test]
    fn cancel_stops_accumulation() {
        let f = fixture();
        let mm = MetricManager::new(f.mgr.clone());
        let mut req = mm
            .request("Broadcasts", &f.dm, &Focus::whole_program(), 1e9)
            .unwrap();
        assert!(req.active());
        req.cancel(&f.mgr);
        assert!(!req.active());
        let mut m = machine(&f);
        m.run();
        assert_eq!(req.value(&m), 0.0);
    }

    #[test]
    fn unknown_metric_and_bad_focus_error() {
        let f = fixture();
        let mm = MetricManager::new(f.mgr.clone());
        assert!(matches!(
            mm.request("Quux", &f.dm, &Focus::whole_program(), 1e9),
            Err(RequestError::UnknownMetric(_))
        ));
        let focus = Focus::whole_program().select("CMFarrays", "/missing");
        assert!(matches!(
            mm.request("Summations", &f.dm, &focus, 1e9),
            Err(RequestError::Focus(_))
        ));
    }

    #[test]
    fn user_defined_mdl_metric() {
        let f = fixture();
        let mut mm = MetricManager::new(f.mgr.clone());
        let n = mm
            .add_mdl(
                r#"metric my_allocs { name "My Allocations"; units operations;
                   foreach point "cmrts::alloc:return" { incrCounter 1; } }"#,
            )
            .unwrap();
        assert_eq!(n, 1);
        let req = mm
            .request("My Allocations", &f.dm, &Focus::whole_program(), 1e9)
            .unwrap();
        let mut m = machine(&f);
        m.run();
        assert_eq!(req.value(&m), 2.0, "A and B allocated");
    }

    #[test]
    fn mapping_instrumentation_is_removable() {
        let f = fixture();
        let mut mi = MappingInstrumentation::install(&f.mgr);
        assert!(mi.installed());
        mi.remove(&f.mgr);
        mi.remove(&f.mgr); // idempotent
        assert!(!mi.installed());
        // With it removed, array-constrained metrics see nothing.
        let mm = MetricManager::new(f.mgr.clone());
        let focus_a = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
        let req = mm.request("Summations", &f.dm, &focus_a, 1e9).unwrap();
        let mut m = machine(&f);
        m.run();
        assert_eq!(req.value(&m), 0.0);
    }

    #[test]
    fn array_constrained_timer_stops_cleanly() {
        // A guarded *timer* exercises the priority ordering: the guard must
        // still hold at the exit point when the stop runs (mapping
        // deactivations are priority +10, after metric snippets).
        let f = fixture();
        let mm = MetricManager::new(f.mgr.clone());
        let _mi = MappingInstrumentation::install(&f.mgr);
        let focus_a = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
        let t_a = mm.request("Summation Time", &f.dm, &focus_a, 1e9).unwrap();
        let t_all = mm
            .request("Reduction Time", &f.dm, &Focus::whole_program(), 1e9)
            .unwrap();
        let mut m = machine(&f);
        m.run();
        let v_a = t_a.value(&m);
        assert!(v_a > 0.0, "focused timer accumulated");
        assert!(v_a <= t_all.value(&m) + 1e-12, "SUM(A) ⊆ all reductions");
        // The timer actually stopped (not still running at run end).
        match t_a.primitive() {
            dyninst_sim::MetricPrimitive::Timer(t) => {
                assert!(!f.mgr.primitives().timer_running(t), "timer must stop");
            }
            other => panic!("expected timer, got {other:?}"),
        }
    }

    #[test]
    fn statement_constrained_metric() {
        let f = fixture();
        let mm = MetricManager::new(f.mgr.clone());
        let _mi = MappingInstrumentation::install(&f.mgr);
        // Line 5 is ASUM = SUM(A): constrain p2p traffic to it.
        let focus = Focus::whole_program().select("CMFstmts", "/hpfex.fcm/HPFEX/line#5");
        let req = mm
            .request("Point-to-Point Operations", &f.dm, &focus, 1e9)
            .unwrap();
        let all = mm
            .request(
                "Point-to-Point Operations",
                &f.dm,
                &Focus::whole_program(),
                1e9,
            )
            .unwrap();
        let mut m = machine(&f);
        m.run();
        // SUM(A) tree on 4 nodes: 3 + 1-to-CP = 4 sends; MAXVAL(B) adds 4
        // more to the unconstrained metric.
        assert_eq!(req.value(&m), 4.0);
        assert_eq!(all.value(&m), 8.0);
    }
}
