//! Self-mapped observability: the tool measured with its own mechanisms.
//!
//! §7 of the paper notes that the mapping mechanisms "are not specific to
//! CM Fortran" — here we turn them on the tool itself. Every span site the
//! [`pdmap_obs`] runtime knows about ([`pdmap_obs::KNOWN_SITES`]) becomes a
//! pair of MDL metrics at a "Tool" level, and the same sites become
//! Noun-Verb sentences (noun = tool component, verb = operation) so that a
//! performance question such as *"is the tool spending time in
//! transport/tcp send?"* runs through exactly the SAS machinery the paper
//! describes for application programs.
//!
//! Time metrics are declared with `units seconds` because MDL has no
//! nanosecond unit; the exported **values are nanoseconds** (the raw
//! [`pdmap_obs`] span totals). Consumers that want seconds divide by 1e9.

use dyninst_sim::mdl::{parse_mdl, MdlFile, MetricDecl};
use pdmap::model::{Namespace, SentenceId};
use pdmap::sas::{LocalSas, Question, SentencePattern};
use pdmap_obs::ObsSnapshot;

/// The level name used for every self-observation metric and NV term.
pub const OBS_LEVEL: &str = "Tool";

/// The MDL source for the tool self-observation catalogue: one Time and one
/// Count metric per [`pdmap_obs::KNOWN_SITES`] entry, in the same order.
///
/// The point names (`obs::<component>:<verb>`) are the observability
/// runtime's span sites, not CMRTS instrumentation points; the exporter
/// supplies their values directly from an [`ObsSnapshot`].
pub const OBS_MDL: &str = r#"
// ------------------------------ Tool level ------------------------------

metric obs_transport_inproc_send_time {
    name "Obs transport/inproc send Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds spent enqueueing frames on the in-process backend.";
    foreach point "obs::transport/inproc:send:enter" { startWallTimer; }
    foreach point "obs::transport/inproc:send:exit" { stopWallTimer; }
}

metric obs_transport_inproc_send_count {
    name "Obs transport/inproc send Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded enqueueing frames on the in-process backend.";
    foreach point "obs::transport/inproc:send" { incrCounter 1; }
}

metric obs_transport_inproc_deliver_time {
    name "Obs transport/inproc deliver Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds spent delivering frames from the in-process backend.";
    foreach point "obs::transport/inproc:deliver:enter" { startWallTimer; }
    foreach point "obs::transport/inproc:deliver:exit" { stopWallTimer; }
}

metric obs_transport_inproc_deliver_count {
    name "Obs transport/inproc deliver Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded delivering frames from the in-process backend.";
    foreach point "obs::transport/inproc:deliver" { incrCounter 1; }
}

metric obs_transport_tcp_send_time {
    name "Obs transport/tcp send Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds spent sending frames on the TCP backend.";
    foreach point "obs::transport/tcp:send:enter" { startWallTimer; }
    foreach point "obs::transport/tcp:send:exit" { stopWallTimer; }
}

metric obs_transport_tcp_send_count {
    name "Obs transport/tcp send Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded sending frames on the TCP backend.";
    foreach point "obs::transport/tcp:send" { incrCounter 1; }
}

metric obs_transport_tcp_deliver_time {
    name "Obs transport/tcp deliver Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds spent delivering frames from the TCP backend.";
    foreach point "obs::transport/tcp:deliver:enter" { startWallTimer; }
    foreach point "obs::transport/tcp:deliver:exit" { stopWallTimer; }
}

metric obs_transport_tcp_deliver_count {
    name "Obs transport/tcp deliver Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded delivering frames from the TCP backend.";
    foreach point "obs::transport/tcp:deliver" { incrCounter 1; }
}

metric obs_transport_tcp_reconnect_time {
    name "Obs transport/tcp reconnect Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds spent re-establishing lost TCP connections.";
    foreach point "obs::transport/tcp:reconnect:enter" { startWallTimer; }
    foreach point "obs::transport/tcp:reconnect:exit" { stopWallTimer; }
}

metric obs_transport_tcp_reconnect_count {
    name "Obs transport/tcp reconnect Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded re-establishing lost TCP connections.";
    foreach point "obs::transport/tcp:reconnect" { incrCounter 1; }
}

metric obs_daemon_send_time {
    name "Obs daemon send Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds the instrumentation library spent encoding and sending daemon messages.";
    foreach point "obs::daemon:send:enter" { startWallTimer; }
    foreach point "obs::daemon:send:exit" { stopWallTimer; }
}

metric obs_daemon_send_count {
    name "Obs daemon send Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded encoding and sending daemon messages.";
    foreach point "obs::daemon:send" { incrCounter 1; }
}

metric obs_daemon_deliver_time {
    name "Obs daemon deliver Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds the daemon spent pumping and decoding inbound messages.";
    foreach point "obs::daemon:deliver:enter" { startWallTimer; }
    foreach point "obs::daemon:deliver:exit" { stopWallTimer; }
}

metric obs_daemon_deliver_count {
    name "Obs daemon deliver Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded pumping and decoding inbound daemon messages.";
    foreach point "obs::daemon:deliver" { incrCounter 1; }
}

metric obs_sas_push_time {
    name "Obs sas push Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds spent activating sentences, including forwarding.";
    foreach point "obs::sas:push:enter" { startWallTimer; }
    foreach point "obs::sas:push:exit" { stopWallTimer; }
}

metric obs_sas_push_count {
    name "Obs sas push Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded activating sentences.";
    foreach point "obs::sas:push" { incrCounter 1; }
}

metric obs_sas_pop_time {
    name "Obs sas pop Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds spent deactivating sentences, including forwarding.";
    foreach point "obs::sas:pop:enter" { startWallTimer; }
    foreach point "obs::sas:pop:exit" { stopWallTimer; }
}

metric obs_sas_pop_count {
    name "Obs sas pop Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded deactivating sentences.";
    foreach point "obs::sas:pop" { incrCounter 1; }
}

metric obs_sas_evaluate_time {
    name "Obs sas evaluate Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds spent evaluating performance questions.";
    foreach point "obs::sas:evaluate:enter" { startWallTimer; }
    foreach point "obs::sas:evaluate:exit" { stopWallTimer; }
}

metric obs_sas_evaluate_count {
    name "Obs sas evaluate Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded evaluating performance questions.";
    foreach point "obs::sas:evaluate" { incrCounter 1; }
}

metric obs_sas_deliver_time {
    name "Obs sas deliver Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds spent applying forwarded sentence updates on receiving nodes.";
    foreach point "obs::sas:deliver:enter" { startWallTimer; }
    foreach point "obs::sas:deliver:exit" { stopWallTimer; }
}

metric obs_sas_deliver_count {
    name "Obs sas deliver Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded applying forwarded sentence updates.";
    foreach point "obs::sas:deliver" { incrCounter 1; }
}

metric obs_datamgr_import_time {
    name "Obs datamgr import Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds the Data Manager spent importing mapping information.";
    foreach point "obs::datamgr:import:enter" { startWallTimer; }
    foreach point "obs::datamgr:import:exit" { stopWallTimer; }
}

metric obs_datamgr_import_count {
    name "Obs datamgr import Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Spans recorded importing mapping information.";
    foreach point "obs::datamgr:import" { incrCounter 1; }
}

metric obs_cmrts_step_time {
    name "Obs cmrts step Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds the simulated CM-5 spent executing control-processor steps.";
    foreach point "obs::cmrts:step:enter" { startWallTimer; }
    foreach point "obs::cmrts:step:exit" { stopWallTimer; }
}

metric obs_cmrts_step_count {
    name "Obs cmrts step Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Control-processor steps executed by the simulated CM-5.";
    foreach point "obs::cmrts:step" { incrCounter 1; }
}

metric obs_consultant_experiment_time {
    name "Obs consultant experiment Time";
    units seconds;
    aggregate sum;
    level "Tool";
    description "Nanoseconds the consultant spent measuring hypothesis experiments.";
    foreach point "obs::consultant:experiment:enter" { startWallTimer; }
    foreach point "obs::consultant:experiment:exit" { stopWallTimer; }
}

metric obs_consultant_experiment_count {
    name "Obs consultant experiment Count";
    units operations;
    aggregate sum;
    level "Tool";
    description "Hypothesis experiments the consultant ran.";
    foreach point "obs::consultant:experiment" { incrCounter 1; }
}
"#;

/// Parses the self-observation catalogue. Panics only if the embedded
/// source is broken (covered by tests).
pub fn obs_catalogue() -> MdlFile {
    parse_mdl(OBS_MDL).expect("embedded OBS MDL must parse")
}

/// The observability counters behind [`CHAOS_MDL`], in catalogue order:
/// `(counter name, metric display name)`. These are the failure-handling
/// events the supervisor and transport bump (`daemonset::supervise`,
/// `FaultInjector`, the authenticated handshake), self-mapped so the
/// tool's own chaos handling is measurable with the same machinery as the
/// application.
pub const CHAOS_OBS_COUNTERS: [(&str, &str); 7] = [
    ("daemonset.quarantine", "Chaos Daemons Quarantined"),
    ("daemonset.degraded", "Chaos Daemons Degraded"),
    ("daemonset.recovered", "Chaos Daemons Recovered"),
    ("daemonset.retry", "Chaos Readmission Retries"),
    ("transport.faults_injected", "Chaos Faults Injected"),
    ("transport.auth_failures", "Chaos Auth Failures"),
    ("consultant.zero_wall", "Chaos Zero-Wall Experiments"),
];

/// The MDL source for the chaos/self-healing catalogue: one Count metric
/// per [`CHAOS_OBS_COUNTERS`] entry, in the same order.
pub const CHAOS_MDL: &str = r#"
// --------------------- Tool level: chaos handling ---------------------

metric chaos_daemons_quarantined {
    name "Chaos Daemons Quarantined";
    units operations;
    aggregate sum;
    level "Tool";
    description "Daemon connections the supervisor excluded from the session (dead link or error burst).";
    foreach point "obs::daemonset:quarantine" { incrCounter 1; }
}

metric chaos_daemons_degraded {
    name "Chaos Daemons Degraded";
    units operations;
    aggregate sum;
    level "Tool";
    description "Healthy-to-Degraded transitions (stale heartbeat or elevated decode-error rate).";
    foreach point "obs::daemonset:degrade" { incrCounter 1; }
}

metric chaos_daemons_recovered {
    name "Chaos Daemons Recovered";
    units operations;
    aggregate sum;
    level "Tool";
    description "Quarantined daemons readmitted after a successful reconnect and clock re-sync.";
    foreach point "obs::daemonset:recover" { incrCounter 1; }
}

metric chaos_readmission_retries {
    name "Chaos Readmission Retries";
    units operations;
    aggregate sum;
    level "Tool";
    description "Readmission attempts against quarantined daemons (capped exponential backoff).";
    foreach point "obs::daemonset:retry" { incrCounter 1; }
}

metric chaos_faults_injected {
    name "Chaos Faults Injected";
    units operations;
    aggregate sum;
    level "Tool";
    description "Frames dropped, duplicated, corrupted, delayed or partitioned by the fault injector.";
    foreach point "obs::transport:fault" { incrCounter 1; }
}

metric chaos_auth_failures {
    name "Chaos Auth Failures";
    units operations;
    aggregate sum;
    level "Tool";
    description "Peers rejected by the authenticated transport handshake before any session frame.";
    foreach point "obs::transport:auth_reject" { incrCounter 1; }
}

metric chaos_zero_wall_experiments {
    name "Chaos Zero-Wall Experiments";
    units operations;
    aggregate sum;
    level "Tool";
    description "Consultant experiments whose run reported no wall time and so answered Unknown instead of a ratio.";
    foreach point "obs::consultant:zero_wall" { incrCounter 1; }
}
"#;

/// Parses the chaos catalogue. Panics only if the embedded source is
/// broken (covered by tests).
pub fn chaos_catalogue() -> MdlFile {
    parse_mdl(CHAOS_MDL).expect("embedded CHAOS MDL must parse")
}

/// Exports the chaos counters from an [`ObsSnapshot`] as `(metric, value)`
/// samples in catalogue order — counters the snapshot has never seen
/// report zero, so the export is always complete.
pub fn export_chaos_obs(snap: &ObsSnapshot) -> Vec<(MetricDecl, u64)> {
    let catalogue = chaos_catalogue();
    catalogue
        .metrics
        .into_iter()
        .zip(CHAOS_OBS_COUNTERS)
        .map(|(m, (counter, _))| {
            let v = snap.counter(counter);
            (m, v)
        })
        .collect()
}

/// The observability counters behind [`CONSULTANT_MDL`], in catalogue
/// order: `(counter name, metric display name)`. These are the parallel
/// Performance Consultant's self-observation events — frontier pool
/// sizing, measurement-cache effectiveness, and early-cut pruning — so the
/// consultant's own search economics are measurable with the same
/// machinery it applies to applications.
pub const CONSULTANT_OBS_COUNTERS: [(&str, &str); 5] = [
    ("consultant.pool.searches", "Consultant Pool Searches"),
    ("consultant.pool.workers", "Consultant Pool Workers"),
    ("consultant.mcache_hit", "Consultant Measurement Cache Hits"),
    (
        "consultant.mcache_miss",
        "Consultant Measurement Cache Misses",
    ),
    ("consultant.early_cut", "Consultant Early Cuts"),
];

/// The MDL source for the parallel-consultant catalogue: one Count metric
/// per [`CONSULTANT_OBS_COUNTERS`] entry, in the same order.
pub const CONSULTANT_MDL: &str = r#"
// ------------------ Tool level: parallel consultant ------------------

metric consultant_pool_searches {
    name "Consultant Pool Searches";
    units operations;
    aggregate sum;
    level "Tool";
    description "Parallel frontier searches started.";
    foreach point "obs::consultant:pool_search" { incrCounter 1; }
}

metric consultant_pool_workers {
    name "Consultant Pool Workers";
    units operations;
    aggregate sum;
    level "Tool";
    description "Frontier workers spawned across all parallel searches (min(cores, frontier) per search).";
    foreach point "obs::consultant:pool_worker" { incrCounter 1; }
}

metric consultant_mcache_hits {
    name "Consultant Measurement Cache Hits";
    units operations;
    aggregate sum;
    level "Tool";
    description "Experiments answered from a cached (or in-flight shared) measurement batch.";
    foreach point "obs::consultant:mcache_hit" { incrCounter 1; }
}

metric consultant_mcache_misses {
    name "Consultant Measurement Cache Misses";
    units operations;
    aggregate sum;
    level "Tool";
    description "Experiments that ran an instrumented machine (one per distinct focus, program and coverage epoch).";
    foreach point "obs::consultant:mcache_miss" { incrCounter 1; }
}

metric consultant_early_cuts {
    name "Consultant Early Cuts";
    units operations;
    aggregate sum;
    level "Tool";
    description "Subtrees pruned because the parent's decided (or unmeasurable) interval could not be changed by any child experiment.";
    foreach point "obs::consultant:early_cut" { incrCounter 1; }
}
"#;

/// Parses the parallel-consultant catalogue. Panics only if the embedded
/// source is broken (covered by tests).
pub fn consultant_catalogue() -> MdlFile {
    parse_mdl(CONSULTANT_MDL).expect("embedded CONSULTANT MDL must parse")
}

/// Exports the parallel-consultant counters from an [`ObsSnapshot`] as
/// `(metric, value)` samples in catalogue order — counters the snapshot
/// has never seen report zero, so the export is always complete.
pub fn export_consultant_obs(snap: &ObsSnapshot) -> Vec<(MetricDecl, u64)> {
    let catalogue = consultant_catalogue();
    catalogue
        .metrics
        .into_iter()
        .zip(CONSULTANT_OBS_COUNTERS)
        .map(|(m, (counter, _))| {
            let v = snap.counter(counter);
            (m, v)
        })
        .collect()
}

/// The per-shard counter fields exported for a sharded
/// [`crate::datamgr::DataManager`], in catalogue order. `lock_wait_ns`
/// follows the Time-metric convention (declared `units seconds`, values in
/// nanoseconds — see the module docs).
pub const SHARD_OBS_FIELDS: [(&str, &str, &str); 3] = [
    (
        "imports",
        "operations",
        "Mapping-information imports (dynamic allocations and wire PIFs) routed to this shard.",
    ),
    (
        "samples",
        "operations",
        "Metric samples delivered by this shard's daemon connection.",
    ),
    (
        "lock_wait_ns",
        "seconds",
        "Nanoseconds spent waiting to acquire this shard's lock.",
    ),
];

/// Generates MDL source for the per-shard Data Manager counters of a
/// session with `shards` shards: one Count-style metric per shard per
/// [`SHARD_OBS_FIELDS`] entry, named `Obs datamgr shard<K> <field>`. The
/// shard population is per-session (unlike the fixed [`pdmap_obs::KNOWN_SITES`]),
/// which is why this catalogue is generated rather than embedded.
pub fn shard_obs_mdl(shards: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("// ---------------- Tool level: datamgr shards ----------------\n");
    for k in 0..shards.max(1) {
        for (field, units, desc) in SHARD_OBS_FIELDS {
            let ident = field.replace('.', "_");
            // MDL pairs `seconds` with wall timers and everything else
            // with counters; mirror the hand-written catalogue above.
            let body = if units == "seconds" {
                format!(
                    "foreach point \"obs::datamgr/shard{k}:{field}:enter\" {{ startWallTimer; }}\n    foreach point \"obs::datamgr/shard{k}:{field}:exit\" {{ stopWallTimer; }}"
                )
            } else {
                format!("foreach point \"obs::datamgr/shard{k}:{field}\" {{ incrCounter 1; }}")
            };
            write!(
                out,
                r#"
metric obs_datamgr_shard{k}_{ident} {{
    name "{}";
    units {units};
    aggregate sum;
    level "Tool";
    description "Shard {k}: {desc}";
    {body}
}}
"#,
                shard_obs_metric(k, field),
            )
            .expect("writing to a String cannot fail");
        }
    }
    out
}

/// The display name of a per-shard counter metric.
pub fn shard_obs_metric(shard: usize, field: &str) -> String {
    format!("Obs datamgr shard{shard} {field}")
}

/// Parses the generated per-shard catalogue for `shards` shards.
pub fn shard_obs_catalogue(shards: usize) -> MdlFile {
    parse_mdl(&shard_obs_mdl(shards)).expect("generated shard OBS MDL must parse")
}

/// Exports a data manager's per-shard counters as `(metric, value)`
/// samples in catalogue order — the sharded counterpart of [`export_obs`],
/// reading [`crate::datamgr::DataManager::shard_stats`] instead of a span
/// snapshot.
pub fn export_shard_obs(dm: &crate::datamgr::DataManager) -> Vec<(MetricDecl, u64)> {
    let catalogue = shard_obs_catalogue(dm.shard_count());
    let mut values = Vec::with_capacity(dm.shard_count() * SHARD_OBS_FIELDS.len());
    for k in 0..dm.shard_count() {
        let st = dm.shard_stats(k);
        values.extend([st.imports, st.samples, st.lock_wait_ns]);
    }
    catalogue.metrics.into_iter().zip(values).collect()
}

/// The display name of the Time metric for a span site.
pub fn obs_time_metric(component: &str, verb: &str) -> String {
    format!("Obs {component} {verb} Time")
}

/// The display name of the Count metric for a span site.
pub fn obs_count_metric(component: &str, verb: &str) -> String {
    format!("Obs {component} {verb} Count")
}

/// Focus prefix marking a sample as fleet health telemetry about a tool
/// process rather than application data. `DaemonSet` routes samples whose
/// focus starts with this into its `FleetHealth` view.
pub const OBS_FOCUS_PREFIX: &str = "Tool/";

/// The focus label under which a fleet node reports its own telemetry,
/// e.g. `obs_focus("daemon", "127.0.0.1:7001")` → `"Tool/daemon:127.0.0.1:7001"`.
pub fn obs_focus(role: &str, addr: &str) -> String {
    format!("{OBS_FOCUS_PREFIX}{role}:{addr}")
}

/// Metric-name prefix for a node's named counters
/// (`"Obs counter daemon.decode_errors"`, ...).
pub const OBS_COUNTER_PREFIX: &str = "Obs counter ";

/// The display name of a self-reported counter metric.
pub fn obs_counter_metric(name: &str) -> String {
    format!("{OBS_COUNTER_PREFIX}{name}")
}

/// Metric names for a node's self-reported perturbation accounting (see
/// `pdmap_obs::PerturbationReport`): overhead and reported totals are
/// nanoseconds, spans is a count, null is the calibrated per-span cost.
pub const OBS_PERTURB_OVERHEAD: &str = "Obs perturbation overhead";
/// Spans the node has recorded (the multiplier on the null cost).
pub const OBS_PERTURB_SPANS: &str = "Obs perturbation spans";
/// The node's calibrated cost of one disabled-path span, ns.
pub const OBS_PERTURB_NULL: &str = "Obs perturbation null";
/// Total span nanoseconds the node reported (pre-correction).
pub const OBS_PERTURB_REPORTED: &str = "Obs perturbation reported";

/// Metric names for a relay's subtree health rollup — the same
/// `(reporting, total, lost)` triple `SubtreeCoverage` folds upward,
/// restated as telemetry so `FleetHealth` sees interior nodes' view of
/// their own subtrees.
pub const OBS_SUBTREE_REPORTING: &str = "Obs subtree reporting";
/// Leaf daemons the subtree was configured with.
pub const OBS_SUBTREE_TOTAL: &str = "Obs subtree total";
/// Samples known lost below the reporting relay.
pub const OBS_SUBTREE_LOST: &str = "Obs subtree lost";

/// Parses an `obs_time_metric`/`obs_count_metric` display name back into
/// `(component, verb, is_time)`. Returns `None` for anything else —
/// counter and perturbation metrics deliberately do not match, so a
/// telemetry consumer can partition a node's rows by shape alone.
pub fn parse_obs_metric(name: &str) -> Option<(&str, &str, bool)> {
    let rest = name.strip_prefix("Obs ")?;
    let mut parts = rest.split(' ');
    let (Some(component), Some(verb), Some(kind), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return None;
    };
    match kind {
        "Time" => Some((component, verb, true)),
        "Count" => Some((component, verb, false)),
        _ => None,
    }
}

/// One remote span site's totals: `(component, verb, count, total_ns)` —
/// the portable form of a `SiteSnapshot` rebuilt from streamed telemetry.
pub type SiteTotal = (String, String, u64, u64);

/// Renders an [`ObsSnapshot`] as `(metric name, value)` rows in catalogue
/// order: for every known site, its Time row (total nanoseconds) then its
/// Count row (span count). Sites the snapshot has never seen report zero.
pub fn obs_rows(snap: &ObsSnapshot) -> Vec<(String, u64)> {
    let mut rows = Vec::with_capacity(pdmap_obs::KNOWN_SITES.len() * 2);
    for &(component, verb) in pdmap_obs::KNOWN_SITES {
        let (count, total_ns) = snap
            .site(component, verb)
            .map(|s| (s.count, s.total_ns))
            .unwrap_or((0, 0));
        rows.push((obs_time_metric(component, verb), total_ns));
        rows.push((obs_count_metric(component, verb), count));
    }
    rows
}

/// Exports an observability snapshot as `(metric, value)` samples in
/// catalogue order, pairing each "Tool"-level metric with its span site.
/// Time metrics carry nanosecond totals (see the module docs); Count
/// metrics carry span counts.
pub fn export_obs(snap: &ObsSnapshot) -> Vec<(MetricDecl, u64)> {
    let catalogue = obs_catalogue();
    let rows = obs_rows(snap);
    catalogue
        .metrics
        .into_iter()
        .filter_map(|m| {
            rows.iter()
                .find(|(name, _)| *name == m.name)
                .map(|&(_, v)| (m, v))
        })
        .collect()
}

/// Projects an observability snapshot into the Noun-Verb model: each known
/// span site becomes a sentence (noun = component, verb = operation) at the
/// "Tool" level, with the site's total nanoseconds as its cost. Sites with
/// no recorded spans are skipped, so only sentences that were actually
/// "spoken" by the tool appear.
pub fn obs_sentences(ns: &Namespace, snap: &ObsSnapshot) -> Vec<(SentenceId, u64)> {
    let level = ns.level(OBS_LEVEL);
    let mut out = Vec::new();
    for &(component, verb) in pdmap_obs::KNOWN_SITES {
        let Some(site) = snap.site(component, verb) else {
            continue;
        };
        if site.count == 0 {
            continue;
        }
        let noun = ns.noun(level, component, "tool component");
        let vb = ns.verb(level, verb, "tool operation");
        out.push((ns.say(vb, [noun]), site.total_ns));
    }
    out
}

/// Asks a performance question about the tool itself: *"did `component`
/// spend time in `verb`, and how much?"*
///
/// The question is answered with the paper's own machinery — the sentences
/// from [`obs_sentences`] are activated in a [`LocalSas`], a
/// [`Question`] with a single noun-verb [`SentencePattern`] is registered,
/// and the answer is the summed cost (nanoseconds) of the active sentences
/// matching the pattern. Returns `None` when the question is not satisfied
/// (the site never ran), `Some(total_ns)` otherwise.
pub fn ask_obs(ns: &Namespace, snap: &ObsSnapshot, component: &str, verb: &str) -> Option<u64> {
    let totals: Vec<SiteTotal> = pdmap_obs::KNOWN_SITES
        .iter()
        .filter_map(|&(c, v)| {
            snap.site(c, v)
                .map(|s| (c.to_string(), v.to_string(), s.count, s.total_ns))
        })
        .collect();
    ask_obs_totals(ns, &totals, component, verb)
}

/// Projects remote span-site totals into the Noun-Verb model — the fleet
/// counterpart of [`obs_sentences`], fed from streamed telemetry instead
/// of a local snapshot. Zero-count sites are skipped, mirroring the
/// local rule that only sentences actually "spoken" appear.
pub fn obs_totals_sentences(ns: &Namespace, totals: &[SiteTotal]) -> Vec<(SentenceId, u64)> {
    let level = ns.level(OBS_LEVEL);
    let mut out = Vec::new();
    for (component, verb, count, total_ns) in totals {
        if *count == 0 {
            continue;
        }
        let noun = ns.noun(level, component, "tool component");
        let vb = ns.verb(level, verb, "tool operation");
        out.push((ns.say(vb, [noun]), *total_ns));
    }
    out
}

/// [`ask_obs`] generalised over [`SiteTotal`] rows, so the same SAS
/// machinery can answer about a *remote* process whose registry the tool
/// only knows through streamed health telemetry (see
/// `DaemonSet::ask_fleet_obs`). Returns `None` when the question is not
/// satisfied (the site never ran on that node), `Some(total_ns)` otherwise.
pub fn ask_obs_totals(
    ns: &Namespace,
    totals: &[SiteTotal],
    component: &str,
    verb: &str,
) -> Option<u64> {
    let level = ns.level(OBS_LEVEL);
    let noun = ns.noun(level, component, "tool component");
    let vb = ns.verb(level, verb, "tool operation");
    let pattern = SentencePattern::noun_verb(noun, vb);
    let question = Question::new(
        &format!("is the tool spending time in {component} {verb}?"),
        vec![pattern.clone()],
    );

    let sentences = obs_totals_sentences(ns, totals);
    let mut sas = LocalSas::new(ns.clone());
    let qid = sas.register_question(&question);
    for &(sid, _) in &sentences {
        sas.activate(sid);
    }
    if !sas.satisfied(qid) {
        return None;
    }
    let total: u64 = sentences
        .iter()
        .filter(|&&(sid, _)| pattern.matches(&ns.sentence_def(sid)))
        .map(|&(_, cost)| cost)
        .sum();
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_catalogue_parses_and_roundtrips() {
        let f = obs_catalogue();
        assert_eq!(f.metrics.len(), pdmap_obs::KNOWN_SITES.len() * 2);
        let reparsed = parse_mdl(&f.emit()).unwrap();
        assert_eq!(f, reparsed);
    }

    #[test]
    fn obs_catalogue_matches_known_sites_exactly() {
        // Every known span site must have a Time and a Count metric, in
        // site order, and nothing else — the exporter relies on the
        // pairing just as the transport exporter does.
        let f = obs_catalogue();
        let snap = pdmap_obs::snapshot();
        let row_names: Vec<String> = obs_rows(&snap).into_iter().map(|(n, _)| n).collect();
        let metric_names: Vec<&str> = f.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(metric_names, row_names);
        for m in &f.metrics {
            assert_eq!(m.level, OBS_LEVEL, "metric {} has wrong level", m.id);
        }
    }

    #[test]
    fn chaos_catalogue_matches_counters_exactly() {
        let f = chaos_catalogue();
        assert_eq!(f.metrics.len(), CHAOS_OBS_COUNTERS.len());
        let reparsed = parse_mdl(&f.emit()).unwrap();
        assert_eq!(f, reparsed);
        for (m, (_, display)) in f.metrics.iter().zip(CHAOS_OBS_COUNTERS) {
            assert_eq!(m.name, display);
            assert_eq!(m.level, OBS_LEVEL, "metric {} has wrong level", m.id);
        }
    }

    #[test]
    fn consultant_catalogue_matches_counters_exactly() {
        let f = consultant_catalogue();
        assert_eq!(f.metrics.len(), CONSULTANT_OBS_COUNTERS.len());
        let reparsed = parse_mdl(&f.emit()).unwrap();
        assert_eq!(f, reparsed);
        for (m, (_, display)) in f.metrics.iter().zip(CONSULTANT_OBS_COUNTERS) {
            assert_eq!(m.name, display);
            assert_eq!(m.level, OBS_LEVEL, "metric {} has wrong level", m.id);
        }
    }

    #[test]
    fn consultant_exporter_reads_the_counters() {
        // The registry is global to the test binary, so assert lower
        // bounds rather than exact values.
        pdmap_obs::counter("consultant.pool.searches").incr();
        pdmap_obs::counter("consultant.early_cut").incr();
        let snap = pdmap_obs::snapshot();
        let rows = export_consultant_obs(&snap);
        assert_eq!(rows.len(), CONSULTANT_OBS_COUNTERS.len());
        let lookup = |name: &str| {
            rows.iter()
                .find(|(m, _)| m.name == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(lookup("Consultant Pool Searches") >= 1);
        assert!(lookup("Consultant Early Cuts") >= 1);
        let _ = lookup("Consultant Measurement Cache Hits");
    }

    #[test]
    fn chaos_exporter_reads_the_counters() {
        // The registry is global to the test binary, so assert lower
        // bounds rather than exact values.
        pdmap_obs::counter("daemonset.quarantine").incr();
        pdmap_obs::counter("transport.auth_failures").incr();
        let snap = pdmap_obs::snapshot();
        let rows = export_chaos_obs(&snap);
        assert_eq!(rows.len(), CHAOS_OBS_COUNTERS.len());
        let lookup = |name: &str| {
            rows.iter()
                .find(|(m, _)| m.name == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(lookup("Chaos Daemons Quarantined") >= 1);
        assert!(lookup("Chaos Auth Failures") >= 1);
        // Never-bumped counters still export (as zero or whatever other
        // tests in this binary drove them to) — the row must exist.
        let _ = lookup("Chaos Faults Injected");
    }

    #[test]
    fn exporter_pairs_every_site() {
        // The registry is global to the test binary, so assert lower
        // bounds rather than exact values.
        let site = pdmap_obs::span_site("datamgr", "import");
        pdmap_obs::record_span(&site, pdmap_obs::now_ns(), 1_000);
        pdmap_obs::record_span(&site, pdmap_obs::now_ns(), 2_000);
        let snap = pdmap_obs::snapshot();
        let samples = export_obs(&snap);
        assert_eq!(samples.len(), pdmap_obs::KNOWN_SITES.len() * 2);
        let lookup = |name: &str| {
            samples
                .iter()
                .find(|(m, _)| m.name == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(lookup("Obs datamgr import Time") >= 3_000);
        assert!(lookup("Obs datamgr import Count") >= 2);
    }

    #[test]
    fn shard_catalogue_generates_parses_and_exports() {
        use pdmap::model::Namespace;

        let f = shard_obs_catalogue(4);
        assert_eq!(f.metrics.len(), 4 * SHARD_OBS_FIELDS.len());
        let reparsed = parse_mdl(&f.emit()).unwrap();
        assert_eq!(f, reparsed);
        for m in &f.metrics {
            assert_eq!(m.level, OBS_LEVEL);
        }

        let dm = crate::datamgr::DataManager::sharded(Namespace::new(), "CM Fortran", 2);
        dm.array_allocated_on(
            1,
            &cmrts_sim::machine::ArrayAllocInfo {
                array: cmrts_sim::ArrayId(0),
                name: "A".into(),
                extents: vec![8],
                dist: cmrts_sim::Distribution::Block,
                subgrids: vec![(0, 4, 4)],
            },
        );
        dm.note_samples_on(0, 3);
        let rows = export_shard_obs(&dm);
        assert_eq!(rows.len(), 2 * SHARD_OBS_FIELDS.len());
        let lookup = |name: &str| {
            rows.iter()
                .find(|(m, _)| m.name == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert_eq!(lookup(&shard_obs_metric(0, "samples")), 3);
        assert_eq!(lookup(&shard_obs_metric(1, "imports")), 1);
        assert_eq!(lookup(&shard_obs_metric(0, "imports")), 0);
    }

    #[test]
    fn ask_obs_answers_through_the_sas() {
        let site = pdmap_obs::span_site("transport/tcp", "send");
        pdmap_obs::record_span(&site, pdmap_obs::now_ns(), 5_000);
        let snap = pdmap_obs::snapshot();
        let ns = Namespace::new();
        let cost = ask_obs(&ns, &snap, "transport/tcp", "send")
            .expect("question about a recorded site must be satisfied");
        assert!(cost >= 5_000, "got {cost}");
        // A site that never ran is not satisfied. No code path records
        // spans for this fictitious pairing.
        let ns2 = Namespace::new();
        assert_eq!(ask_obs(&ns2, &snap, "transport/inproc", "reconnect"), None);
    }

    #[test]
    fn parse_obs_metric_inverts_the_formatters() {
        for &(c, v) in pdmap_obs::KNOWN_SITES {
            assert_eq!(parse_obs_metric(&obs_time_metric(c, v)), Some((c, v, true)));
            assert_eq!(
                parse_obs_metric(&obs_count_metric(c, v)),
                Some((c, v, false))
            );
        }
        // Counter and perturbation rows deliberately do not parse as sites.
        assert_eq!(parse_obs_metric(&obs_counter_metric("daemon.errors")), None);
        assert_eq!(parse_obs_metric(OBS_PERTURB_OVERHEAD), None);
        assert_eq!(parse_obs_metric("Computation Time"), None);
        assert_eq!(parse_obs_metric("Obs too many words here Time"), None);
    }

    #[test]
    fn obs_focus_is_prefixed_and_stable() {
        let f = obs_focus("daemon", "127.0.0.1:7001");
        assert_eq!(f, "Tool/daemon:127.0.0.1:7001");
        assert!(f.starts_with(OBS_FOCUS_PREFIX));
    }

    #[test]
    fn ask_obs_totals_answers_about_remote_sites() {
        // Totals as they would arrive from a remote daemon's telemetry —
        // no local registry involvement at all.
        let totals: Vec<SiteTotal> = vec![
            ("transport/tcp".into(), "send".into(), 4, 9_000),
            ("daemon".into(), "deliver".into(), 2, 3_500),
            ("sas".into(), "push".into(), 0, 0), // never ran on that node
        ];
        let ns = Namespace::new();
        assert_eq!(
            ask_obs_totals(&ns, &totals, "transport/tcp", "send"),
            Some(9_000)
        );
        assert_eq!(
            ask_obs_totals(&ns, &totals, "daemon", "deliver"),
            Some(3_500)
        );
        let ns2 = Namespace::new();
        assert_eq!(ask_obs_totals(&ns2, &totals, "sas", "push"), None);
        let ns3 = Namespace::new();
        assert_eq!(ask_obs_totals(&ns3, &totals, "datamgr", "import"), None);
    }

    #[test]
    fn sentences_render_as_noun_verb_text() {
        let site = pdmap_obs::span_site("sas", "evaluate");
        pdmap_obs::record_span(&site, pdmap_obs::now_ns(), 100);
        let snap = pdmap_obs::snapshot();
        let ns = Namespace::new();
        let sentences = obs_sentences(&ns, &snap);
        let rendered: Vec<String> = sentences
            .iter()
            .map(|&(sid, _)| ns.render_sentence(sid))
            .collect();
        assert!(
            rendered.iter().any(|r| r.contains("evaluate")),
            "got {rendered:?}"
        );
    }
}
