//! The Figure 9 metric catalogue, written in MDL.
//!
//! "We have used MDL to define many new metrics that are specific to CM
//! Fortran and CMRTS" (§6.3). Every row of Figure 9 appears below with the
//! paper's name and description; each can be constrained to parallel
//! arrays, subsections of arrays, parallel assignment statements, nodes, or
//! combinations — the constraint arrives as guard predicates at
//! instantiation time, not here.

use dyninst_sim::mdl::{parse_mdl, MdlFile};

/// The MDL source for the full Figure 9 catalogue (plus file-I/O metrics,
/// which Figure 9's surrounding text mentions as CM Fortran verbs).
pub const FIGURE9_MDL: &str = r#"
// ------------------------- CM Fortran (CMF) level -------------------------

metric computations {
    name "Computations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of computation operations.";
    foreach point "cmrts::compute:entry" { incrCounterArg; }
}

metric computation_time {
    name "Computation Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent computing results.";
    foreach point "cmrts::compute:entry" { startProcessTimer; }
    foreach point "cmrts::compute:exit" { stopProcessTimer; }
}

metric reductions {
    name "Reductions";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array reductions.";
    foreach point "cmrts::reduce:entry" { incrCounter 1; }
}

metric reduction_time {
    name "Reduction Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent reducing arrays.";
    foreach point "cmrts::reduce:entry" { startProcessTimer; }
    foreach point "cmrts::reduce:exit" { stopProcessTimer; }
}

metric summations {
    name "Summations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array summations.";
    foreach point "cmrts::reduce:sum:entry" { incrCounter 1; }
}

metric summation_time {
    name "Summation Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent summing arrays.";
    foreach point "cmrts::reduce:sum:entry" { startProcessTimer; }
    foreach point "cmrts::reduce:sum:exit" { stopProcessTimer; }
}

metric maxval_count {
    name "MAXVAL Count";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of MAXVAL reductions.";
    foreach point "cmrts::reduce:max:entry" { incrCounter 1; }
}

metric maxval_time {
    name "MAXVAL Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent computing MAXVALs.";
    foreach point "cmrts::reduce:max:entry" { startProcessTimer; }
    foreach point "cmrts::reduce:max:exit" { stopProcessTimer; }
}

metric minval_count {
    name "MINVAL Count";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of MINVAL reductions.";
    foreach point "cmrts::reduce:min:entry" { incrCounter 1; }
}

metric minval_time {
    name "MINVAL Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent computing MINVALs.";
    foreach point "cmrts::reduce:min:entry" { startProcessTimer; }
    foreach point "cmrts::reduce:min:exit" { stopProcessTimer; }
}

metric array_transformations {
    name "Array Transformations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array transformations.";
    foreach point "cmrts::xform:entry" { incrCounter 1; }
}

metric transformation_time {
    name "Transformation Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent transforming arrays.";
    foreach point "cmrts::xform:entry" { startProcessTimer; }
    foreach point "cmrts::xform:exit" { stopProcessTimer; }
}

metric rotations {
    name "Rotations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array rotations.";
    foreach point "cmrts::rotate:entry" { incrCounter 1; }
}

metric rotation_time {
    name "Rotation Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent of rotations.";
    foreach point "cmrts::rotate:entry" { startProcessTimer; }
    foreach point "cmrts::rotate:exit" { stopProcessTimer; }
}

metric shifts {
    name "Shifts";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array shifts.";
    foreach point "cmrts::shift:entry" { incrCounter 1; }
}

metric shift_time {
    name "Shift Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent shifting arrays.";
    foreach point "cmrts::shift:entry" { startProcessTimer; }
    foreach point "cmrts::shift:exit" { stopProcessTimer; }
}

metric transposes {
    name "Transposes";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array transposes.";
    foreach point "cmrts::transpose:entry" { incrCounter 1; }
}

metric transpose_time {
    name "Transpose Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent transposing arrays.";
    foreach point "cmrts::transpose:entry" { startProcessTimer; }
    foreach point "cmrts::transpose:exit" { stopProcessTimer; }
}

metric scans {
    name "Scans";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array scans.";
    foreach point "cmrts::scan:entry" { incrCounter 1; }
}

metric scan_time {
    name "Scan Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent scanning arrays.";
    foreach point "cmrts::scan:entry" { startProcessTimer; }
    foreach point "cmrts::scan:exit" { stopProcessTimer; }
}

metric sorts {
    name "Sorts";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array sorts.";
    foreach point "cmrts::sort:entry" { incrCounter 1; }
}

metric sort_time {
    name "Sort Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent sorting arrays.";
    foreach point "cmrts::sort:entry" { startProcessTimer; }
    foreach point "cmrts::sort:exit" { stopProcessTimer; }
}

metric file_io_ops {
    name "File I/O Operations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of file read/write operations.";
    foreach point "cmrts::io:entry" { incrCounter 1; }
}

metric file_io_time {
    name "File I/O Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent in file I/O.";
    foreach point "cmrts::io:entry" { startWallTimer; }
    foreach point "cmrts::io:exit" { stopWallTimer; }
}

// ------------------------ CM run-time (CMRTS) level ------------------------

metric argument_processing_time {
    name "Argument Processing Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent receiving arguments from CM-5 control processor.";
    foreach point "cmrts::args:entry" { startProcessTimer; }
    foreach point "cmrts::args:exit" { stopProcessTimer; }
}

metric broadcasts {
    name "Broadcasts";
    units operations;
    aggregate sum;
    level "CMRTS";
    description "Count of broadcast operations.";
    foreach point "cmrts::bcast:send" { incrCounter 1; }
}

metric broadcast_time {
    name "Broadcast Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent broadcasting.";
    foreach point "cmrts::bcast:send" { startWallTimer; }
    foreach point "cmrts::bcast:recv" { stopWallTimer; }
}

metric cleanups {
    name "Cleanups";
    units operations;
    aggregate sum;
    level "CMRTS";
    description "Count of resets of node vector units.";
    foreach point "cmrts::cleanup:entry" { incrCounter 1; }
}

metric cleanup_time {
    name "Cleanup Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent resetting node vector units.";
    foreach point "cmrts::cleanup:entry" { startProcessTimer; }
    foreach point "cmrts::cleanup:exit" { stopProcessTimer; }
}

metric idle_time {
    name "Idle Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent waiting for control processor.";
    foreach point "cmrts::idle:entry" { startProcessTimer; }
    foreach point "cmrts::idle:exit" { stopProcessTimer; }
}

metric node_activations {
    name "Node Activations";
    units operations;
    aggregate sum;
    level "CMRTS";
    description "Count of node activations by control processor.";
    foreach point "cmrts::node:activate" { incrCounter 1; }
}

metric p2p_operations {
    name "Point-to-Point Operations";
    units operations;
    aggregate sum;
    level "CMRTS";
    description "Count of inter-node communication operations.";
    foreach point "cmrts::msg:send" { incrCounter 1; }
}

metric p2p_time {
    name "Point-to-Point Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent sending data between parallel nodes.";
    foreach point "cmrts::msg:send" { startWallTimer; }
    foreach point "cmrts::msg:recv" { stopWallTimer; }
}

metric p2p_bytes {
    name "Point-to-Point Bytes";
    units bytes;
    aggregate sum;
    level "CMRTS";
    description "Bytes sent between parallel nodes.";
    foreach point "cmrts::msg:send" { incrCounterArg; }
}
"#;

/// Parses the catalogue. Panics only if the embedded source is broken
/// (covered by tests).
pub fn figure9_catalogue() -> MdlFile {
    parse_mdl(FIGURE9_MDL).expect("embedded Figure 9 MDL must parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_parses() {
        let f = figure9_catalogue();
        assert!(f.metrics.len() >= 30, "got {}", f.metrics.len());
    }

    #[test]
    fn catalogue_covers_every_figure9_row() {
        let f = figure9_catalogue();
        let names: Vec<&str> = f.metrics.iter().map(|m| m.name.as_str()).collect();
        for expected in [
            "Computations",
            "Computation Time",
            "Reductions",
            "Reduction Time",
            "Summations",
            "Summation Time",
            "MAXVAL Count",
            "MAXVAL Time",
            "MINVAL Count",
            "MINVAL Time",
            "Array Transformations",
            "Transformation Time",
            "Rotations",
            "Rotation Time",
            "Shifts",
            "Shift Time",
            "Transposes",
            "Transpose Time",
            "Scans",
            "Scan Time",
            "Sorts",
            "Sort Time",
            "Argument Processing Time",
            "Broadcasts",
            "Broadcast Time",
            "Cleanups",
            "Cleanup Time",
            "Idle Time",
            "Node Activations",
            "Point-to-Point Operations",
            "Point-to-Point Time",
        ] {
            assert!(names.contains(&expected), "missing metric: {expected}");
        }
    }

    #[test]
    fn levels_split_cmf_and_cmrts() {
        let f = figure9_catalogue();
        let cmf = f.metrics.iter().filter(|m| m.level == "CM Fortran").count();
        let cmrts = f.metrics.iter().filter(|m| m.level == "CMRTS").count();
        assert!(cmf >= 22);
        assert!(cmrts >= 9);
    }

    #[test]
    fn catalogue_survives_emit_parse_roundtrip() {
        let f = figure9_catalogue();
        let reparsed = parse_mdl(&f.emit()).unwrap();
        assert_eq!(f, reparsed);
    }

    #[test]
    fn point_names_match_the_cmrts_registry() {
        // Every point the catalogue references must be a real CMRTS point.
        let reg = dyninst_sim::PointRegistry::new();
        let pts = cmrts_sim::CmrtsPoints::intern(&reg);
        let known: std::collections::BTreeSet<&str> =
            pts.all().iter().map(|&(n, _)| n).collect();
        let f = figure9_catalogue();
        for m in &f.metrics {
            for pa in &m.points {
                assert!(
                    known.contains(pa.point.as_str()),
                    "metric {} references unknown point {}",
                    m.id,
                    pa.point
                );
            }
        }
    }
}
