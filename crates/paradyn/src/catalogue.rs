//! The Figure 9 metric catalogue, written in MDL.
//!
//! "We have used MDL to define many new metrics that are specific to CM
//! Fortran and CMRTS" (§6.3). Every row of Figure 9 appears below with the
//! paper's name and description; each can be constrained to parallel
//! arrays, subsections of arrays, parallel assignment statements, nodes, or
//! combinations — the constraint arrives as guard predicates at
//! instantiation time, not here.

use dyninst_sim::mdl::{parse_mdl, MdlFile, MetricDecl};

/// The MDL source for the full Figure 9 catalogue (plus file-I/O metrics,
/// which Figure 9's surrounding text mentions as CM Fortran verbs).
pub const FIGURE9_MDL: &str = r#"
// ------------------------- CM Fortran (CMF) level -------------------------

metric computations {
    name "Computations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of computation operations.";
    foreach point "cmrts::compute:entry" { incrCounterArg; }
}

metric computation_time {
    name "Computation Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent computing results.";
    foreach point "cmrts::compute:entry" { startProcessTimer; }
    foreach point "cmrts::compute:exit" { stopProcessTimer; }
}

metric reductions {
    name "Reductions";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array reductions.";
    foreach point "cmrts::reduce:entry" { incrCounter 1; }
}

metric reduction_time {
    name "Reduction Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent reducing arrays.";
    foreach point "cmrts::reduce:entry" { startProcessTimer; }
    foreach point "cmrts::reduce:exit" { stopProcessTimer; }
}

metric summations {
    name "Summations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array summations.";
    foreach point "cmrts::reduce:sum:entry" { incrCounter 1; }
}

metric summation_time {
    name "Summation Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent summing arrays.";
    foreach point "cmrts::reduce:sum:entry" { startProcessTimer; }
    foreach point "cmrts::reduce:sum:exit" { stopProcessTimer; }
}

metric maxval_count {
    name "MAXVAL Count";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of MAXVAL reductions.";
    foreach point "cmrts::reduce:max:entry" { incrCounter 1; }
}

metric maxval_time {
    name "MAXVAL Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent computing MAXVALs.";
    foreach point "cmrts::reduce:max:entry" { startProcessTimer; }
    foreach point "cmrts::reduce:max:exit" { stopProcessTimer; }
}

metric minval_count {
    name "MINVAL Count";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of MINVAL reductions.";
    foreach point "cmrts::reduce:min:entry" { incrCounter 1; }
}

metric minval_time {
    name "MINVAL Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent computing MINVALs.";
    foreach point "cmrts::reduce:min:entry" { startProcessTimer; }
    foreach point "cmrts::reduce:min:exit" { stopProcessTimer; }
}

metric array_transformations {
    name "Array Transformations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array transformations.";
    foreach point "cmrts::xform:entry" { incrCounter 1; }
}

metric transformation_time {
    name "Transformation Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent transforming arrays.";
    foreach point "cmrts::xform:entry" { startProcessTimer; }
    foreach point "cmrts::xform:exit" { stopProcessTimer; }
}

metric rotations {
    name "Rotations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array rotations.";
    foreach point "cmrts::rotate:entry" { incrCounter 1; }
}

metric rotation_time {
    name "Rotation Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent of rotations.";
    foreach point "cmrts::rotate:entry" { startProcessTimer; }
    foreach point "cmrts::rotate:exit" { stopProcessTimer; }
}

metric shifts {
    name "Shifts";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array shifts.";
    foreach point "cmrts::shift:entry" { incrCounter 1; }
}

metric shift_time {
    name "Shift Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent shifting arrays.";
    foreach point "cmrts::shift:entry" { startProcessTimer; }
    foreach point "cmrts::shift:exit" { stopProcessTimer; }
}

metric transposes {
    name "Transposes";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array transposes.";
    foreach point "cmrts::transpose:entry" { incrCounter 1; }
}

metric transpose_time {
    name "Transpose Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent transposing arrays.";
    foreach point "cmrts::transpose:entry" { startProcessTimer; }
    foreach point "cmrts::transpose:exit" { stopProcessTimer; }
}

metric scans {
    name "Scans";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array scans.";
    foreach point "cmrts::scan:entry" { incrCounter 1; }
}

metric scan_time {
    name "Scan Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent scanning arrays.";
    foreach point "cmrts::scan:entry" { startProcessTimer; }
    foreach point "cmrts::scan:exit" { stopProcessTimer; }
}

metric sorts {
    name "Sorts";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of array sorts.";
    foreach point "cmrts::sort:entry" { incrCounter 1; }
}

metric sort_time {
    name "Sort Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent sorting arrays.";
    foreach point "cmrts::sort:entry" { startProcessTimer; }
    foreach point "cmrts::sort:exit" { stopProcessTimer; }
}

metric file_io_ops {
    name "File I/O Operations";
    units operations;
    aggregate sum;
    level "CM Fortran";
    description "Count of file read/write operations.";
    foreach point "cmrts::io:entry" { incrCounter 1; }
}

metric file_io_time {
    name "File I/O Time";
    units seconds;
    aggregate sum;
    level "CM Fortran";
    description "Time spent in file I/O.";
    foreach point "cmrts::io:entry" { startWallTimer; }
    foreach point "cmrts::io:exit" { stopWallTimer; }
}

// ------------------------ CM run-time (CMRTS) level ------------------------

metric argument_processing_time {
    name "Argument Processing Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent receiving arguments from CM-5 control processor.";
    foreach point "cmrts::args:entry" { startProcessTimer; }
    foreach point "cmrts::args:exit" { stopProcessTimer; }
}

metric broadcasts {
    name "Broadcasts";
    units operations;
    aggregate sum;
    level "CMRTS";
    description "Count of broadcast operations.";
    foreach point "cmrts::bcast:send" { incrCounter 1; }
}

metric broadcast_time {
    name "Broadcast Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent broadcasting.";
    foreach point "cmrts::bcast:send" { startWallTimer; }
    foreach point "cmrts::bcast:recv" { stopWallTimer; }
}

metric cleanups {
    name "Cleanups";
    units operations;
    aggregate sum;
    level "CMRTS";
    description "Count of resets of node vector units.";
    foreach point "cmrts::cleanup:entry" { incrCounter 1; }
}

metric cleanup_time {
    name "Cleanup Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent resetting node vector units.";
    foreach point "cmrts::cleanup:entry" { startProcessTimer; }
    foreach point "cmrts::cleanup:exit" { stopProcessTimer; }
}

metric idle_time {
    name "Idle Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent waiting for control processor.";
    foreach point "cmrts::idle:entry" { startProcessTimer; }
    foreach point "cmrts::idle:exit" { stopProcessTimer; }
}

metric node_activations {
    name "Node Activations";
    units operations;
    aggregate sum;
    level "CMRTS";
    description "Count of node activations by control processor.";
    foreach point "cmrts::node:activate" { incrCounter 1; }
}

metric p2p_operations {
    name "Point-to-Point Operations";
    units operations;
    aggregate sum;
    level "CMRTS";
    description "Count of inter-node communication operations.";
    foreach point "cmrts::msg:send" { incrCounter 1; }
}

metric p2p_time {
    name "Point-to-Point Time";
    units seconds;
    aggregate sum;
    level "CMRTS";
    description "Time spent sending data between parallel nodes.";
    foreach point "cmrts::msg:send" { startWallTimer; }
    foreach point "cmrts::msg:recv" { stopWallTimer; }
}

metric p2p_bytes {
    name "Point-to-Point Bytes";
    units bytes;
    aggregate sum;
    level "CMRTS";
    description "Bytes sent between parallel nodes.";
    foreach point "cmrts::msg:send" { incrCounterArg; }
}
"#;

/// Parses the catalogue. Panics only if the embedded source is broken
/// (covered by tests).
pub fn figure9_catalogue() -> MdlFile {
    parse_mdl(FIGURE9_MDL).expect("embedded Figure 9 MDL must parse")
}

/// The MDL source for the transport self-metric catalogue.
///
/// A measurement tool must be able to measure itself: the daemon links that
/// carry samples and forwarded sentences are themselves a potential
/// bottleneck, so every transport backend counts its own traffic and the
/// tool exports those counters as a "Transport" level beside Figure 9's
/// "CM Fortran" and "CMRTS" levels. The metric names here match
/// [`pdmap_transport::TransportStats::rows`] exactly; the point names are
/// the transport crate's internal events, not CMRTS points.
pub const TRANSPORT_MDL: &str = r#"
// ---------------------------- Transport level ----------------------------

metric transport_frames_sent {
    name "Transport Frames Sent";
    units operations;
    aggregate sum;
    level "Transport";
    description "Data frames accepted for delivery.";
    foreach point "transport::send" { incrCounter 1; }
}

metric transport_bytes_sent {
    name "Transport Bytes Sent";
    units bytes;
    aggregate sum;
    level "Transport";
    description "Encoded bytes of frames accepted for delivery.";
    foreach point "transport::send" { incrCounterArg; }
}

metric transport_frames_received {
    name "Transport Frames Received";
    units operations;
    aggregate sum;
    level "Transport";
    description "Data frames delivered to the receiving application.";
    foreach point "transport::recv" { incrCounter 1; }
}

metric transport_bytes_received {
    name "Transport Bytes Received";
    units bytes;
    aggregate sum;
    level "Transport";
    description "Encoded bytes of delivered frames.";
    foreach point "transport::recv" { incrCounterArg; }
}

metric transport_drops {
    name "Transport Drops";
    units operations;
    aggregate sum;
    level "Transport";
    description "Frames discarded by backpressure or link give-up.";
    foreach point "transport::drop" { incrCounterArg; }
}

metric transport_duplicates {
    name "Transport Duplicates";
    units operations;
    aggregate sum;
    level "Transport";
    description "Redelivered frames suppressed by sequence tracking.";
    foreach point "transport::duplicate" { incrCounter 1; }
}

metric transport_retries {
    name "Transport Retries";
    units operations;
    aggregate sum;
    level "Transport";
    description "Failed connection attempts.";
    foreach point "transport::retry" { incrCounter 1; }
}

metric transport_reconnects {
    name "Transport Reconnects";
    units operations;
    aggregate sum;
    level "Transport";
    description "Connections re-established after a loss.";
    foreach point "transport::reconnect" { incrCounter 1; }
}

metric transport_heartbeats_sent {
    name "Transport Heartbeats Sent";
    units operations;
    aggregate sum;
    level "Transport";
    description "Liveness probes sent on idle links.";
    foreach point "transport::heartbeat:send" { incrCounter 1; }
}

metric transport_heartbeats_received {
    name "Transport Heartbeats Received";
    units operations;
    aggregate sum;
    level "Transport";
    description "Liveness probes received, including echoes.";
    foreach point "transport::heartbeat:recv" { incrCounter 1; }
}

metric transport_acks_sent {
    name "Transport Acks Sent";
    units operations;
    aggregate sum;
    level "Transport";
    description "Delivery acknowledgements sent.";
    foreach point "transport::ack:send" { incrCounter 1; }
}

metric transport_acks_received {
    name "Transport Acks Received";
    units operations;
    aggregate sum;
    level "Transport";
    description "Delivery acknowledgements received.";
    foreach point "transport::ack:recv" { incrCounter 1; }
}

metric transport_max_queue_depth {
    name "Transport Max Queue Depth";
    units operations;
    aggregate sum;
    level "Transport";
    description "High-water mark of the bounded send queue.";
    foreach point "transport::queue:observe" { incrCounterArg; }
}

metric transport_auth_failures {
    name "Transport Auth Failures";
    units operations;
    aggregate sum;
    level "Transport";
    description "Peers rejected by the authenticated Hello handshake.";
    foreach point "transport::auth:reject" { incrCounter 1; }
}

metric transport_batched_samples_sent {
    name "Transport Batched Samples Sent";
    units operations;
    aggregate sum;
    level "Transport";
    description "Samples carried out in SampleBatch frames (per sample, not per frame).";
    foreach point "transport::batch:send" { incrCounterArg; }
}

metric transport_batched_samples_received {
    name "Transport Batched Samples Received";
    units operations;
    aggregate sum;
    level "Transport";
    description "Samples carried in by SampleBatch frames.";
    foreach point "transport::batch:recv" { incrCounterArg; }
}
"#;

/// Parses the transport catalogue. Panics only if the embedded source is
/// broken (covered by tests).
pub fn transport_catalogue() -> MdlFile {
    parse_mdl(TRANSPORT_MDL).expect("embedded transport MDL must parse")
}

/// Exports a transport snapshot as `(metric, value)` samples in catalogue
/// order, pairing each "Transport"-level metric with its counter. Rows whose
/// name has no catalogue entry are skipped (none exist today; a test pins
/// the two lists to each other).
pub fn export_transport_stats(stats: &pdmap_transport::TransportStats) -> Vec<(MetricDecl, u64)> {
    let catalogue = transport_catalogue();
    let rows = stats.rows();
    catalogue
        .metrics
        .into_iter()
        .filter_map(|m| {
            rows.iter()
                .find(|&&(name, _)| name == m.name)
                .map(|&(_, v)| (m, v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_parses() {
        let f = figure9_catalogue();
        assert!(f.metrics.len() >= 30, "got {}", f.metrics.len());
    }

    #[test]
    fn catalogue_covers_every_figure9_row() {
        let f = figure9_catalogue();
        let names: Vec<&str> = f.metrics.iter().map(|m| m.name.as_str()).collect();
        for expected in [
            "Computations",
            "Computation Time",
            "Reductions",
            "Reduction Time",
            "Summations",
            "Summation Time",
            "MAXVAL Count",
            "MAXVAL Time",
            "MINVAL Count",
            "MINVAL Time",
            "Array Transformations",
            "Transformation Time",
            "Rotations",
            "Rotation Time",
            "Shifts",
            "Shift Time",
            "Transposes",
            "Transpose Time",
            "Scans",
            "Scan Time",
            "Sorts",
            "Sort Time",
            "Argument Processing Time",
            "Broadcasts",
            "Broadcast Time",
            "Cleanups",
            "Cleanup Time",
            "Idle Time",
            "Node Activations",
            "Point-to-Point Operations",
            "Point-to-Point Time",
        ] {
            assert!(names.contains(&expected), "missing metric: {expected}");
        }
    }

    #[test]
    fn levels_split_cmf_and_cmrts() {
        let f = figure9_catalogue();
        let cmf = f.metrics.iter().filter(|m| m.level == "CM Fortran").count();
        let cmrts = f.metrics.iter().filter(|m| m.level == "CMRTS").count();
        assert!(cmf >= 22);
        assert!(cmrts >= 9);
    }

    #[test]
    fn catalogue_survives_emit_parse_roundtrip() {
        let f = figure9_catalogue();
        let reparsed = parse_mdl(&f.emit()).unwrap();
        assert_eq!(f, reparsed);
    }

    #[test]
    fn transport_catalogue_matches_stats_rows_exactly() {
        // Every TransportStats row must have a catalogue metric of the same
        // name, in the same order, and vice versa — the exporter relies on
        // the pairing.
        let f = transport_catalogue();
        let stats = pdmap_transport::TransportStats::default();
        let row_names: Vec<&str> = stats.rows().iter().map(|&(n, _)| n).collect();
        let metric_names: Vec<&str> = f.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(metric_names, row_names);
        for m in &f.metrics {
            assert_eq!(m.level, "Transport", "metric {} has wrong level", m.id);
        }
    }

    #[test]
    fn transport_exporter_pairs_every_counter() {
        let stats = pdmap_transport::TransportStats {
            frames_sent: 7,
            bytes_sent: 700,
            drops: 3,
            max_queue_depth: 12,
            ..Default::default()
        };
        let samples = export_transport_stats(&stats);
        assert_eq!(samples.len(), stats.rows().len());
        let lookup = |name: &str| {
            samples
                .iter()
                .find(|(m, _)| m.name == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert_eq!(lookup("Transport Frames Sent"), 7);
        assert_eq!(lookup("Transport Bytes Sent"), 700);
        assert_eq!(lookup("Transport Drops"), 3);
        assert_eq!(lookup("Transport Max Queue Depth"), 12);
        assert_eq!(lookup("Transport Reconnects"), 0);
    }

    #[test]
    fn transport_catalogue_survives_emit_parse_roundtrip() {
        let f = transport_catalogue();
        let reparsed = parse_mdl(&f.emit()).unwrap();
        assert_eq!(f, reparsed);
    }

    #[test]
    fn point_names_match_the_cmrts_registry() {
        // Every point the catalogue references must be a real CMRTS point.
        let reg = dyninst_sim::PointRegistry::new();
        let pts = cmrts_sim::CmrtsPoints::intern(&reg);
        let known: std::collections::BTreeSet<&str> = pts.all().iter().map(|&(n, _)| n).collect();
        let f = figure9_catalogue();
        for m in &f.metrics {
            for pa in &m.points {
                assert!(
                    known.contains(pa.point.as_str()),
                    "metric {} references unknown point {}",
                    m.id,
                    pa.point
                );
            }
        }
    }
}
