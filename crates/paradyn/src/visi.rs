//! ASCII visualisation modules.
//!
//! §5: "Paradyn includes performance display modules that allow users to
//! view performance metric streams graphically" — time plots (time
//! histograms), bar charts, and tables (§6.1). The originals were X11
//! widgets; these render to text so every figure regeneration works in a
//! terminal and in golden tests.

use crate::stream::Stream;
use std::fmt::Write as _;

/// Renders a time plot of one or more streams: per-interval rates bucketed
/// over the run, one row per bucket, one column of bars per stream.
pub fn time_plot(streams: &[Stream], buckets: usize, width: usize) -> String {
    let mut out = String::new();
    if streams.is_empty() || streams.iter().all(|s| s.samples.len() < 2) {
        return "(no samples)\n".to_string();
    }
    let t_max = streams
        .iter()
        .filter_map(|s| s.samples.last().map(|&(t, _)| t))
        .max()
        .unwrap_or(1)
        .max(1);
    let buckets = buckets.max(1);
    writeln!(
        out,
        "time plot ({} buckets, {} ticks total)",
        buckets, t_max
    )
    .unwrap();
    for s in streams {
        writeln!(out, "  [{}] {} / {}", s.units, s.metric, s.focus).unwrap();
    }
    // Bucketise each stream's deltas.
    let mut grid = vec![vec![0.0f64; streams.len()]; buckets];
    for (si, s) in streams.iter().enumerate() {
        for (t, d) in s.deltas() {
            let b = ((t.saturating_sub(1)) as u128 * buckets as u128 / t_max as u128) as usize;
            grid[b.min(buckets - 1)][si] += d;
        }
    }
    let max_cell = grid
        .iter()
        .flat_map(|row| row.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    for (b, row) in grid.iter().enumerate() {
        let t0 = t_max as u128 * b as u128 / buckets as u128;
        write!(out, "{:>12} |", t0).unwrap();
        for &v in row {
            let n = ((v / max_cell) * width as f64).round() as usize;
            write!(out, "{:<w$}|", "#".repeat(n), w = width).unwrap();
        }
        out.push('\n');
    }
    out
}

/// Renders a horizontal bar chart of final values, one row per stream.
pub fn bar_chart(streams: &[Stream], width: usize) -> String {
    let mut out = String::new();
    let max = streams
        .iter()
        .map(Stream::last_value)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = streams
        .iter()
        .map(|s| s.metric.len() + s.focus.len() + 3)
        .max()
        .unwrap_or(8);
    for s in streams {
        let label = format!("{} / {}", s.metric, s.focus);
        let v = s.last_value();
        let n = ((v / max) * width as f64).round() as usize;
        writeln!(
            out,
            "{:<label_w$} {:<width$} {:.4} {}",
            label,
            "#".repeat(n),
            v,
            s.units,
            label_w = label_w,
            width = width
        )
        .unwrap();
    }
    out
}

/// Renders a metric × value table.
pub fn table(rows: &[(String, String, String)]) -> String {
    let mut out = String::new();
    let w0 = rows.iter().map(|r| r.0.len()).max().unwrap_or(6).max(6);
    let w1 = rows.iter().map(|r| r.1.len()).max().unwrap_or(5).max(5);
    writeln!(out, "{:<w0$}  {:>w1$}  Description", "Metric", "Value").unwrap();
    writeln!(
        out,
        "{}  {}  {}",
        "-".repeat(w0),
        "-".repeat(w1),
        "-".repeat(24)
    )
    .unwrap();
    for (name, value, desc) in rows {
        writeln!(out, "{name:<w0$}  {value:>w1$}  {desc}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(metric: &str, samples: &[(u64, f64)]) -> Stream {
        Stream {
            metric: metric.into(),
            focus: "<whole program>".into(),
            units: "operations".into(),
            samples: samples.to_vec(),
        }
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s1 = stream("A", &[(0, 0.0), (10, 10.0)]);
        let s2 = stream("B", &[(0, 0.0), (10, 5.0)]);
        let chart = bar_chart(&[s1, s2], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        let hashes = |l: &str| l.matches('#').count();
        assert_eq!(hashes(lines[0]), 10);
        assert_eq!(hashes(lines[1]), 5);
    }

    #[test]
    fn time_plot_buckets_deltas() {
        let s = stream("A", &[(0, 0.0), (50, 5.0), (100, 5.0)]);
        let plot = time_plot(&[s], 2, 8);
        assert!(plot.contains("time plot"));
        let rows: Vec<&str> = plot.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 2);
        // All activity lands in the first bucket.
        assert!(rows[0].contains('#'));
        assert!(!rows[1].contains('#'));
    }

    #[test]
    fn empty_plot_is_graceful() {
        assert_eq!(time_plot(&[], 4, 8), "(no samples)\n");
        let s = stream("A", &[(0, 0.0)]);
        assert_eq!(time_plot(&[s], 4, 8), "(no samples)\n");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(&[
            (
                "Summations".into(),
                "4".into(),
                "Count of array summations.".into(),
            ),
            (
                "Idle Time".into(),
                "0.001".into(),
                "Time spent waiting.".into(),
            ),
        ]);
        assert!(t.contains("Metric"));
        assert!(t.lines().count() >= 4);
        assert!(t.contains("Summations"));
    }
}
