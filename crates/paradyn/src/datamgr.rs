//! The Data Manager: Paradyn's resource dictionary and mapping store.
//!
//! §5: "PIF files are emitted by compilers ... Paradyn daemons import
//! static mapping information via Paradyn Information Format (PIF) files
//! just after they load each application executable", and "the daemons
//! forward the [dynamic] mapping information to the Data Manager. The Data
//! Manager uses the dynamic mapping information in exactly the same way as
//! it uses static mapping information."
//!
//! [`DataManager`] therefore accepts both: [`DataManager::import_pif`] for
//! the static path, and the [`MappingSink`] implementation for the dynamic
//! path (array allocations arriving from the run-time system, which build
//! the CMFarrays hierarchy of Figure 8 including per-node subregions).
//! It also resolves where-axis foci into instrumentation guard predicates —
//! the §6.1 "check the array's node-global boolean variable" step.

use cmrts_sim::machine::{ArrayAllocInfo, MappingSink};
use cmrts_sim::ArrayId;
use dyninst_sim::Pred;
use pdmap::aggregate::{assign_per_source, AssignPolicy, AssignmentResult};
use pdmap::cost::{Cost, UnitMismatch};
use pdmap::hierarchy::{Focus, WhereAxis};
use pdmap::mapping::MappingTable;
use pdmap::model::{Namespace, SentenceId};
use pdmap::util::Mutex;
use pdmap_pif::{Applied, ApplyError, MetricRecord, PifFile};
use std::fmt;

/// Failure to turn a focus into guard predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FocusError {
    /// The focus names a hierarchy the data manager does not know.
    UnknownHierarchy(String),
    /// The selected path does not resolve in its hierarchy.
    UnknownPath(String),
    /// The selected resource cannot constrain instrumentation (e.g. an
    /// interior module node).
    Unconstrainable(String),
}

impl fmt::Display for FocusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FocusError::UnknownHierarchy(h) => write!(f, "unknown hierarchy '{h}'"),
            FocusError::UnknownPath(p) => write!(f, "unknown resource path '{p}'"),
            FocusError::Unconstrainable(p) => {
                write!(f, "resource '{p}' cannot constrain instrumentation")
            }
        }
    }
}

impl std::error::Error for FocusError {}

/// Span site for mapping-information import (static PIF and dynamic
/// allocations both count as `datamgr`/`import` in the self-mapping).
fn datamgr_import_site() -> &'static pdmap_obs::SpanSite {
    static SITE: std::sync::OnceLock<pdmap_obs::SpanSite> = std::sync::OnceLock::new();
    SITE.get_or_init(|| pdmap_obs::span_site("datamgr", "import"))
}

struct DmInner {
    mappings: MappingTable,
    axis: WhereAxis,
    pif_metrics: Vec<MetricRecord>,
    dynamic_arrays: Vec<ArrayAllocInfo>,
    freed: Vec<ArrayId>,
}

/// The resource dictionary + mapping store.
pub struct DataManager {
    ns: Namespace,
    source_level: String,
    inner: Mutex<DmInner>,
}

impl DataManager {
    /// Creates a data manager over a shared namespace. `source_level` is
    /// the language level name used when resolving foci (default
    /// `CM Fortran`).
    pub fn new(ns: Namespace, source_level: &str) -> Self {
        Self {
            ns,
            source_level: source_level.to_string(),
            inner: Mutex::new(DmInner {
                mappings: MappingTable::new(),
                axis: WhereAxis::new(),
                pif_metrics: Vec::new(),
                dynamic_arrays: Vec::new(),
                freed: Vec::new(),
            }),
        }
    }

    /// The shared namespace.
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Imports a PIF file (static mapping information, §3/§5).
    pub fn import_pif(&self, file: &PifFile) -> Result<Applied, ApplyError> {
        let _span = pdmap_obs::span(datamgr_import_site());
        let mut g = self.inner.lock();
        let DmInner { mappings, axis, .. } = &mut *g;
        let applied = pdmap_pif::apply(file, &self.ns, mappings, axis)?;
        g.pif_metrics.extend(applied.metrics.iter().cloned());
        Ok(applied)
    }

    /// Ensures the Machine hierarchy has `nodes` node resources.
    pub fn ensure_machine(&self, nodes: usize) {
        let mut g = self.inner.lock();
        let tree = g.axis.tree_mut("Machine");
        for i in 0..nodes {
            tree.add_path(&[&format!("node#{i}")]);
        }
    }

    /// Runs `f` against the where axis.
    pub fn with_axis<R>(&self, f: impl FnOnce(&WhereAxis) -> R) -> R {
        f(&self.inner.lock().axis)
    }

    /// Runs `f` against the mapping table.
    pub fn with_mappings<R>(&self, f: impl FnOnce(&MappingTable) -> R) -> R {
        f(&self.inner.lock().mappings)
    }

    /// Metric records imported from PIF files.
    pub fn pif_metrics(&self) -> Vec<MetricRecord> {
        self.inner.lock().pif_metrics.clone()
    }

    /// Dynamic array-allocation records received so far.
    pub fn dynamic_arrays(&self) -> Vec<ArrayAllocInfo> {
        self.inner.lock().dynamic_arrays.clone()
    }

    /// Renders the full where-axis display (Figure 8).
    pub fn render_where_axis(&self) -> String {
        self.inner.lock().axis.render()
    }

    /// Maps measured low-level costs upward through the mapping table.
    pub fn map_upward(
        &self,
        measured: &[(SentenceId, Cost)],
        policy: AssignPolicy,
    ) -> Result<AssignmentResult, UnitMismatch> {
        let g = self.inner.lock();
        assign_per_source(&g.mappings, measured, policy)
    }

    fn array_active_sentence(&self, array: &str) -> Option<SentenceId> {
        let level = self.ns.find_level(&self.source_level)?;
        let verb = self.ns.find_verb(level, "Active")?;
        let noun = self.ns.find_noun(level, array)?;
        Some(self.ns.say(verb, [noun]))
    }

    fn line_sentence(&self, line_name: &str) -> Option<SentenceId> {
        let level = self.ns.find_level(&self.source_level)?;
        let verb = self.ns.find_verb(level, "Executes")?;
        // Where-axis spells it `line#N`; the noun is `lineN`.
        let noun_name = line_name.replace('#', "");
        let noun = self.ns.find_noun(level, &noun_name)?;
        Some(self.ns.say(verb, [noun]))
    }

    /// Resolves a focus into instrumentation guard predicates:
    ///
    /// * `Machine/node#K` → restrict to node K;
    /// * `CMFarrays/.../A` → the §6.1 array boolean: `{A} Active` must be
    ///   in the node's SAS;
    /// * `CMFarrays/.../A/sub#K` → the array boolean **and** node K
    ///   (Figure 9: metrics constrained to "subsections of arrays");
    /// * `CMFstmts/.../line#N` → `{lineN} Executes` active.
    pub fn resolve_focus(&self, focus: &Focus) -> Result<Vec<Pred>, FocusError> {
        let g = self.inner.lock();
        self.resolve_focus_locked(&g, focus)
    }

    /// Where-axis refinements of a focus: for every hierarchy, the nearest
    /// *constrainable* descendants of the current selection (arrays before
    /// their subregions, statement leaves, machine nodes). Used by the
    /// Performance Consultant.
    pub fn refinement_candidates(&self, focus: &Focus) -> Vec<Focus> {
        let g = self.inner.lock();
        let mut out = Vec::new();
        for tree in g.axis.trees() {
            let hier = tree.name().to_string();
            let Some(start) = tree.resolve(focus.selection(&hier)) else {
                continue;
            };
            // BFS: stop descending at the first constrainable node.
            let mut queue: Vec<_> = tree.children(start).to_vec();
            while let Some(n) = queue.pop() {
                let path = tree.path_of(n);
                let candidate = focus.clone().select(&hier, &path);
                if self.resolve_focus_locked(&g, &candidate).is_ok() {
                    if &candidate != focus {
                        out.push(candidate);
                    }
                } else {
                    queue.extend(tree.children(n).iter().copied());
                }
            }
        }
        out
    }

    fn resolve_focus_locked(&self, g: &DmInner, focus: &Focus) -> Result<Vec<Pred>, FocusError> {
        let mut preds = Vec::new();
        for (hier, path) in focus.selections() {
            if path == "/" {
                continue;
            }
            let tree = g
                .axis
                .tree(hier)
                .ok_or_else(|| FocusError::UnknownHierarchy(hier.clone()))?;
            let node = tree
                .resolve(path)
                .ok_or_else(|| FocusError::UnknownPath(path.clone()))?;
            let name = tree.name_of(node).to_string();
            match hier.as_str() {
                "Machine" => {
                    let k: u32 = name
                        .strip_prefix("node#")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| FocusError::Unconstrainable(path.clone()))?;
                    preds.push(Pred::NodeIs(k));
                }
                "CMFarrays" => {
                    if let Some(sub) = name.strip_prefix("sub#") {
                        let k: u32 = sub
                            .parse()
                            .map_err(|_| FocusError::Unconstrainable(path.clone()))?;
                        let parent = tree
                            .parent(node)
                            .ok_or_else(|| FocusError::Unconstrainable(path.clone()))?;
                        let array = tree.name_of(parent).to_string();
                        let s = self
                            .array_active_sentence(&array)
                            .ok_or_else(|| FocusError::Unconstrainable(path.clone()))?;
                        preds.push(Pred::SentenceActive(s));
                        preds.push(Pred::NodeIs(k));
                    } else {
                        // Must be an array leaf (arrays may have subregion
                        // children, so "has array sentence" is the test).
                        let s = self
                            .array_active_sentence(&name)
                            .ok_or_else(|| FocusError::Unconstrainable(path.clone()))?;
                        preds.push(Pred::SentenceActive(s));
                    }
                }
                "CMFstmts" => {
                    let s = self
                        .line_sentence(&name)
                        .ok_or_else(|| FocusError::Unconstrainable(path.clone()))?;
                    preds.push(Pred::SentenceActive(s));
                }
                other => return Err(FocusError::UnknownHierarchy(other.to_string())),
            }
        }
        Ok(preds)
    }
}

impl MappingSink for DataManager {
    /// Dynamic mapping information (§6.1 step 1): a new array and its
    /// node subregions arrive from the run-time system.
    fn array_allocated(&self, info: &ArrayAllocInfo) {
        let _span = pdmap_obs::span(datamgr_import_site());
        if info.name.starts_with("CMF_TMP") {
            return; // compiler temporaries are not user resources
        }
        let mut g = self.inner.lock();
        g.dynamic_arrays.push(info.clone());
        let tree = g.axis.tree_mut("CMFarrays");
        // The static PIF usually placed the array already; otherwise park
        // it at the root.
        let array_node = tree
            .find_by_name(&info.name)
            .into_iter()
            .next()
            .unwrap_or_else(|| tree.add_path(&[&info.name]));
        for &(node, rows, elems) in &info.subgrids {
            let sub = tree.child(array_node, &format!("sub#{node}"));
            let _ = (sub, rows, elems);
        }
    }

    fn array_freed(&self, array: ArrayId) {
        self.inner.lock().freed.push(array);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmrts_sim::Distribution;

    fn dm_with_program() -> DataManager {
        let ns = Namespace::new();
        let compiled = cmf_lang::compile(
            cmf_lang::samples::FIGURE4,
            &ns,
            &cmf_lang::CompileOptions::default(),
        )
        .unwrap();
        let dm = DataManager::new(ns, "CM Fortran");
        dm.import_pif(&compiled.pif).unwrap();
        dm.ensure_machine(4);
        dm
    }

    #[test]
    fn pif_import_populates_axis_and_mappings() {
        let dm = dm_with_program();
        assert!(dm.with_mappings(|m| m.len()) > 0);
        let shown = dm.render_where_axis();
        assert!(shown.contains("CMFstmts"));
        assert!(shown.contains("CMFarrays"));
        assert!(shown.contains("node#3"));
    }

    #[test]
    fn dynamic_alloc_adds_subregions() {
        let dm = dm_with_program();
        dm.array_allocated(&ArrayAllocInfo {
            array: ArrayId(0),
            name: "A".into(),
            extents: vec![1024],
            dist: Distribution::Block,
            subgrids: (0..4).map(|n| (n, 256, 256)).collect(),
        });
        let shown = dm.render_where_axis();
        assert!(shown.contains("sub#0"));
        assert!(shown.contains("sub#3"));
        assert_eq!(dm.dynamic_arrays().len(), 1);
    }

    #[test]
    fn temporaries_are_filtered() {
        let dm = dm_with_program();
        dm.array_allocated(&ArrayAllocInfo {
            array: ArrayId(9),
            name: "CMF_TMP3".into(),
            extents: vec![8],
            dist: Distribution::Block,
            subgrids: vec![],
        });
        assert!(dm.dynamic_arrays().is_empty());
        assert!(!dm.render_where_axis().contains("CMF_TMP"));
    }

    #[test]
    fn machine_focus_resolves_to_node_pred() {
        let dm = dm_with_program();
        let f = Focus::whole_program().select("Machine", "/node#2");
        assert_eq!(dm.resolve_focus(&f).unwrap(), vec![Pred::NodeIs(2)]);
    }

    #[test]
    fn array_focus_resolves_to_sentence_pred() {
        let dm = dm_with_program();
        let f = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
        let preds = dm.resolve_focus(&f).unwrap();
        assert_eq!(preds.len(), 1);
        assert!(matches!(preds[0], Pred::SentenceActive(_)));
    }

    #[test]
    fn subregion_focus_adds_node_restriction() {
        let dm = dm_with_program();
        dm.array_allocated(&ArrayAllocInfo {
            array: ArrayId(0),
            name: "A".into(),
            extents: vec![1024],
            dist: Distribution::Block,
            subgrids: (0..4).map(|n| (n, 256, 256)).collect(),
        });
        let f = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A/sub#1");
        let preds = dm.resolve_focus(&f).unwrap();
        assert_eq!(preds.len(), 2);
        assert!(preds.contains(&Pred::NodeIs(1)));
    }

    #[test]
    fn statement_focus_resolves() {
        let dm = dm_with_program();
        let f = Focus::whole_program().select("CMFstmts", "/hpfex.fcm/HPFEX/line#5");
        let preds = dm.resolve_focus(&f).unwrap();
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn whole_program_focus_has_no_preds() {
        let dm = dm_with_program();
        assert!(dm
            .resolve_focus(&Focus::whole_program())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn focus_errors_are_specific() {
        let dm = dm_with_program();
        let f = Focus::whole_program().select("Bogus", "/x");
        assert!(matches!(
            dm.resolve_focus(&f),
            Err(FocusError::UnknownHierarchy(_))
        ));
        let f = Focus::whole_program().select("CMFarrays", "/nope/nope");
        assert!(matches!(
            dm.resolve_focus(&f),
            Err(FocusError::UnknownPath(_))
        ));
        // Interior module node: not constrainable.
        let f = Focus::whole_program().select("CMFarrays", "/hpfex.fcm");
        assert!(matches!(
            dm.resolve_focus(&f),
            Err(FocusError::Unconstrainable(_))
        ));
    }

    #[test]
    fn map_upward_uses_imported_mappings() {
        let dm = dm_with_program();
        // Find the PIF's block->line mapping source sentence and push cost
        // through it.
        let (src, n_dests) = dm.with_mappings(|m| {
            let d = m.defs()[0];
            (d.source, m.destinations(d.source).len())
        });
        let res = dm
            .map_upward(&[(src, Cost::seconds(2.0))], AssignPolicy::Merge)
            .unwrap();
        assert_eq!(res.assignments.len(), 1);
        assert_eq!(res.assignments[0].target.members().len(), n_dests);
    }
}
