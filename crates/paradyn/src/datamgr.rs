//! The Data Manager: Paradyn's resource dictionary and mapping store.
//!
//! §5: "PIF files are emitted by compilers ... Paradyn daemons import
//! static mapping information via Paradyn Information Format (PIF) files
//! just after they load each application executable", and "the daemons
//! forward the [dynamic] mapping information to the Data Manager. The Data
//! Manager uses the dynamic mapping information in exactly the same way as
//! it uses static mapping information."
//!
//! [`DataManager`] therefore accepts both: [`DataManager::import_pif`] for
//! the static path, and the [`MappingSink`] implementation for the dynamic
//! path (array allocations arriving from the run-time system, which build
//! the CMFarrays hierarchy of Figure 8 including per-node subregions).
//! It also resolves where-axis foci into instrumentation guard predicates —
//! the §6.1 "check the array's node-global boolean variable" step.
//!
//! # Sharding (multi-daemon sessions)
//!
//! The paper's distributed SAS (§4.2.3) runs one daemon per node and merges
//! their streams in the tool. To let N daemon connections import mapping
//! information and deliver samples concurrently, the manager is **sharded
//! by where-axis subtree**: each daemon connection owns one [`Shard`] —
//! a small mutex-protected store for the dynamic arrays that daemon
//! allocated (its subtree of `CMFarrays`, plus its `Machine` nodes) — while
//! the **read-mostly shared catalogue** (mapping table, PIF metrics, the
//! merged where axis) sits behind one `RwLock`. The write paths taken per
//! message (`array_allocated_on`, `note_samples_on`) touch only their
//! shard: allocations are appended locally and queued as *pending axis
//! updates*; readers ([`DataManager::render_where_axis`],
//! [`DataManager::resolve_focus`], …) merge every shard's pending queue
//! into the shared axis before reading — per-subtree state, merged at the
//! edges. Two daemons therefore never contend on the import path, which is
//! what the per-shard `lock_wait_ns` counter makes visible.
//!
//! Invariants:
//! * an array name maps to exactly one axis node no matter which shard
//!   announced it (merge is idempotent, like [`ResourceTree::child`]);
//! * `dynamic_arrays()` is the shard-order concatenation, so the 1-shard
//!   manager behaves exactly like the pre-sharding one;
//! * sample delivery never takes any DataManager lock — only per-shard
//!   relaxed counters move.
//!
//! [`ResourceTree::child`]: pdmap::hierarchy::ResourceTree::child

use cmrts_sim::machine::{ArrayAllocInfo, MappingSink};
use cmrts_sim::ArrayId;
use dyninst_sim::Pred;
use pdmap::aggregate::{assign_per_source, AssignPolicy, AssignmentResult};
use pdmap::columns::SampleColumns;
use pdmap::cost::{Cost, UnitMismatch};
use pdmap::hierarchy::{Focus, WhereAxis};
use pdmap::mapping::MappingTable;
use pdmap::model::{Namespace, SentenceId};
use pdmap::util::{FxHasher, Mutex, RwLock};
use pdmap_pif::{Applied, ApplyError, MetricRecord, PifFile};
use std::collections::HashSet;
use std::fmt;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};

/// Failure to turn a focus into guard predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FocusError {
    /// The focus names a hierarchy the data manager does not know.
    UnknownHierarchy(String),
    /// The selected path does not resolve in its hierarchy.
    UnknownPath(String),
    /// The selected resource cannot constrain instrumentation (e.g. an
    /// interior module node).
    Unconstrainable(String),
}

impl fmt::Display for FocusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FocusError::UnknownHierarchy(h) => write!(f, "unknown hierarchy '{h}'"),
            FocusError::UnknownPath(p) => write!(f, "unknown resource path '{p}'"),
            FocusError::Unconstrainable(p) => {
                write!(f, "resource '{p}' cannot constrain instrumentation")
            }
        }
    }
}

impl std::error::Error for FocusError {}

/// Span site for mapping-information import (static PIF and dynamic
/// allocations both count as `datamgr`/`import` in the self-mapping).
fn datamgr_import_site() -> &'static pdmap_obs::SpanSite {
    static SITE: std::sync::OnceLock<pdmap_obs::SpanSite> = std::sync::OnceLock::new();
    SITE.get_or_init(|| pdmap_obs::span_site("datamgr", "import"))
}

/// The read-mostly shared catalogue: everything every shard's consumer
/// needs merged — the mapping table, imported PIF metrics, and the where
/// axis (static resources plus every merged dynamic subtree).
struct DmShared {
    mappings: MappingTable,
    axis: WhereAxis,
    pif_metrics: Vec<MetricRecord>,
    /// Content hashes of PIF texts imported over the wire, so N daemons
    /// shipping the same executable's PIF populate the catalogue once.
    imported_pif_hashes: HashSet<u64>,
}

/// A dynamic allocation's axis contribution, queued in its shard until a
/// reader merges it into the shared axis.
struct PendingAlloc {
    name: String,
    nodes: Vec<usize>,
}

#[derive(Default)]
struct ShardInner {
    dynamic_arrays: Vec<ArrayAllocInfo>,
    freed: Vec<ArrayId>,
    pending: Vec<PendingAlloc>,
}

/// Point-in-time counters for one shard (see [`DataManager::shard_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Mapping-information imports routed to this shard (dynamic
    /// allocations plus wire-shipped PIF files).
    pub imports: u64,
    /// Metric samples delivered by this shard's daemon connection.
    pub samples: u64,
    /// Nanoseconds spent waiting to acquire this shard's lock — near zero
    /// while shards really are independent.
    pub lock_wait_ns: u64,
}

/// One daemon connection's slice of the manager: private mutable state
/// behind its own lock, counters mirrored into the global `pdmap-obs`
/// registry as `datamgr.shard<K>.{imports,samples,lock_wait_ns}`.
struct Shard {
    inner: Mutex<ShardInner>,
    /// The shard's columnar sample buffer: batched samples delivered by
    /// this shard's daemon land here as flat columns (see
    /// [`DataManager::append_columns_on`]). Separate from `inner` so the
    /// sample path never contends with the import path.
    cols: Mutex<SampleColumns>,
    imports: AtomicU64,
    samples: AtomicU64,
    lock_wait_ns: AtomicU64,
    obs_imports: std::sync::Arc<pdmap_obs::Counter>,
    obs_samples: std::sync::Arc<pdmap_obs::Counter>,
    obs_lock_wait: std::sync::Arc<pdmap_obs::Counter>,
}

impl Shard {
    fn new(index: usize) -> Self {
        Self {
            inner: Mutex::new(ShardInner::default()),
            cols: Mutex::new(SampleColumns::new()),
            imports: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            lock_wait_ns: AtomicU64::new(0),
            obs_imports: pdmap_obs::counter(&format!("datamgr.shard{index}.imports")),
            obs_samples: pdmap_obs::counter(&format!("datamgr.shard{index}.samples")),
            obs_lock_wait: pdmap_obs::counter(&format!("datamgr.shard{index}.lock_wait_ns")),
        }
    }

    /// Locks the shard, charging the acquisition wait to `lock_wait_ns`.
    fn lock(&self) -> std::sync::MutexGuard<'_, ShardInner> {
        let t0 = pdmap_obs::now_ns();
        let g = self.inner.lock();
        let waited = pdmap_obs::now_ns().saturating_sub(t0);
        self.lock_wait_ns.fetch_add(waited, Ordering::Relaxed);
        self.obs_lock_wait.add(waited);
        g
    }
}

/// The resource dictionary + mapping store.
pub struct DataManager {
    ns: Namespace,
    source_level: String,
    shared: RwLock<DmShared>,
    shards: Box<[Shard]>,
}

impl DataManager {
    /// Creates a single-shard data manager over a shared namespace (the
    /// seed's single-daemon topology). `source_level` is the language level
    /// name used when resolving foci (default `CM Fortran`).
    pub fn new(ns: Namespace, source_level: &str) -> Self {
        Self::sharded(ns, source_level, 1)
    }

    /// Creates a data manager with `shards` independent shards — one per
    /// expected daemon connection. `shards` is clamped to at least 1.
    pub fn sharded(ns: Namespace, source_level: &str, shards: usize) -> Self {
        Self {
            ns,
            source_level: source_level.to_string(),
            shared: RwLock::new(DmShared {
                mappings: MappingTable::new(),
                axis: WhereAxis::new(),
                pif_metrics: Vec::new(),
                imported_pif_hashes: HashSet::new(),
            }),
            shards: (0..shards.max(1)).map(Shard::new).collect(),
        }
    }

    /// The shared namespace.
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Counter snapshot for shard `k` (panics if out of range).
    pub fn shard_stats(&self, k: usize) -> ShardStats {
        let s = &self.shards[k];
        ShardStats {
            imports: s.imports.load(Ordering::Relaxed),
            samples: s.samples.load(Ordering::Relaxed),
            lock_wait_ns: s.lock_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Imports a PIF file (static mapping information, §3/§5). Static
    /// imports go straight to the shared catalogue.
    pub fn import_pif(&self, file: &PifFile) -> Result<Applied, ApplyError> {
        let _span = pdmap_obs::span(datamgr_import_site());
        let mut g = self.shared.write();
        let DmShared { mappings, axis, .. } = &mut *g;
        let applied = pdmap_pif::apply(file, &self.ns, mappings, axis)?;
        g.pif_metrics.extend(applied.metrics.iter().cloned());
        // Import complete: the symbol table is expected to be read-only
        // from here (late interns — dynamic arrays — are counted, not
        // rejected; see `pdmap::intern`).
        pdmap::intern::freeze();
        Ok(applied)
    }

    /// Imports PIF text shipped over the wire by daemon `shard` (the §5
    /// "daemons import static mapping information ... just after they load
    /// each application executable" path, crossing a process boundary).
    /// Identical texts arriving from several daemons of one SPMD program
    /// are applied once; every arrival still counts as that shard's import.
    /// Returns `Ok(None)` for a duplicate.
    pub fn import_pif_text(
        &self,
        shard: usize,
        text: &str,
    ) -> Result<Option<Applied>, pdmap_pif::ParseError> {
        let s = &self.shards[shard % self.shards.len()];
        s.imports.fetch_add(1, Ordering::Relaxed);
        s.obs_imports.incr();
        let mut h = FxHasher::default();
        h.write(text.as_bytes());
        let key = h.finish();
        if self.shared.read().imported_pif_hashes.contains(&key) {
            return Ok(None);
        }
        let file = pdmap_pif::parse(text)?;
        // Racing importers may both parse; `apply` runs once per winner of
        // the hash insertion below.
        let mut g = self.shared.write();
        if !g.imported_pif_hashes.insert(key) {
            return Ok(None);
        }
        let _span = pdmap_obs::span(datamgr_import_site());
        let DmShared { mappings, axis, .. } = &mut *g;
        match pdmap_pif::apply(&file, &self.ns, mappings, axis) {
            Ok(applied) => {
                g.pif_metrics.extend(applied.metrics.iter().cloned());
                pdmap::intern::freeze();
                Ok(Some(applied))
            }
            // An unapplicable wire PIF is recorded as "seen" but contributes
            // nothing; daemons are untrusted input, never a panic source.
            Err(_) => Ok(None),
        }
    }

    /// Ensures the Machine hierarchy has `nodes` node resources.
    pub fn ensure_machine(&self, nodes: usize) {
        let mut g = self.shared.write();
        let tree = g.axis.tree_mut("Machine");
        for i in 0..nodes {
            tree.add_path(&[&format!("node#{i}")]);
        }
    }

    /// Merges every shard's pending axis updates into the shared axis.
    /// Called by readers; cheap (one uncontended lock per shard) when
    /// nothing is pending.
    fn sync_pending(&self) {
        let mut pending: Vec<PendingAlloc> = Vec::new();
        for shard in self.shards.iter() {
            let mut g = shard.lock();
            pending.append(&mut g.pending);
        }
        if pending.is_empty() {
            return;
        }
        let mut g = self.shared.write();
        let tree = g.axis.tree_mut("CMFarrays");
        for p in pending {
            // The static PIF usually placed the array already; otherwise
            // park it at the root. Idempotent across shards by name.
            let array_node = tree
                .find_by_name(&p.name)
                .into_iter()
                .next()
                .unwrap_or_else(|| tree.add_path(&[&p.name]));
            for node in p.nodes {
                tree.child(array_node, &format!("sub#{node}"));
            }
        }
    }

    /// Runs `f` against the (merged) where axis.
    pub fn with_axis<R>(&self, f: impl FnOnce(&WhereAxis) -> R) -> R {
        self.sync_pending();
        f(&self.shared.read().axis)
    }

    /// Runs `f` against the mapping table.
    pub fn with_mappings<R>(&self, f: impl FnOnce(&MappingTable) -> R) -> R {
        f(&self.shared.read().mappings)
    }

    /// Metric records imported from PIF files.
    pub fn pif_metrics(&self) -> Vec<MetricRecord> {
        self.shared.read().pif_metrics.clone()
    }

    /// Dynamic array-allocation records received so far, in shard order.
    pub fn dynamic_arrays(&self) -> Vec<ArrayAllocInfo> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.lock().dynamic_arrays.iter().cloned());
        }
        out
    }

    /// Renders the full (merged) where-axis display (Figure 8).
    pub fn render_where_axis(&self) -> String {
        self.sync_pending();
        self.shared.read().axis.render()
    }

    /// Maps measured low-level costs upward through the mapping table.
    pub fn map_upward(
        &self,
        measured: &[(SentenceId, Cost)],
        policy: AssignPolicy,
    ) -> Result<AssignmentResult, UnitMismatch> {
        let g = self.shared.read();
        assign_per_source(&g.mappings, measured, policy)
    }

    /// Dynamic mapping information routed to an explicit shard — the entry
    /// point used by multi-daemon sessions ([`crate::daemonset::DaemonSet`]
    /// hands each connection its own shard index). Compiler temporaries are
    /// filtered exactly as on the [`MappingSink`] path.
    pub fn array_allocated_on(&self, shard: usize, info: &ArrayAllocInfo) {
        let _span = pdmap_obs::span(datamgr_import_site());
        if info.name.starts_with("CMF_TMP") {
            return; // compiler temporaries are not user resources
        }
        let s = &self.shards[shard % self.shards.len()];
        s.imports.fetch_add(1, Ordering::Relaxed);
        s.obs_imports.incr();
        let mut g = s.lock();
        g.dynamic_arrays.push(info.clone());
        g.pending.push(PendingAlloc {
            name: info.name.clone(),
            nodes: info.subgrids.iter().map(|&(n, _, _)| n).collect(),
        });
    }

    /// An array free routed to an explicit shard.
    pub fn array_freed_on(&self, shard: usize, array: ArrayId) {
        self.shards[shard % self.shards.len()]
            .lock()
            .freed
            .push(array);
    }

    /// Records `n` metric samples delivered via `shard`. Lock-free: the
    /// sample path moves only relaxed counters, never a manager lock.
    pub fn note_samples_on(&self, shard: usize, n: u64) {
        let s = &self.shards[shard % self.shards.len()];
        s.samples.fetch_add(n, Ordering::Relaxed);
        s.obs_samples.add(n);
    }

    /// Delivers a decoded wire batch from daemon `daemon` into shard
    /// `shard`'s columnar buffer, interning the batch dictionary and
    /// applying the daemon's clock offset as it lands. The columnar twin
    /// of the struct spine's per-sample delivery: counts move on the same
    /// relaxed per-shard counters, and no shared lock is taken.
    pub fn append_columns_on(
        &self,
        shard: usize,
        daemon: u32,
        offset_ns: i64,
        batch: &pdmap_transport::BatchColumns,
    ) {
        let s = &self.shards[shard % self.shards.len()];
        s.cols.lock().extend_batch(daemon, offset_ns, batch);
        let n = batch.len() as u64;
        s.samples.fetch_add(n, Ordering::Relaxed);
        s.obs_samples.add(n);
    }

    /// Re-applies skew correction for `daemon` across every shard's
    /// columnar buffer — the column-pass rewrite a later clock sync owes
    /// samples that already landed under a stale offset estimate.
    pub fn realign_columns(&self, daemon: u32, offset_ns: i64) {
        for s in self.shards.iter() {
            s.cols.lock().realign(daemon, offset_ns);
        }
    }

    /// One-pass variant of [`DataManager::realign_columns`] covering every
    /// daemon at once (`offsets` indexed by daemon id) — what the
    /// post-handshake rewrite uses instead of N full passes.
    pub fn realign_columns_all(&self, offsets: &[i64]) {
        for s in self.shards.iter() {
            s.cols.lock().realign_all(offsets);
        }
    }

    /// The shard-merged columnar sample view: every shard's buffer
    /// concatenated in shard order, then stably sorted by aligned time —
    /// same-instant samples keep shard-then-arrival order. Names stay
    /// interned; callers materialize strings only at the render edge.
    pub fn merged_sample_columns(&self) -> SampleColumns {
        let mut out = SampleColumns::new();
        for s in self.shards.iter() {
            out.append(&s.cols.lock());
        }
        out.sort_by_aligned();
        out
    }

    fn array_active_sentence(&self, array: &str) -> Option<SentenceId> {
        let level = self.ns.find_level(&self.source_level)?;
        let verb = self.ns.find_verb(level, "Active")?;
        let noun = self.ns.find_noun(level, array)?;
        Some(self.ns.say(verb, [noun]))
    }

    fn line_sentence(&self, line_name: &str) -> Option<SentenceId> {
        let level = self.ns.find_level(&self.source_level)?;
        let verb = self.ns.find_verb(level, "Executes")?;
        // Where-axis spells it `line#N`; the noun is `lineN`.
        let noun_name = line_name.replace('#', "");
        let noun = self.ns.find_noun(level, &noun_name)?;
        Some(self.ns.say(verb, [noun]))
    }

    /// Resolves a focus into instrumentation guard predicates:
    ///
    /// * `Machine/node#K` → restrict to node K;
    /// * `CMFarrays/.../A` → the §6.1 array boolean: `{A} Active` must be
    ///   in the node's SAS;
    /// * `CMFarrays/.../A/sub#K` → the array boolean **and** node K
    ///   (Figure 9: metrics constrained to "subsections of arrays");
    /// * `CMFstmts/.../line#N` → `{lineN} Executes` active.
    pub fn resolve_focus(&self, focus: &Focus) -> Result<Vec<Pred>, FocusError> {
        self.sync_pending();
        let g = self.shared.read();
        self.resolve_focus_locked(&g, focus)
    }

    /// Where-axis refinements of a focus: for every hierarchy, the nearest
    /// *constrainable* descendants of the current selection (arrays before
    /// their subregions, statement leaves, machine nodes). Used by the
    /// Performance Consultant; returned behind `Arc` so the consultant's
    /// refinement cache shares one allocation across every hypothesis
    /// instead of cloning the list on each hit.
    pub fn refinement_candidates(&self, focus: &Focus) -> std::sync::Arc<[Focus]> {
        self.sync_pending();
        let g = self.shared.read();
        let mut out = Vec::new();
        for tree in g.axis.trees() {
            let hier = tree.name().to_string();
            let Some(start) = tree.resolve(focus.selection(&hier)) else {
                continue;
            };
            // BFS: stop descending at the first constrainable node.
            let mut queue: Vec<_> = tree.children(start).to_vec();
            while let Some(n) = queue.pop() {
                let path = tree.path_of(n);
                let candidate = focus.clone().select(&hier, &path);
                if self.resolve_focus_locked(&g, &candidate).is_ok() {
                    if &candidate != focus {
                        out.push(candidate);
                    }
                } else {
                    queue.extend(tree.children(n).iter().copied());
                }
            }
        }
        out.into()
    }

    fn resolve_focus_locked(&self, g: &DmShared, focus: &Focus) -> Result<Vec<Pred>, FocusError> {
        let mut preds = Vec::new();
        for (hier, path) in focus.selection_names() {
            if path == "/" {
                continue;
            }
            let tree = g
                .axis
                .tree(hier)
                .ok_or_else(|| FocusError::UnknownHierarchy(hier.to_string()))?;
            let node = tree
                .resolve(path)
                .ok_or_else(|| FocusError::UnknownPath(path.to_string()))?;
            let name = tree.name_of(node).to_string();
            match hier {
                "Machine" => {
                    let k: u32 = name
                        .strip_prefix("node#")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| FocusError::Unconstrainable(path.to_string()))?;
                    preds.push(Pred::NodeIs(k));
                }
                "CMFarrays" => {
                    if let Some(sub) = name.strip_prefix("sub#") {
                        let k: u32 = sub
                            .parse()
                            .map_err(|_| FocusError::Unconstrainable(path.to_string()))?;
                        let parent = tree
                            .parent(node)
                            .ok_or_else(|| FocusError::Unconstrainable(path.to_string()))?;
                        let array = tree.name_of(parent).to_string();
                        let s = self
                            .array_active_sentence(&array)
                            .ok_or_else(|| FocusError::Unconstrainable(path.to_string()))?;
                        preds.push(Pred::SentenceActive(s));
                        preds.push(Pred::NodeIs(k));
                    } else {
                        // Must be an array leaf (arrays may have subregion
                        // children, so "has array sentence" is the test).
                        let s = self
                            .array_active_sentence(&name)
                            .ok_or_else(|| FocusError::Unconstrainable(path.to_string()))?;
                        preds.push(Pred::SentenceActive(s));
                    }
                }
                "CMFstmts" => {
                    let s = self
                        .line_sentence(&name)
                        .ok_or_else(|| FocusError::Unconstrainable(path.to_string()))?;
                    preds.push(Pred::SentenceActive(s));
                }
                other => return Err(FocusError::UnknownHierarchy(other.to_string())),
            }
        }
        Ok(preds)
    }
}

impl MappingSink for DataManager {
    /// Dynamic mapping information (§6.1 step 1): a new array and its
    /// node subregions arrive from the run-time system. The sink interface
    /// carries no connection identity, so it routes to shard 0 — the
    /// single-daemon topology.
    fn array_allocated(&self, info: &ArrayAllocInfo) {
        self.array_allocated_on(0, info);
    }

    fn array_freed(&self, array: ArrayId) {
        self.array_freed_on(0, array);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmrts_sim::Distribution;

    fn dm_with_program() -> DataManager {
        let ns = Namespace::new();
        let compiled = cmf_lang::compile(
            cmf_lang::samples::FIGURE4,
            &ns,
            &cmf_lang::CompileOptions::default(),
        )
        .unwrap();
        let dm = DataManager::new(ns, "CM Fortran");
        dm.import_pif(&compiled.pif).unwrap();
        dm.ensure_machine(4);
        dm
    }

    fn alloc(name: &str, nodes: std::ops::Range<usize>) -> ArrayAllocInfo {
        ArrayAllocInfo {
            array: ArrayId(0),
            name: name.into(),
            extents: vec![1024],
            dist: Distribution::Block,
            subgrids: nodes.map(|n| (n, 256, 256)).collect(),
        }
    }

    #[test]
    fn pif_import_populates_axis_and_mappings() {
        let dm = dm_with_program();
        assert!(dm.with_mappings(|m| m.len()) > 0);
        let shown = dm.render_where_axis();
        assert!(shown.contains("CMFstmts"));
        assert!(shown.contains("CMFarrays"));
        assert!(shown.contains("node#3"));
    }

    #[test]
    fn dynamic_alloc_adds_subregions() {
        let dm = dm_with_program();
        dm.array_allocated(&alloc("A", 0..4));
        let shown = dm.render_where_axis();
        assert!(shown.contains("sub#0"));
        assert!(shown.contains("sub#3"));
        assert_eq!(dm.dynamic_arrays().len(), 1);
        assert_eq!(dm.shard_stats(0).imports, 1);
    }

    #[test]
    fn temporaries_are_filtered() {
        let dm = dm_with_program();
        dm.array_allocated(&ArrayAllocInfo {
            array: ArrayId(9),
            name: "CMF_TMP3".into(),
            extents: vec![8],
            dist: Distribution::Block,
            subgrids: vec![],
        });
        assert!(dm.dynamic_arrays().is_empty());
        assert!(!dm.render_where_axis().contains("CMF_TMP"));
    }

    #[test]
    fn machine_focus_resolves_to_node_pred() {
        let dm = dm_with_program();
        let f = Focus::whole_program().select("Machine", "/node#2");
        assert_eq!(dm.resolve_focus(&f).unwrap(), vec![Pred::NodeIs(2)]);
    }

    #[test]
    fn array_focus_resolves_to_sentence_pred() {
        let dm = dm_with_program();
        let f = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
        let preds = dm.resolve_focus(&f).unwrap();
        assert_eq!(preds.len(), 1);
        assert!(matches!(preds[0], Pred::SentenceActive(_)));
    }

    #[test]
    fn subregion_focus_adds_node_restriction() {
        let dm = dm_with_program();
        dm.array_allocated(&alloc("A", 0..4));
        let f = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A/sub#1");
        let preds = dm.resolve_focus(&f).unwrap();
        assert_eq!(preds.len(), 2);
        assert!(preds.contains(&Pred::NodeIs(1)));
    }

    #[test]
    fn statement_focus_resolves() {
        let dm = dm_with_program();
        let f = Focus::whole_program().select("CMFstmts", "/hpfex.fcm/HPFEX/line#5");
        let preds = dm.resolve_focus(&f).unwrap();
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn whole_program_focus_has_no_preds() {
        let dm = dm_with_program();
        assert!(dm
            .resolve_focus(&Focus::whole_program())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn focus_errors_are_specific() {
        let dm = dm_with_program();
        let f = Focus::whole_program().select("Bogus", "/x");
        assert!(matches!(
            dm.resolve_focus(&f),
            Err(FocusError::UnknownHierarchy(_))
        ));
        let f = Focus::whole_program().select("CMFarrays", "/nope/nope");
        assert!(matches!(
            dm.resolve_focus(&f),
            Err(FocusError::UnknownPath(_))
        ));
        // Interior module node: not constrainable.
        let f = Focus::whole_program().select("CMFarrays", "/hpfex.fcm");
        assert!(matches!(
            dm.resolve_focus(&f),
            Err(FocusError::Unconstrainable(_))
        ));
    }

    #[test]
    fn map_upward_uses_imported_mappings() {
        let dm = dm_with_program();
        // Find the PIF's block->line mapping source sentence and push cost
        // through it.
        let (src, n_dests) = dm.with_mappings(|m| {
            let d = m.defs()[0];
            (d.source, m.destinations(d.source).len())
        });
        let res = dm
            .map_upward(&[(src, Cost::seconds(2.0))], AssignPolicy::Merge)
            .unwrap();
        assert_eq!(res.assignments.len(), 1);
        assert_eq!(res.assignments[0].target.members().len(), n_dests);
    }

    #[test]
    fn shards_keep_independent_state_and_merge_one_axis() {
        let dm = DataManager::sharded(Namespace::new(), "CM Fortran", 3);
        assert_eq!(dm.shard_count(), 3);
        dm.array_allocated_on(0, &alloc("A", 0..2));
        dm.array_allocated_on(1, &alloc("B", 2..4));
        dm.array_allocated_on(2, &alloc("A", 0..2)); // same name, other daemon
        dm.note_samples_on(1, 5);
        let shown = dm.render_where_axis();
        // One axis node per array name, with subregions, regardless of shard.
        assert_eq!(shown.matches("  A\n").count(), 1, "{shown}");
        assert!(shown.contains("sub#2"));
        assert_eq!(dm.dynamic_arrays().len(), 3);
        assert_eq!(dm.shard_stats(0).imports, 1);
        assert_eq!(dm.shard_stats(1).imports, 1);
        assert_eq!(dm.shard_stats(1).samples, 5);
        assert_eq!(dm.shard_stats(2).samples, 0);
    }

    #[test]
    fn wire_pif_import_is_deduplicated_but_counted_per_shard() {
        let ns = Namespace::new();
        let compiled = cmf_lang::compile(
            cmf_lang::samples::FIGURE4,
            &ns,
            &cmf_lang::CompileOptions::default(),
        )
        .unwrap();
        let text = pdmap_pif::write(&compiled.pif);
        let dm = DataManager::sharded(ns, "CM Fortran", 2);
        let first = dm.import_pif_text(0, &text).unwrap();
        assert!(first.is_some(), "first wire import applies");
        let second = dm.import_pif_text(1, &text).unwrap();
        assert!(second.is_none(), "identical PIF from daemon 1 is a dup");
        assert_eq!(dm.shard_stats(0).imports, 1);
        assert_eq!(dm.shard_stats(1).imports, 1);
        let n = dm.with_mappings(|m| m.len());
        let _ = dm.import_pif_text(0, &text).unwrap();
        assert_eq!(dm.with_mappings(|m| m.len()), n, "catalogue applied once");
        assert!(dm.render_where_axis().contains("CMFarrays"));
    }

    #[test]
    fn concurrent_import_and_deliver_on_two_shards_loses_nothing() {
        const N: usize = 200;
        let dm = std::sync::Arc::new(DataManager::sharded(Namespace::new(), "CM Fortran", 2));
        std::thread::scope(|s| {
            for shard in 0..2usize {
                let dm = dm.clone();
                s.spawn(move || {
                    for i in 0..N {
                        dm.array_allocated_on(shard, &alloc(&format!("S{shard}_{i}"), 0..2));
                        dm.note_samples_on(shard, 1);
                        if i % 64 == 0 {
                            // Readers interleave with writers on the other shard.
                            let _ = dm.render_where_axis();
                        }
                    }
                });
            }
        });
        assert_eq!(dm.dynamic_arrays().len(), 2 * N);
        for shard in 0..2 {
            let st = dm.shard_stats(shard);
            assert_eq!(st.imports, N as u64, "shard {shard} imports");
            assert_eq!(st.samples, N as u64, "shard {shard} samples");
        }
        let shown = dm.render_where_axis();
        assert!(shown.contains("S0_0") && shown.contains(&format!("S1_{}", N - 1)));
    }
}
