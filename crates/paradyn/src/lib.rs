//! # paradyn-tool — the measurement tool of the paper's case study
//!
//! An in-process reproduction of the Paradyn pieces Sections 5-6 use:
//!
//! * [`datamgr`] — the Data Manager: PIF import (static mapping
//!   information), the dynamic-mapping sink fed by the run-time system,
//!   the where axis (Figure 8), and focus→predicate resolution;
//! * [`catalogue`] — the complete Figure 9 metric catalogue written in MDL;
//! * [`metrics`] — the Metric Manager: request-time instantiation of MDL
//!   metrics with focus constraints, and the removable mapping
//!   instrumentation that feeds the per-node SAS;
//! * [`stream`] / [`visi`] — sampled metric streams and the ASCII
//!   time-plot / bar-chart / table display modules;
//! * [`consultant`] — the Performance Consultant's why/where search;
//! * [`daemon`] — the §5 wire protocol between the application-linked
//!   instrumentation library and the tool's daemon;
//! * [`daemonset`] — the §4.2.3 multi-daemon session: N TCP links, clock
//!   alignment, and one merged sample stream over the sharded manager;
//! * [`tool`] — the [`Paradyn`](tool::Paradyn) facade tying it together.
//!
//! ```
//! use paradyn_tool::tool::Paradyn;
//! use pdmap::hierarchy::Focus;
//!
//! let mut tool = Paradyn::new(cmrts_sim::MachineConfig {
//!     nodes: 4,
//!     ..cmrts_sim::MachineConfig::default()
//! });
//! tool.load_source(cmf_lang::samples::FIGURE4).unwrap();
//! let focus_a = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
//! let (msgs, _wall) = tool.measure("Point-to-Point Operations", &focus_a).unwrap();
//! assert_eq!(msgs, 4.0); // the messages sent for summations of A
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalogue;
pub mod consultant;
pub mod daemon;
pub mod daemonset;
pub mod datamgr;
pub mod mcache;
pub mod metrics;
pub mod report;
pub mod selfmap;
pub mod stream;
pub mod tool;
pub mod visi;

pub use catalogue::{figure9_catalogue, FIGURE9_MDL};
pub use consultant::{
    audit, render as render_search, search, search_parallel, ConsultantConfig, ExperimentNode,
    Verdict,
};
pub use daemon::{Daemon, DaemonError, DaemonMsg, InstrLibEndpoint, ProtoError};
pub use daemonset::{
    AlignedSample, ClockEstimate, ClockSyncError, ConnRef, Coverage, DaemonConn, DaemonHealth,
    DaemonSet, DialFn, FleetHealth, FleetPerturbation, Merged, MergedStreams, NodeHealth,
    ReconnectFn, RecoveryReport, RecoverySummary, ReparentReport, SessionCoverage,
    SupervisorPolicy,
};
pub use datamgr::{DataManager, FocusError, ShardStats};
pub use mcache::{McacheStats, Measured, MeasurementCache};
pub use metrics::{MappingInstrumentation, MetricManager, MetricRequest, RequestError};
pub use report::{profile, run_report, Profile};
pub use selfmap::{
    ask_obs, chaos_catalogue, consultant_catalogue, export_chaos_obs, export_consultant_obs,
    export_obs, export_shard_obs, obs_catalogue, obs_sentences, shard_obs_catalogue, shard_obs_mdl,
    CHAOS_MDL, CHAOS_OBS_COUNTERS, CONSULTANT_MDL, CONSULTANT_OBS_COUNTERS, OBS_MDL,
};
pub use stream::{run_sampled, run_sampled_adaptive, Stream};
pub use tool::{Experiment, LoadError, Paradyn};
