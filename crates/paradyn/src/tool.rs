//! The tool facade: one object wiring compiler output, the data manager,
//! the metric manager, mapping instrumentation, and machines together —
//! the in-process equivalent of the Paradyn front end plus its daemon.

use crate::daemonset::{Coverage, FleetPerturbation, SessionCoverage};
use crate::datamgr::DataManager;
use crate::metrics::{MappingInstrumentation, MetricManager, MetricRequest, RequestError};
use crate::stream::{run_sampled, Stream};
use cmf_lang::{CompileOptions, Compiled};
use cmrts_sim::{Machine, MachineConfig, Program, RunSummary};
use dyninst_sim::InstrumentationManager;
use pdmap::hierarchy::Focus;
use pdmap::model::Namespace;
use std::sync::{Arc, Mutex};

/// Errors from loading a program into the tool.
#[derive(Debug)]
pub enum LoadError {
    /// Compilation failed.
    Compile(cmf_lang::CompileError),
    /// PIF import failed.
    Pif(pdmap_pif::ApplyError),
    /// The lowered program failed machine validation.
    Ir(cmrts_sim::IrError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Compile(e) => write!(f, "compile error: {e}"),
            LoadError::Pif(e) => write!(f, "PIF import error: {e}"),
            LoadError::Ir(e) => write!(f, "IR error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// The assembled measurement tool.
pub struct Paradyn {
    ns: Namespace,
    mgr: Arc<InstrumentationManager>,
    data: Arc<DataManager>,
    metrics: MetricManager,
    mapping: Option<MappingInstrumentation>,
    config: MachineConfig,
    program: Option<Program>,
    /// The session's fleet label, when a multi-daemon frontend drives this
    /// tool: every request is stamped with it so downstream verdicts widen
    /// with the fleet's real coverage. `None` means single-process — the
    /// tool *is* the whole fleet and stamps complete coverage.
    session: Mutex<Option<SessionCoverage>>,
    /// The fleet's aggregated self-observation cost, when a multi-daemon
    /// frontend installs one from
    /// [`crate::daemonset::DaemonSet::fleet_perturbation`]; surfaced by
    /// the run report so telemetry overhead is visible next to the data
    /// it perturbs. `None` means no node is self-observing.
    perturbation: Mutex<Option<FleetPerturbation>>,
}

impl Paradyn {
    /// Creates a tool for machines of the given configuration.
    pub fn new(config: MachineConfig) -> Self {
        let ns = Namespace::new();
        let mgr = Arc::new(InstrumentationManager::new());
        let data = Arc::new(DataManager::new(ns.clone(), "CM Fortran"));
        let metrics = MetricManager::new(mgr.clone());
        Self {
            ns,
            mgr,
            data,
            metrics,
            mapping: None,
            config,
            program: None,
            session: Mutex::new(None),
            perturbation: Mutex::new(None),
        }
    }

    /// The shared namespace.
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// The shared instrumentation manager.
    pub fn manager(&self) -> &Arc<InstrumentationManager> {
        &self.mgr
    }

    /// The data manager.
    pub fn data(&self) -> &Arc<DataManager> {
        &self.data
    }

    /// The metric manager.
    pub fn metrics(&self) -> &MetricManager {
        &self.metrics
    }

    /// Mutable metric manager (for adding user MDL).
    pub fn metrics_mut(&mut self) -> &mut MetricManager {
        &mut self.metrics
    }

    /// The machine configuration used for new machines.
    pub fn machine_config(&self) -> &MachineConfig {
        &self.config
    }

    /// Compiles and loads source in one step.
    pub fn load_source(&mut self, source: &str) -> Result<Compiled, LoadError> {
        let compiled = cmf_lang::compile(source, &self.ns, &CompileOptions::default())
            .map_err(LoadError::Compile)?;
        self.load(&compiled)?;
        Ok(compiled)
    }

    /// Loads a compiled program: imports its PIF (static mapping
    /// information), prepares the Machine hierarchy, and installs the
    /// dynamic mapping instrumentation.
    pub fn load(&mut self, compiled: &Compiled) -> Result<(), LoadError> {
        self.data
            .import_pif(&compiled.pif)
            .map_err(LoadError::Pif)?;
        self.data.ensure_machine(self.config.nodes);
        self.program = Some(compiled.program().clone());
        if self.mapping.is_none() {
            self.mapping = Some(MappingInstrumentation::install(&self.mgr));
        }
        Ok(())
    }

    /// Turns all dynamic mapping instrumentation on or off at once (§5).
    pub fn set_mapping_instrumentation(&mut self, on: bool) {
        match (on, self.mapping.take()) {
            (true, None) => self.mapping = Some(MappingInstrumentation::install(&self.mgr)),
            (true, Some(mi)) => self.mapping = Some(mi),
            (false, Some(mut mi)) => mi.remove(&self.mgr),
            (false, None) => {}
        }
    }

    /// Builds a fresh machine for the loaded program, wired to the data
    /// manager's dynamic-mapping sink.
    pub fn new_machine(&self) -> Result<Machine, LoadError> {
        let program = self
            .program
            .clone()
            .expect("load a program before creating machines");
        let mut m = Machine::new(
            self.config.clone(),
            self.ns.clone(),
            self.mgr.clone(),
            program,
        )
        .map_err(LoadError::Ir)?;
        m.set_mapping_sink(self.data.clone());
        Ok(m)
    }

    /// Installs (or clears, with `None`) the session's fleet label. A
    /// multi-daemon frontend refreshes this from
    /// [`crate::daemonset::DaemonSet::session_coverage`] as the fleet's
    /// health changes; every subsequent [`Paradyn::request`] and
    /// [`Paradyn::measure_with_coverage`] is stamped with it.
    pub fn set_session_coverage(&self, session: Option<SessionCoverage>) {
        *self.session.lock().expect("session label poisoned") = session;
    }

    /// Installs (or clears, with `None`) the fleet's aggregated
    /// self-observation cost, refreshed by a multi-daemon frontend from
    /// [`crate::daemonset::DaemonSet::fleet_perturbation`].
    pub fn set_fleet_perturbation(&self, p: Option<FleetPerturbation>) {
        *self.perturbation.lock().expect("perturbation poisoned") = p;
    }

    /// The installed fleet perturbation rollup, if any node is
    /// self-observing.
    pub fn fleet_perturbation(&self) -> Option<FleetPerturbation> {
        *self.perturbation.lock().expect("perturbation poisoned")
    }

    /// The coverage every request is currently stamped with: the session
    /// label if one is installed, otherwise complete coverage over this
    /// tool's own nodes (a single process cannot lose part of itself).
    pub fn session_coverage(&self) -> Coverage {
        self.session
            .lock()
            .expect("session label poisoned")
            .map(|s| s.coverage)
            .unwrap_or_else(|| Coverage::complete(self.config.nodes))
    }

    /// The largest per-sample cost observed by the session (`0.0` for a
    /// single-process tool) — the bound used to price lost samples.
    pub fn session_max_sample_cost(&self) -> f64 {
        self.session
            .lock()
            .expect("session label poisoned")
            .map(|s| s.max_sample_cost)
            .unwrap_or(0.0)
    }

    /// Requests a metric constrained to a focus. The result is stamped
    /// with the session's [`Coverage`] — complete for a single-process
    /// tool, the fleet's real coverage when a multi-daemon frontend
    /// installed one via [`Paradyn::set_session_coverage`] — so §6
    /// question answers carry how much of the fleet they actually cover.
    pub fn request(&self, metric: &str, focus: &Focus) -> Result<MetricRequest, RequestError> {
        let mut req =
            self.metrics
                .request(metric, &self.data, focus, self.config.cost.ticks_per_second)?;
        req.coverage = self.session_coverage();
        Ok(req)
    }

    /// One-shot experiment: request the metric, run a fresh machine to
    /// completion, read the value, remove the instrumentation. Returns
    /// `(value, wall seconds)`.
    pub fn measure(&self, metric: &str, focus: &Focus) -> Result<(f64, f64), RequestError> {
        self.measure_with_coverage(metric, focus)
            .map(|(v, w, _)| (v, w))
    }

    /// [`Paradyn::measure`] plus the [`Coverage`] the value was computed
    /// under — what coverage-aware consumers (the Performance Consultant's
    /// hypothesis tests) use so a degraded fleet widens their verdict
    /// intervals instead of silently biasing the point estimate.
    pub fn measure_with_coverage(
        &self,
        metric: &str,
        focus: &Focus,
    ) -> Result<(f64, f64, Coverage), RequestError> {
        let mut req = self.request(metric, focus)?;
        let mut m = self.new_machine().expect("program loaded");
        m.run();
        let value = req.value(&m);
        let wall = m.wall_clock() as f64 / self.config.cost.ticks_per_second;
        let coverage = req.coverage;
        req.cancel(&self.mgr);
        Ok((value, wall, coverage))
    }

    /// Runs a fresh machine while sampling the given requests.
    pub fn run_sampled(
        &self,
        requests: &[MetricRequest],
        every_steps: usize,
    ) -> (Vec<Stream>, RunSummary, Machine) {
        let mut m = self.new_machine().expect("program loaded");
        let (streams, summary) = run_sampled(&mut m, requests, every_steps);
        (streams, summary, m)
    }

    /// Renders the current where axis (Figure 8).
    pub fn render_where_axis(&self) -> String {
        self.data.render_where_axis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tool() -> Paradyn {
        let mut t = Paradyn::new(MachineConfig {
            nodes: 4,
            ..MachineConfig::default()
        });
        t.load_source(cmf_lang::samples::FIGURE4).unwrap();
        t
    }

    #[test]
    fn load_and_measure_whole_program() {
        let t = tool();
        let (v, wall) = t.measure("Summations", &Focus::whole_program()).unwrap();
        assert_eq!(v, 4.0);
        assert!(wall > 0.0);
    }

    #[test]
    fn local_requests_are_stamped_with_complete_coverage() {
        let t = tool();
        let req = t.request("Summations", &Focus::whole_program()).unwrap();
        assert!(req.coverage.is_complete());
        assert_eq!(req.coverage.nodes_reporting, 4);
        assert_eq!(req.coverage.nodes_total, 4);
    }

    #[test]
    fn session_label_overrides_the_stamp() {
        let t = tool();
        let degraded = Coverage {
            nodes_reporting: 3,
            nodes_total: 4,
            samples_lost: 2,
        };
        t.set_session_coverage(Some(SessionCoverage {
            coverage: degraded,
            max_sample_cost: 1.5,
        }));
        let req = t.request("Summations", &Focus::whole_program()).unwrap();
        assert_eq!(req.coverage, degraded);
        assert_eq!(t.session_max_sample_cost(), 1.5);
        let (v, wall, cov) = t
            .measure_with_coverage("Summations", &Focus::whole_program())
            .unwrap();
        assert_eq!(v, 4.0);
        assert!(wall > 0.0);
        assert_eq!(cov, degraded);
        // Clearing the label restores single-process completeness.
        t.set_session_coverage(None);
        assert!(t.session_coverage().is_complete());
        assert_eq!(t.session_max_sample_cost(), 0.0);
    }

    #[test]
    fn array_constrained_measure_through_facade() {
        let t = tool();
        let focus_a = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
        let (msgs_a, _) = t.measure("Point-to-Point Operations", &focus_a).unwrap();
        assert_eq!(msgs_a, 4.0, "messages during SUM(A)'s block only");
    }

    #[test]
    fn dynamic_mapping_builds_subregions_after_run() {
        let t = tool();
        let mut m = t.new_machine().unwrap();
        m.run();
        let axis = t.render_where_axis();
        assert!(axis.contains("sub#0"), "axis:\n{axis}");
        assert!(axis.contains("node#3"));
        assert_eq!(t.data().dynamic_arrays().len(), 2);
    }

    #[test]
    fn mapping_toggle_controls_sas_feed() {
        let mut t = tool();
        t.set_mapping_instrumentation(false);
        let focus_a = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
        let (v, _) = t.measure("Summations", &focus_a).unwrap();
        assert_eq!(v, 0.0, "no SAS feed, no attribution");
        t.set_mapping_instrumentation(true);
        let (v, _) = t.measure("Summations", &focus_a).unwrap();
        assert_eq!(v, 4.0);
    }

    #[test]
    fn sampled_run_produces_streams() {
        let t = tool();
        let reqs = vec![t.request("Broadcasts", &Focus::whole_program()).unwrap()];
        let (streams, summary, _m) = t.run_sampled(&reqs, 1);
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].last_value(), summary.broadcasts as f64);
    }

    #[test]
    fn compile_errors_surface() {
        let mut t = Paradyn::new(MachineConfig::default());
        let e = t.load_source("PROGRAM P\nX = NOPE(1)\nEND\n").unwrap_err();
        assert!(matches!(e, LoadError::Compile(_)));
    }
}
