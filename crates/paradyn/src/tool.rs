//! The tool facade: one object wiring compiler output, the data manager,
//! the metric manager, mapping instrumentation, and machines together —
//! the in-process equivalent of the Paradyn front end plus its daemon.

use crate::daemonset::{Coverage, FleetPerturbation, RecoverySummary, SessionCoverage};
use crate::datamgr::DataManager;
use crate::mcache::{McacheStats, Measured, MeasurementCache};
use crate::metrics::{MappingInstrumentation, MetricManager, MetricRequest, RequestError};
use crate::stream::{run_sampled, Stream};
use cmf_lang::{CompileOptions, Compiled};
use cmrts_sim::{Machine, MachineConfig, Program, RunSummary};
use dyninst_sim::InstrumentationManager;
use pdmap::hierarchy::Focus;
use pdmap::model::Namespace;
use pdmap::util::FxHasher;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Errors from loading a program into the tool.
#[derive(Debug)]
pub enum LoadError {
    /// Compilation failed.
    Compile(cmf_lang::CompileError),
    /// PIF import failed.
    Pif(pdmap_pif::ApplyError),
    /// The lowered program failed machine validation.
    Ir(cmrts_sim::IrError),
    /// No program has been loaded yet.
    NoProgram,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Compile(e) => write!(f, "compile error: {e}"),
            LoadError::Pif(e) => write!(f, "PIF import error: {e}"),
            LoadError::Ir(e) => write!(f, "IR error: {e}"),
            LoadError::NoProgram => write!(f, "no program loaded"),
        }
    }
}

/// One pure consultant experiment: a metric at a focus. Running it
/// through [`Paradyn::run_experiment`] is a function of the tool's
/// loaded program and session coverage only — no mutable state is
/// threaded, so experiments can run concurrently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Experiment {
    /// Metric name (id or display name from the catalogue).
    pub metric: String,
    /// The focus to constrain it to.
    pub focus: Focus,
}

impl std::error::Error for LoadError {}

/// The assembled measurement tool.
pub struct Paradyn {
    ns: Namespace,
    mgr: Arc<InstrumentationManager>,
    data: Arc<DataManager>,
    metrics: MetricManager,
    mapping: Option<MappingInstrumentation>,
    config: MachineConfig,
    program: Option<Program>,
    /// The session's fleet label, when a multi-daemon frontend drives this
    /// tool: every request is stamped with it so downstream verdicts widen
    /// with the fleet's real coverage. `None` means single-process — the
    /// tool *is* the whole fleet and stamps complete coverage.
    session: Mutex<Option<SessionCoverage>>,
    /// The fleet's aggregated self-observation cost, when a multi-daemon
    /// frontend installs one from
    /// [`crate::daemonset::DaemonSet::fleet_perturbation`]; surfaced by
    /// the run report so telemetry overhead is visible next to the data
    /// it perturbs. `None` means no node is self-observing.
    perturbation: Mutex<Option<FleetPerturbation>>,
    /// The fleet's recovery history rollup, when a multi-daemon frontend
    /// installs one from
    /// [`crate::daemonset::DaemonSet::recovery_summary`]; surfaced by the
    /// run report so a session that healed (readmissions, re-parented
    /// subtrees) says so next to its results. `None` means nothing ever
    /// failed — the report is unchanged.
    recovery: Mutex<Option<RecoverySummary>>,
    /// Content hash of the loaded program (PIF text × machine shape);
    /// `0` while nothing is loaded. Part of every measurement-cache key,
    /// so a reloaded tool can never serve another program's measurements.
    program_hash: AtomicU64,
    /// Bumped by every session-coverage change, mapping toggle, and
    /// program load. Part of every measurement-cache key: a fleet
    /// degradation mid-search makes all cached intervals unreachable
    /// instead of serving a stale narrow one.
    coverage_epoch: AtomicU64,
    /// The content-addressed measurement cache behind
    /// [`Paradyn::experiment_cached`].
    mcache: MeasurementCache,
}

impl Paradyn {
    /// Creates a tool for machines of the given configuration.
    pub fn new(config: MachineConfig) -> Self {
        let ns = Namespace::new();
        let mgr = Arc::new(InstrumentationManager::new());
        let data = Arc::new(DataManager::new(ns.clone(), "CM Fortran"));
        let metrics = MetricManager::new(mgr.clone());
        Self {
            ns,
            mgr,
            data,
            metrics,
            mapping: None,
            config,
            program: None,
            session: Mutex::new(None),
            perturbation: Mutex::new(None),
            recovery: Mutex::new(None),
            program_hash: AtomicU64::new(0),
            coverage_epoch: AtomicU64::new(0),
            mcache: MeasurementCache::new(),
        }
    }

    /// The shared namespace.
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// The shared instrumentation manager.
    pub fn manager(&self) -> &Arc<InstrumentationManager> {
        &self.mgr
    }

    /// The data manager.
    pub fn data(&self) -> &Arc<DataManager> {
        &self.data
    }

    /// The metric manager.
    pub fn metrics(&self) -> &MetricManager {
        &self.metrics
    }

    /// Mutable metric manager (for adding user MDL).
    pub fn metrics_mut(&mut self) -> &mut MetricManager {
        &mut self.metrics
    }

    /// The machine configuration used for new machines.
    pub fn machine_config(&self) -> &MachineConfig {
        &self.config
    }

    /// Compiles and loads source in one step.
    pub fn load_source(&mut self, source: &str) -> Result<Compiled, LoadError> {
        let compiled = cmf_lang::compile(source, &self.ns, &CompileOptions::default())
            .map_err(LoadError::Compile)?;
        self.load(&compiled)?;
        Ok(compiled)
    }

    /// Loads a compiled program: imports its PIF (static mapping
    /// information), prepares the Machine hierarchy, and installs the
    /// dynamic mapping instrumentation.
    pub fn load(&mut self, compiled: &Compiled) -> Result<(), LoadError> {
        self.data
            .import_pif(&compiled.pif)
            .map_err(LoadError::Pif)?;
        self.data.ensure_machine(self.config.nodes);
        self.program = Some(compiled.program().clone());
        let mut h = FxHasher::default();
        h.write(compiled.pif_text.as_bytes());
        h.write_usize(self.config.nodes);
        self.program_hash.store(h.finish(), Ordering::SeqCst);
        self.coverage_epoch.fetch_add(1, Ordering::SeqCst);
        if self.mapping.is_none() {
            self.mapping = Some(MappingInstrumentation::install(&self.mgr));
        }
        Ok(())
    }

    /// Turns all dynamic mapping instrumentation on or off at once (§5).
    pub fn set_mapping_instrumentation(&mut self, on: bool) {
        match (on, self.mapping.take()) {
            (true, None) => self.mapping = Some(MappingInstrumentation::install(&self.mgr)),
            (true, Some(mi)) => self.mapping = Some(mi),
            (false, Some(mut mi)) => mi.remove(&self.mgr),
            (false, None) => {}
        }
        // The toggle changes what experiments observe; cached
        // measurements from the other setting must become unreachable.
        self.coverage_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// True while the §5 dynamic mapping instrumentation is on.
    pub fn mapping_installed(&self) -> bool {
        self.mapping.as_ref().is_some_and(|mi| mi.installed())
    }

    /// Builds a fresh machine for the loaded program, wired to the data
    /// manager's dynamic-mapping sink.
    pub fn new_machine(&self) -> Result<Machine, LoadError> {
        let program = self.program.clone().ok_or(LoadError::NoProgram)?;
        let mut m = Machine::new(
            self.config.clone(),
            self.ns.clone(),
            self.mgr.clone(),
            program,
        )
        .map_err(LoadError::Ir)?;
        m.set_mapping_sink(self.data.clone());
        Ok(m)
    }

    /// Installs (or clears, with `None`) the session's fleet label. A
    /// multi-daemon frontend refreshes this from
    /// [`crate::daemonset::DaemonSet::session_coverage`] as the fleet's
    /// health changes; every subsequent [`Paradyn::request`] and
    /// [`Paradyn::measure_with_coverage`] is stamped with it.
    pub fn set_session_coverage(&self, session: Option<SessionCoverage>) {
        let mut guard = self.session.lock().expect("session label poisoned");
        *guard = session;
        // Bumped under the session lock so a concurrent
        // [`Paradyn::session_stamp`] never pairs the new coverage with the
        // old epoch (or vice versa): cached intervals from the previous
        // coverage become unreachable atomically with the change.
        self.coverage_epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Installs (or clears, with `None`) the fleet's aggregated
    /// self-observation cost, refreshed by a multi-daemon frontend from
    /// [`crate::daemonset::DaemonSet::fleet_perturbation`].
    pub fn set_fleet_perturbation(&self, p: Option<FleetPerturbation>) {
        *self.perturbation.lock().expect("perturbation poisoned") = p;
    }

    /// The installed fleet perturbation rollup, if any node is
    /// self-observing.
    pub fn fleet_perturbation(&self) -> Option<FleetPerturbation> {
        *self.perturbation.lock().expect("perturbation poisoned")
    }

    /// Installs (or clears, with `None`) the fleet's recovery rollup,
    /// refreshed by a multi-daemon frontend from
    /// [`crate::daemonset::DaemonSet::recovery_summary`].
    pub fn set_fleet_recovery(&self, r: Option<RecoverySummary>) {
        *self.recovery.lock().expect("recovery poisoned") = r;
    }

    /// The installed recovery rollup, if the session ever healed.
    pub fn fleet_recovery(&self) -> Option<RecoverySummary> {
        *self.recovery.lock().expect("recovery poisoned")
    }

    /// The coverage every request is currently stamped with: the session
    /// label if one is installed, otherwise complete coverage over this
    /// tool's own nodes (a single process cannot lose part of itself).
    pub fn session_coverage(&self) -> Coverage {
        self.session
            .lock()
            .expect("session label poisoned")
            .map(|s| s.coverage)
            .unwrap_or_else(|| Coverage::complete(self.config.nodes))
    }

    /// The largest per-sample cost observed by the session (`0.0` for a
    /// single-process tool) — the bound used to price lost samples.
    pub fn session_max_sample_cost(&self) -> f64 {
        self.session
            .lock()
            .expect("session label poisoned")
            .map(|s| s.max_sample_cost)
            .unwrap_or(0.0)
    }

    /// One atomic read of everything an experiment's cache key and
    /// interval need: `(coverage, max sample cost, coverage epoch)`. Taken
    /// under the session lock so the triple is always internally
    /// consistent — a concurrent [`Paradyn::set_session_coverage`] can
    /// never pair new coverage with the old epoch.
    pub fn session_stamp(&self) -> (Coverage, f64, u64) {
        let guard = self.session.lock().expect("session label poisoned");
        let coverage = guard
            .map(|s| s.coverage)
            .unwrap_or_else(|| Coverage::complete(self.config.nodes));
        let max_cost = guard.map(|s| s.max_sample_cost).unwrap_or(0.0);
        (
            coverage,
            max_cost,
            self.coverage_epoch.load(Ordering::SeqCst),
        )
    }

    /// The loaded program's content hash (PIF text × machine shape), `0`
    /// while nothing is loaded.
    pub fn program_hash(&self) -> u64 {
        self.program_hash.load(Ordering::SeqCst)
    }

    /// The current coverage epoch (see the field docs for what bumps it).
    pub fn coverage_epoch(&self) -> u64 {
        self.coverage_epoch.load(Ordering::SeqCst)
    }

    /// Requests a metric constrained to a focus. The result is stamped
    /// with the session's [`Coverage`] — complete for a single-process
    /// tool, the fleet's real coverage when a multi-daemon frontend
    /// installed one via [`Paradyn::set_session_coverage`] — so §6
    /// question answers carry how much of the fleet they actually cover.
    pub fn request(&self, metric: &str, focus: &Focus) -> Result<MetricRequest, RequestError> {
        let mut req =
            self.metrics
                .request(metric, &self.data, focus, self.config.cost.ticks_per_second)?;
        req.coverage = self.session_coverage();
        Ok(req)
    }

    /// One-shot experiment: request the metric, run a fresh machine to
    /// completion, read the value, remove the instrumentation. Returns
    /// `(value, wall seconds)`.
    pub fn measure(&self, metric: &str, focus: &Focus) -> Result<(f64, f64), RequestError> {
        self.measure_with_coverage(metric, focus)
            .map(|(v, w, _)| (v, w))
    }

    /// [`Paradyn::measure`] plus the [`Coverage`] the value was computed
    /// under — what coverage-aware consumers (the Performance Consultant's
    /// hypothesis tests) use so a degraded fleet widens their verdict
    /// intervals instead of silently biasing the point estimate.
    pub fn measure_with_coverage(
        &self,
        metric: &str,
        focus: &Focus,
    ) -> Result<(f64, f64, Coverage), RequestError> {
        let m = self.run_experiment(&Experiment {
            metric: metric.to_string(),
            focus: focus.clone(),
        })?;
        Ok((m.value, m.wall, m.coverage))
    }

    /// Runs one pure experiment, uncached: a private machine run measuring
    /// `exp.metric` at `exp.focus`. See [`Paradyn::run_experiment_batch`]
    /// for the purity guarantees.
    pub fn run_experiment(&self, exp: &Experiment) -> Result<Measured, RequestError> {
        self.run_experiment_batch(std::slice::from_ref(&exp.metric), &exp.focus)
            .into_iter()
            .next()
            .map(|(_, r)| r)
            .unwrap_or(Err(RequestError::NoProgram))
    }

    /// Runs one instrumented machine measuring *every* listed metric at
    /// `focus` in a single run, returning `(metric, result)` pairs in
    /// request order.
    ///
    /// The run is **pure**: it instruments a private
    /// [`InstrumentationManager`] (fresh registry and primitives, with the
    /// tool's mapping instrumentation re-installed into it when the §5
    /// toggle is on), so concurrent experiments never execute each other's
    /// snippets against shared primitives. Instrumentation in the
    /// simulator is passive — it mutates counters and timers, never the
    /// simulated clock — so a batched run produces values byte-identical
    /// to six single-metric runs.
    pub fn run_experiment_batch(
        &self,
        metrics: &[String],
        focus: &Focus,
    ) -> Vec<(String, Result<Measured, RequestError>)> {
        let Some(program) = self.program.clone() else {
            return metrics
                .iter()
                .map(|m| (m.clone(), Err(RequestError::NoProgram)))
                .collect();
        };
        let (coverage, _max_cost, _epoch) = self.session_stamp();
        let tps = self.config.cost.ticks_per_second;
        let mgr = Arc::new(InstrumentationManager::new());
        let _mapping = self
            .mapping_installed()
            .then(|| MappingInstrumentation::install(&mgr));
        let reqs: Vec<(String, Result<MetricRequest, RequestError>)> = metrics
            .iter()
            .map(|m| {
                (
                    m.clone(),
                    self.metrics.request_in(&mgr, m, &self.data, focus, tps),
                )
            })
            .collect();
        let mut machine = Machine::new(self.config.clone(), self.ns.clone(), mgr, program)
            .expect("loaded program passed machine validation");
        machine.set_mapping_sink(self.data.clone());
        machine.run();
        let wall = machine.wall_clock() as f64 / tps;
        reqs.into_iter()
            .map(|(name, r)| {
                let out = r.map(|req| Measured {
                    value: req.value(&machine),
                    wall,
                    coverage,
                });
                (name, out)
            })
            .collect()
    }

    /// [`Paradyn::run_experiment`] through the content-addressed
    /// measurement cache: the first experiment at a focus runs one machine
    /// measuring every metric in `batch`, and every later (or concurrent)
    /// experiment at the same `(focus, program content-hash, coverage
    /// epoch)` shares that run. A metric outside the cached batch falls
    /// back to an uncached run.
    pub fn experiment_cached(
        &self,
        exp: &Experiment,
        batch: &[String],
    ) -> Result<Measured, RequestError> {
        if self.program.is_none() {
            return Err(RequestError::NoProgram);
        }
        let (_, _, epoch) = self.session_stamp();
        let program = self.program_hash.load(Ordering::SeqCst);
        let focus_key = exp.focus.to_string();
        match self
            .mcache
            .get_or_fill(&exp.metric, &focus_key, program, epoch, || {
                Arc::new(self.run_experiment_batch(batch, &exp.focus))
            }) {
            Some(r) => r,
            None => self.run_experiment(exp),
        }
    }

    /// Hit/miss counters of the measurement cache.
    pub fn measurement_cache_stats(&self) -> McacheStats {
        self.mcache.stats()
    }

    /// Drops every cached measurement and zeroes the counters (bench
    /// hygiene between repetitions).
    pub fn clear_measurement_cache(&self) {
        self.mcache.clear();
    }

    /// Runs a fresh machine while sampling the given requests.
    pub fn run_sampled(
        &self,
        requests: &[MetricRequest],
        every_steps: usize,
    ) -> Result<(Vec<Stream>, RunSummary, Machine), RequestError> {
        let mut m = match self.new_machine() {
            Ok(m) => m,
            Err(LoadError::NoProgram) => return Err(RequestError::NoProgram),
            Err(e) => panic!("loaded program failed machine validation: {e}"),
        };
        let (streams, summary) = run_sampled(&mut m, requests, every_steps);
        Ok((streams, summary, m))
    }

    /// Renders the current where axis (Figure 8).
    pub fn render_where_axis(&self) -> String {
        self.data.render_where_axis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tool() -> Paradyn {
        let mut t = Paradyn::new(MachineConfig {
            nodes: 4,
            ..MachineConfig::default()
        });
        t.load_source(cmf_lang::samples::FIGURE4).unwrap();
        t
    }

    #[test]
    fn load_and_measure_whole_program() {
        let t = tool();
        let (v, wall) = t.measure("Summations", &Focus::whole_program()).unwrap();
        assert_eq!(v, 4.0);
        assert!(wall > 0.0);
    }

    #[test]
    fn local_requests_are_stamped_with_complete_coverage() {
        let t = tool();
        let req = t.request("Summations", &Focus::whole_program()).unwrap();
        assert!(req.coverage.is_complete());
        assert_eq!(req.coverage.nodes_reporting, 4);
        assert_eq!(req.coverage.nodes_total, 4);
    }

    #[test]
    fn session_label_overrides_the_stamp() {
        let t = tool();
        let degraded = Coverage {
            nodes_reporting: 3,
            nodes_total: 4,
            samples_lost: 2,
        };
        t.set_session_coverage(Some(SessionCoverage {
            coverage: degraded,
            max_sample_cost: 1.5,
        }));
        let req = t.request("Summations", &Focus::whole_program()).unwrap();
        assert_eq!(req.coverage, degraded);
        assert_eq!(t.session_max_sample_cost(), 1.5);
        let (v, wall, cov) = t
            .measure_with_coverage("Summations", &Focus::whole_program())
            .unwrap();
        assert_eq!(v, 4.0);
        assert!(wall > 0.0);
        assert_eq!(cov, degraded);
        // Clearing the label restores single-process completeness.
        t.set_session_coverage(None);
        assert!(t.session_coverage().is_complete());
        assert_eq!(t.session_max_sample_cost(), 0.0);
    }

    #[test]
    fn array_constrained_measure_through_facade() {
        let t = tool();
        let focus_a = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
        let (msgs_a, _) = t.measure("Point-to-Point Operations", &focus_a).unwrap();
        assert_eq!(msgs_a, 4.0, "messages during SUM(A)'s block only");
    }

    #[test]
    fn dynamic_mapping_builds_subregions_after_run() {
        let t = tool();
        let mut m = t.new_machine().unwrap();
        m.run();
        let axis = t.render_where_axis();
        assert!(axis.contains("sub#0"), "axis:\n{axis}");
        assert!(axis.contains("node#3"));
        assert_eq!(t.data().dynamic_arrays().len(), 2);
    }

    #[test]
    fn mapping_toggle_controls_sas_feed() {
        let mut t = tool();
        t.set_mapping_instrumentation(false);
        let focus_a = Focus::whole_program().select("CMFarrays", "/hpfex.fcm/HPFEX/A");
        let (v, _) = t.measure("Summations", &focus_a).unwrap();
        assert_eq!(v, 0.0, "no SAS feed, no attribution");
        t.set_mapping_instrumentation(true);
        let (v, _) = t.measure("Summations", &focus_a).unwrap();
        assert_eq!(v, 4.0);
    }

    #[test]
    fn sampled_run_produces_streams() {
        let t = tool();
        let reqs = vec![t.request("Broadcasts", &Focus::whole_program()).unwrap()];
        let (streams, summary, _m) = t.run_sampled(&reqs, 1).unwrap();
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].last_value(), summary.broadcasts as f64);
    }

    #[test]
    fn unloaded_tool_errors_instead_of_panicking() {
        let t = Paradyn::new(MachineConfig::default());
        assert!(matches!(
            t.measure("Summations", &Focus::whole_program()),
            Err(RequestError::NoProgram)
        ));
        assert!(matches!(
            t.measure_with_coverage("Summations", &Focus::whole_program()),
            Err(RequestError::NoProgram)
        ));
        assert!(matches!(
            t.run_sampled(&[], 1),
            Err(RequestError::NoProgram)
        ));
        assert!(matches!(t.new_machine(), Err(LoadError::NoProgram)));
        assert!(matches!(
            t.experiment_cached(
                &Experiment {
                    metric: "Summations".into(),
                    focus: Focus::whole_program(),
                },
                &["Summations".to_string()],
            ),
            Err(RequestError::NoProgram)
        ));
    }

    #[test]
    fn batched_experiment_matches_single_metric_runs() {
        let t = tool();
        let metrics = ["Summations".to_string(), "Broadcasts".to_string()];
        let batch = t.run_experiment_batch(&metrics, &Focus::whole_program());
        assert_eq!(batch.len(), 2);
        for (name, r) in &batch {
            let single = t
                .run_experiment(&Experiment {
                    metric: name.clone(),
                    focus: Focus::whole_program(),
                })
                .unwrap();
            let batched = r.as_ref().unwrap();
            assert_eq!(batched.value, single.value, "{name}");
            assert_eq!(batched.wall, single.wall, "{name}");
        }
    }

    #[test]
    fn cached_experiments_share_one_run_until_the_epoch_bumps() {
        let t = tool();
        t.clear_measurement_cache();
        let metrics: Vec<String> = vec!["Summations".into(), "Broadcasts".into()];
        let exp = |m: &str| Experiment {
            metric: m.into(),
            focus: Focus::whole_program(),
        };
        let a = t.experiment_cached(&exp("Summations"), &metrics).unwrap();
        let b = t.experiment_cached(&exp("Broadcasts"), &metrics).unwrap();
        assert_eq!(a.value, 4.0);
        assert!(b.wall > 0.0);
        let st = t.measurement_cache_stats();
        assert_eq!((st.hits, st.misses), (1, 1), "second metric was a hit");
        // A coverage change invalidates the batch: next lookup re-measures.
        t.set_session_coverage(Some(SessionCoverage {
            coverage: Coverage {
                nodes_reporting: 3,
                nodes_total: 4,
                samples_lost: 1,
            },
            max_sample_cost: 2.0,
        }));
        let c = t.experiment_cached(&exp("Summations"), &metrics).unwrap();
        assert_eq!(c.coverage.nodes_reporting, 3, "fresh stamp, not stale");
        let st = t.measurement_cache_stats();
        assert_eq!((st.hits, st.misses), (1, 2), "epoch bump forced a miss");
    }

    #[test]
    fn compile_errors_surface() {
        let mut t = Paradyn::new(MachineConfig::default());
        let e = t.load_source("PROGRAM P\nX = NOPE(1)\nEND\n").unwrap_err();
        assert!(matches!(e, LoadError::Compile(_)));
    }
}
