//! The content-addressed measurement cache behind the parallel consultant.
//!
//! The simulator is deterministic: an experiment's value is a pure function
//! of `(metric, focus, program, session coverage)`. The sequential
//! consultant nonetheless re-ran one full instrumented machine run per
//! hypothesis per focus — six runs where one suffices, because every
//! hypothesis at a focus shares the same wall-clock run and differs only in
//! which counter it reads. [`MeasurementCache`] makes that sharing
//! explicit: entries are **batches** — one machine run's worth of metric
//! values at a focus — addressed by content, not identity:
//!
//! ```text
//! key = (focus, program content-hash, coverage epoch)
//! val = [(metric, Result<Measured>)]   // every hypothesis metric, one run
//! ```
//!
//! * the **program content-hash** changes whenever a different program (or
//!   the same program under a different machine shape) is loaded, so a
//!   reloaded tool can never serve another program's measurements;
//! * the **coverage epoch** is bumped by every session-coverage change
//!   (`Paradyn::set_session_coverage`) and every mapping-instrumentation
//!   toggle, so a fleet degradation mid-search *invalidates* every cached
//!   interval instead of serving a stale narrow one — the PR 5 audit
//!   invariant (no decided verdict over a straddling interval) keeps
//!   holding because stale-epoch entries are unreachable by construction
//!   (lookups always carry the current epoch) and are purged on the next
//!   insert.
//!
//! # Concurrency
//!
//! The map is sharded by key hash; the read path takes one shared
//! (read) lock on one shard — readers never block each other, and writes
//! (one per distinct focus in a whole search) are rare. In-flight runs are
//! deduplicated: the first experiment to ask for a focus inserts a pending
//! cell and runs the machine; every overlapping experiment — the other
//! five hypotheses arriving at the same focus at the same time — blocks on
//! that cell's condvar and shares the one measurement. Hits and misses are
//! counted under the `consultant.mcache_hit` / `consultant.mcache_miss`
//! observability counters (self-mapped in `selfmap::CONSULTANT_MDL`).

use crate::metrics::RequestError;
use pdmap::util::{FxHasher, RwLock};
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::{Arc, Condvar, OnceLock};
use std::time::Duration;

use crate::daemonset::Coverage;

/// One pure experiment outcome: the metric's value, the run's wall
/// seconds, and the [`Coverage`] the session stamped it with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measured {
    /// Metric value in its declared units.
    pub value: f64,
    /// Wall seconds of the (deterministic) run.
    pub wall: f64,
    /// The fleet coverage the value was computed under.
    pub coverage: Coverage,
}

/// The full address of a cached measurement batch.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct BatchKey {
    /// Rendered focus path.
    focus: String,
    /// Content hash of the loaded program (PIF text × machine shape).
    program: u64,
    /// Session coverage epoch at request time.
    epoch: u64,
}

/// One machine run's worth of metric values at a focus, in request order.
pub type MeasuredBatch = Arc<Vec<(String, Result<Measured, RequestError>)>>;

/// `None` while the inserting experiment's machine run is still in flight.
struct Cell {
    state: std::sync::Mutex<Option<MeasuredBatch>>,
    ready: Condvar,
}

/// Point-in-time cache counters (see [`MeasurementCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McacheStats {
    /// Experiments answered from a cached (or in-flight shared) batch.
    pub hits: u64,
    /// Experiments that had to run a machine.
    pub misses: u64,
}

struct McacheObs {
    hit: Arc<pdmap_obs::Counter>,
    miss: Arc<pdmap_obs::Counter>,
}

fn obs() -> &'static McacheObs {
    static OBS: OnceLock<McacheObs> = OnceLock::new();
    OBS.get_or_init(|| McacheObs {
        hit: pdmap_obs::counter("consultant.mcache_hit"),
        miss: pdmap_obs::counter("consultant.mcache_miss"),
    })
}

const SHARDS: usize = 16;

/// The sharded, read-mostly measurement cache. See the module docs.
pub struct MeasurementCache {
    shards: Vec<RwLock<HashMap<BatchKey, Arc<Cell>>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    /// Guards in-flight accounting so `stats()` hits+misses always equals
    /// the number of completed lookups.
    _private: (),
}

impl Default for MeasurementCache {
    fn default() -> Self {
        Self::new()
    }
}

impl MeasurementCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            _private: (),
        }
    }

    fn shard_of(&self, key: &BatchKey) -> &RwLock<HashMap<BatchKey, Arc<Cell>>> {
        // The epoch is deliberately excluded from shard selection: every
        // epoch of a focus lands in the same shard, so the insert-time
        // purge below can drop stale-epoch entries without visiting the
        // other shards.
        let mut h = FxHasher::default();
        h.write(key.focus.as_bytes());
        h.write_u64(key.program);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up the batch for `(focus, program, epoch)`, running `fill`
    /// (one instrumented machine run producing every metric of the batch)
    /// exactly once per distinct key — concurrent callers for the same key
    /// block on the in-flight run and share its result. Returns the entry
    /// for `metric`, or `None` if the cached batch does not carry that
    /// metric (the caller measures directly).
    pub fn get_or_fill(
        &self,
        metric: &str,
        focus: &str,
        program: u64,
        epoch: u64,
        fill: impl FnOnce() -> MeasuredBatch,
    ) -> Option<Result<Measured, RequestError>> {
        let key = BatchKey {
            focus: focus.to_string(),
            program,
            epoch,
        };
        let shard = self.shard_of(&key);
        // Fast path: shared lock only. The common case of a whole search is
        // five hits per miss, so the write lock stays cold.
        if let Some(cell) = shard.read().get(&key).cloned() {
            let batch = Self::wait_ready(&cell);
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            obs().hit.incr();
            return Self::extract(&batch, metric);
        }
        // Slow path: race to insert the pending cell.
        let (cell, winner) = {
            let mut g = shard.write();
            // A changed program or a bumped coverage epoch makes every old
            // entry unreachable; drop them on the way in so a long session
            // never accumulates stale intervals.
            g.retain(|k, _| k.program == program && k.epoch == epoch);
            match g.get(&key).cloned() {
                Some(cell) => (cell, false),
                None => {
                    let cell = Arc::new(Cell {
                        state: std::sync::Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    g.insert(key, cell.clone());
                    (cell, true)
                }
            }
        };
        if !winner {
            let batch = Self::wait_ready(&cell);
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            obs().hit.incr();
            return Self::extract(&batch, metric);
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        obs().miss.incr();
        let batch = fill();
        {
            let mut st = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            *st = Some(batch.clone());
        }
        cell.ready.notify_all();
        Self::extract(&batch, metric)
    }

    fn wait_ready(cell: &Cell) -> MeasuredBatch {
        let mut st = cell.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.is_none() {
            // Timed re-check, like the daemonset drain pool: a missed
            // notify on an oversubscribed host costs 5 ms, not a hang.
            st = cell
                .ready
                .wait_timeout(st, Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        st.clone().expect("cell filled")
    }

    fn extract(batch: &MeasuredBatch, metric: &str) -> Option<Result<Measured, RequestError>> {
        batch
            .iter()
            .find(|(m, _)| m == metric)
            .map(|(_, r)| r.clone())
    }

    /// Hit/miss counters since construction (or the last [`clear`]).
    ///
    /// [`clear`]: MeasurementCache::clear
    pub fn stats(&self) -> McacheStats {
        McacheStats {
            hits: self.hits.load(std::sync::atomic::Ordering::Relaxed),
            misses: self.misses.load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Drops every entry and zeroes the counters (bench hygiene between
    /// repetitions; sessions never need this — the epoch does the work).
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().clear();
        }
        self.hits.store(0, std::sync::atomic::Ordering::Relaxed);
        self.misses.store(0, std::sync::atomic::Ordering::Relaxed);
    }

    /// Number of cached batches (distinct foci × epochs × programs).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(pairs: &[(&str, f64)]) -> MeasuredBatch {
        Arc::new(
            pairs
                .iter()
                .map(|&(m, v)| {
                    (
                        m.to_string(),
                        Ok(Measured {
                            value: v,
                            wall: 1.0,
                            coverage: Coverage::complete(1),
                        }),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn second_metric_at_same_focus_is_a_hit() {
        let c = MeasurementCache::new();
        let mut runs = 0;
        let r = c.get_or_fill("m1", "/", 7, 0, || {
            runs += 1;
            batch(&[("m1", 1.0), ("m2", 2.0)])
        });
        assert_eq!(r.unwrap().unwrap().value, 1.0);
        let r2 = c.get_or_fill("m2", "/", 7, 0, || {
            runs += 1;
            batch(&[])
        });
        assert_eq!(r2.unwrap().unwrap().value, 2.0);
        assert_eq!(runs, 1, "one machine run serves both metrics");
        assert_eq!(c.stats(), McacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn epoch_bump_invalidates_and_purges() {
        let c = MeasurementCache::new();
        let _ = c.get_or_fill("m", "/", 7, 0, || batch(&[("m", 1.0)]));
        assert_eq!(c.len(), 1);
        // Same focus, new epoch: miss, and the stale entry is purged.
        let r = c.get_or_fill("m", "/", 7, 1, || batch(&[("m", 5.0)]));
        assert_eq!(r.unwrap().unwrap().value, 5.0);
        assert_eq!(c.stats().misses, 2, "epoch bump forces a re-measure");
        assert_eq!(c.len(), 1, "stale-epoch batch was dropped");
    }

    #[test]
    fn program_hash_separates_programs() {
        let c = MeasurementCache::new();
        let _ = c.get_or_fill("m", "/", 1, 0, || batch(&[("m", 1.0)]));
        let r = c.get_or_fill("m", "/", 2, 0, || batch(&[("m", 9.0)]));
        assert_eq!(r.unwrap().unwrap().value, 9.0);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn missing_metric_in_cached_batch_returns_none() {
        let c = MeasurementCache::new();
        let _ = c.get_or_fill("m1", "/", 7, 0, || batch(&[("m1", 1.0)]));
        assert!(c
            .get_or_fill("other", "/", 7, 0, || batch(&[("other", 3.0)]))
            .is_none());
    }

    #[test]
    fn concurrent_same_focus_shares_one_fill() {
        let c = Arc::new(MeasurementCache::new());
        let runs = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for i in 0..8 {
                let c = c.clone();
                let runs = runs.clone();
                let metric = format!("m{}", i % 4);
                s.spawn(move || {
                    let r = c.get_or_fill(&metric, "/f", 7, 0, || {
                        runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        // A slow fill widens the race window.
                        std::thread::sleep(Duration::from_millis(10));
                        batch(&[("m0", 0.0), ("m1", 1.0), ("m2", 2.0), ("m3", 3.0)])
                    });
                    assert!(r.unwrap().is_ok());
                });
            }
        });
        assert_eq!(
            runs.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "all eight experiments share one machine run"
        );
        let st = c.stats();
        assert_eq!(st.hits + st.misses, 8);
        assert_eq!(st.misses, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let c = MeasurementCache::new();
        let _ = c.get_or_fill("m", "/", 7, 0, || batch(&[("m", 1.0)]));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), McacheStats::default());
    }
}
