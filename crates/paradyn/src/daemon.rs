//! The daemon wire protocol.
//!
//! §5: "The Paradyn dynamic instrumentation library sends dynamic mapping
//! information to the Paradyn daemon process using the same communication
//! channel used for performance data. The dynamic instrumentation library,
//! linked into every application program that is measured by Paradyn,
//! contains interface procedures that allow the application to describe
//! mappings while it executes. The dynamic instrumentation library sends
//! the mapping information to the Paradyn daemons, and the daemons forward
//! the mapping information to the Data Manager."
//!
//! In the original system this crossed process boundaries; here the
//! application (simulated machine) and tool share a process, but the same
//! architecture is preserved: the [`InstrLibEndpoint`] — installed as the
//! machine's [`MappingSink`] — *encodes* mapping information and metric
//! samples onto a line-oriented wire, and the [`Daemon`] decodes the stream
//! and forwards to the [`DataManager`]. Everything crossing the channel is
//! plain text, so the protocol is inspectable and versionable.

use crate::datamgr::DataManager;
use cmrts_sim::machine::{ArrayAllocInfo, MappingSink};
use cmrts_sim::{ArrayId, Distribution};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::fmt;
use std::sync::Arc;

/// A message on the daemon channel.
#[derive(Clone, Debug, PartialEq)]
pub enum DaemonMsg {
    /// An array was allocated and distributed (dynamic mapping info).
    ArrayAllocated {
        /// Run-time array id.
        id: u32,
        /// Source-level name.
        name: String,
        /// Extents.
        extents: Vec<usize>,
        /// Distribution.
        dist: Distribution,
        /// `(node, rows, elems)` subgrids.
        subgrids: Vec<(usize, usize, usize)>,
    },
    /// An array was freed.
    ArrayFreed {
        /// Run-time array id.
        id: u32,
    },
    /// A metric sample (performance data shares the channel).
    Sample {
        /// Metric display name.
        metric: String,
        /// Focus, rendered.
        focus: String,
        /// Wall tick.
        wall: u64,
        /// Sampled value.
        value: f64,
    },
}

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "daemon protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('|', "\\p").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('p') => out.push('|'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl DaemonMsg {
    /// Encodes to one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            DaemonMsg::ArrayAllocated {
                id,
                name,
                extents,
                dist,
                subgrids,
            } => {
                let ext: Vec<String> = extents.iter().map(|e| e.to_string()).collect();
                let subs: Vec<String> = subgrids
                    .iter()
                    .map(|(n, r, e)| format!("{n}:{r}:{e}"))
                    .collect();
                format!(
                    "ALLOC|{id}|{}|{}|{}|{}",
                    escape(name),
                    ext.join(","),
                    dist.name(),
                    subs.join(",")
                )
            }
            DaemonMsg::ArrayFreed { id } => format!("FREE|{id}"),
            DaemonMsg::Sample {
                metric,
                focus,
                wall,
                value,
            } => format!("SAMPLE|{}|{}|{wall}|{value}", escape(metric), escape(focus)),
        }
    }

    /// Decodes one wire line.
    pub fn decode(line: &str) -> Result<Self, ProtoError> {
        let mut parts = split_unescaped(line);
        let kind = parts
            .next()
            .ok_or_else(|| ProtoError("empty message".into()))?;
        match kind.as_str() {
            "ALLOC" => {
                let id: u32 = next_field(&mut parts, "id")?
                    .parse()
                    .map_err(|_| ProtoError("bad id".into()))?;
                let name = unescape(&next_field(&mut parts, "name")?);
                let extents = parse_list(&next_field(&mut parts, "extents")?, "extent")?;
                let dist_s = next_field(&mut parts, "dist")?;
                let dist = Distribution::parse(&dist_s)
                    .ok_or_else(|| ProtoError(format!("bad distribution '{dist_s}'")))?;
                let subs_s = next_field(&mut parts, "subgrids")?;
                let mut subgrids = Vec::new();
                for part in subs_s.split(',').filter(|p| !p.is_empty()) {
                    let mut it = part.split(':');
                    let n = parse_sub(it.next(), "node")?;
                    let r = parse_sub(it.next(), "rows")?;
                    let e = parse_sub(it.next(), "elems")?;
                    subgrids.push((n, r, e));
                }
                Ok(DaemonMsg::ArrayAllocated {
                    id,
                    name,
                    extents,
                    dist,
                    subgrids,
                })
            }
            "FREE" => {
                let id: u32 = next_field(&mut parts, "id")?
                    .parse()
                    .map_err(|_| ProtoError("bad id".into()))?;
                Ok(DaemonMsg::ArrayFreed { id })
            }
            "SAMPLE" => {
                let metric = unescape(&next_field(&mut parts, "metric")?);
                let focus = unescape(&next_field(&mut parts, "focus")?);
                let wall: u64 = next_field(&mut parts, "wall")?
                    .parse()
                    .map_err(|_| ProtoError("bad wall tick".into()))?;
                let value: f64 = next_field(&mut parts, "value")?
                    .parse()
                    .map_err(|_| ProtoError("bad value".into()))?;
                Ok(DaemonMsg::Sample {
                    metric,
                    focus,
                    wall,
                    value,
                })
            }
            other => Err(ProtoError(format!("unknown message kind '{other}'"))),
        }
    }
}

fn split_unescaped(line: &str) -> impl Iterator<Item = String> + '_ {
    // '|' separators are escaped as "\p" inside fields, so a plain split is
    // unambiguous.
    line.split('|').map(str::to_string)
}

fn next_field(
    parts: &mut impl Iterator<Item = String>,
    what: &str,
) -> Result<String, ProtoError> {
    parts
        .next()
        .ok_or_else(|| ProtoError(format!("missing field '{what}'")))
}

fn parse_list(s: &str, what: &str) -> Result<Vec<usize>, ProtoError> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.parse()
                .map_err(|_| ProtoError(format!("bad {what} '{p}'")))
        })
        .collect()
}

fn parse_sub(s: Option<&str>, what: &str) -> Result<usize, ProtoError> {
    s.ok_or_else(|| ProtoError(format!("missing subgrid {what}")))?
        .parse()
        .map_err(|_| ProtoError(format!("bad subgrid {what}")))
}

/// The application side: encodes mapping information onto the wire. Install
/// as the machine's [`MappingSink`].
pub struct InstrLibEndpoint {
    tx: Sender<String>,
}

impl MappingSink for InstrLibEndpoint {
    fn array_allocated(&self, info: &ArrayAllocInfo) {
        let msg = DaemonMsg::ArrayAllocated {
            id: info.array.0,
            name: info.name.clone(),
            extents: info.extents.clone(),
            dist: info.dist,
            subgrids: info.subgrids.clone(),
        };
        let _ = self.tx.send(msg.encode());
    }

    fn array_freed(&self, array: ArrayId) {
        let _ = self.tx.send(DaemonMsg::ArrayFreed { id: array.0 }.encode());
    }
}

impl InstrLibEndpoint {
    /// Sends a metric sample over the same channel (performance data and
    /// mapping information share the wire, as in the paper).
    pub fn send_sample(&self, metric: &str, focus: &str, wall: u64, value: f64) {
        let _ = self.tx.send(
            DaemonMsg::Sample {
                metric: metric.to_string(),
                focus: focus.to_string(),
                wall,
                value,
            }
            .encode(),
        );
    }
}

/// The tool side: decodes the stream and forwards mapping information to
/// the Data Manager; metric samples are collected for the front end.
pub struct Daemon {
    rx: Receiver<String>,
    data: Arc<DataManager>,
    samples: Vec<DaemonMsg>,
    decode_errors: Vec<ProtoError>,
}

impl Daemon {
    /// Creates a connected endpoint/daemon pair over an in-process wire.
    pub fn pair(data: Arc<DataManager>) -> (InstrLibEndpoint, Daemon) {
        let (tx, rx) = unbounded();
        (
            InstrLibEndpoint { tx },
            Daemon {
                rx,
                data,
                samples: Vec::new(),
                decode_errors: Vec::new(),
            },
        )
    }

    /// Drains the wire, forwarding mapping messages to the Data Manager.
    /// Returns how many messages were processed.
    pub fn pump(&mut self) -> usize {
        let mut n = 0;
        while let Ok(line) = self.rx.try_recv() {
            n += 1;
            match DaemonMsg::decode(&line) {
                Ok(DaemonMsg::ArrayAllocated {
                    id,
                    name,
                    extents,
                    dist,
                    subgrids,
                }) => {
                    let info = ArrayAllocInfo {
                        array: ArrayId(id),
                        name,
                        extents,
                        dist,
                        subgrids,
                    };
                    // Forward "in exactly the same way as ... static
                    // mapping information" — via the sink interface.
                    self.data.array_allocated(&info);
                }
                Ok(DaemonMsg::ArrayFreed { id }) => {
                    self.data.array_freed(ArrayId(id));
                }
                Ok(sample @ DaemonMsg::Sample { .. }) => self.samples.push(sample),
                Err(e) => self.decode_errors.push(e),
            }
        }
        n
    }

    /// Metric samples received so far.
    pub fn samples(&self) -> &[DaemonMsg] {
        &self.samples
    }

    /// Undecodable lines encountered (kept for diagnosis, never fatal).
    pub fn decode_errors(&self) -> &[ProtoError] {
        &self.decode_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmap::model::Namespace;

    #[test]
    fn alloc_roundtrip() {
        let m = DaemonMsg::ArrayAllocated {
            id: 3,
            name: "TOT".into(),
            extents: vec![64, 64],
            dist: Distribution::Block,
            subgrids: vec![(0, 16, 1024), (1, 16, 1024)],
        };
        assert_eq!(DaemonMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn sample_roundtrip_with_awkward_names() {
        let m = DaemonMsg::Sample {
            metric: "Point-to-Point Time".into(),
            focus: "CMFarrays/a|b, Machine/node#1".into(),
            wall: 12345,
            value: 0.0625,
        };
        assert_eq!(DaemonMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn free_roundtrip_and_errors() {
        let m = DaemonMsg::ArrayFreed { id: 9 };
        assert_eq!(DaemonMsg::decode(&m.encode()).unwrap(), m);
        assert!(DaemonMsg::decode("").is_err());
        assert!(DaemonMsg::decode("BOGUS|1").is_err());
        assert!(DaemonMsg::decode("ALLOC|x|A|8|block|").is_err());
        assert!(DaemonMsg::decode("SAMPLE|m|f|notanumber|1").is_err());
    }

    #[test]
    fn escape_unescape_roundtrip() {
        for s in ["plain", "with|pipe", "back\\slash", "new\nline", "\\p"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }

    #[test]
    fn daemon_forwards_to_data_manager() {
        let ns = Namespace::new();
        let dm = Arc::new(DataManager::new(ns, "CM Fortran"));
        let (endpoint, mut daemon) = Daemon::pair(dm.clone());
        endpoint.array_allocated(&ArrayAllocInfo {
            array: ArrayId(0),
            name: "A".into(),
            extents: vec![32],
            dist: Distribution::Block,
            subgrids: vec![(0, 16, 16), (1, 16, 16)],
        });
        endpoint.send_sample("Summations", "<whole program>", 10, 4.0);
        assert_eq!(daemon.pump(), 2);
        assert_eq!(dm.dynamic_arrays().len(), 1);
        assert_eq!(daemon.samples().len(), 1);
        assert!(daemon.decode_errors().is_empty());
        // Where axis gained the subregions via the wire.
        let axis = dm.render_where_axis();
        assert!(axis.contains("sub#1"), "{axis}");
    }

    #[test]
    fn machine_drives_the_wire_end_to_end() {
        // The machine's sink is the wire endpoint; the daemon forwards to
        // the data manager exactly like the direct-sink path.
        let mut tool = crate::tool::Paradyn::new(cmrts_sim::MachineConfig {
            nodes: 2,
            ..cmrts_sim::MachineConfig::default()
        });
        tool.load_source(cmf_lang::samples::FIGURE4).unwrap();
        let (endpoint, mut daemon) = Daemon::pair(tool.data().clone());
        let mut m = tool.new_machine().unwrap();
        m.set_mapping_sink(Arc::new(endpoint)); // replace direct sink
        m.run();
        let n = daemon.pump();
        assert!(n >= 2, "A and B allocations crossed the wire, got {n}");
        let axis = tool.render_where_axis();
        assert!(axis.contains("sub#0"));
    }
}
