//! The daemon wire protocol.
//!
//! §5: "The Paradyn dynamic instrumentation library sends dynamic mapping
//! information to the Paradyn daemon process using the same communication
//! channel used for performance data. The dynamic instrumentation library,
//! linked into every application program that is measured by Paradyn,
//! contains interface procedures that allow the application to describe
//! mappings while it executes. The dynamic instrumentation library sends
//! the mapping information to the Paradyn daemons, and the daemons forward
//! the mapping information to the Data Manager."
//!
//! In the original system this crossed process boundaries; here the channel
//! is a `pdmap-transport` link, so the same endpoint/daemon pair runs over
//! an in-process bounded queue or a real TCP socket with identical
//! observable behaviour. Messages ride [`FrameKind::Daemon`] frames as
//! length-prefixed binary payloads ([`WirePayload`]); the older
//! line-oriented text rendering is kept as [`DaemonMsg::encode`] /
//! [`DaemonMsg::decode`] for logs and tooling, and both codecs reject
//! malformed input instead of guessing.

use crate::datamgr::DataManager;
use cmrts_sim::machine::{ArrayAllocInfo, MappingSink};
use cmrts_sim::{ArrayId, Distribution};
use pdmap_transport::{
    send_wire, Backend, CodecError, FrameKind, Link, PayloadReader, Transport, TransportConfig,
    TransportStats, WirePayload,
};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Span sites for the daemon channel, interned once (see `pdmap-obs`).
struct DaemonObs {
    send: pdmap_obs::SpanSite,
    deliver: pdmap_obs::SpanSite,
}

fn daemon_obs() -> &'static DaemonObs {
    static OBS: OnceLock<DaemonObs> = OnceLock::new();
    OBS.get_or_init(|| DaemonObs {
        send: pdmap_obs::span_site("daemon", "send"),
        deliver: pdmap_obs::span_site("daemon", "deliver"),
    })
}

/// A message on the daemon channel.
#[derive(Clone, Debug, PartialEq)]
pub enum DaemonMsg {
    /// An array was allocated and distributed (dynamic mapping info).
    ArrayAllocated {
        /// Run-time array id.
        id: u32,
        /// Source-level name.
        name: String,
        /// Extents.
        extents: Vec<usize>,
        /// Distribution.
        dist: Distribution,
        /// `(node, rows, elems)` subgrids.
        subgrids: Vec<(usize, usize, usize)>,
    },
    /// An array was freed.
    ArrayFreed {
        /// Run-time array id.
        id: u32,
    },
    /// A metric sample (performance data shares the channel).
    Sample {
        /// Metric display name.
        metric: String,
        /// Focus, rendered.
        focus: String,
        /// Wall tick.
        wall: u64,
        /// Sampled value.
        value: f64,
    },
    /// Clock-offset probe (tool → daemon): the tool stamps its own clock
    /// and a token; the daemon must echo both back immediately. Used by
    /// multi-daemon sessions to align per-daemon `wall` stamps onto the
    /// tool clock (bounded by the probe's round trip).
    ClockProbe {
        /// Correlates a reply with its probe.
        token: u64,
        /// Tool clock (`pdmap_obs::now_ns`) at probe send.
        t_tool_ns: u64,
    },
    /// Clock-offset reply (daemon → tool): the echoed probe plus the
    /// daemon's clock at the moment it handled the probe.
    ClockReply {
        /// Token copied from the probe.
        token: u64,
        /// Tool clock copied from the probe.
        t_tool_ns: u64,
        /// Daemon clock when the probe was handled.
        t_daemon_ns: u64,
    },
    /// Graceful-shutdown request (tool → daemon): the SIGTERM-equivalent on
    /// a wire with no process signals. The daemon should stop sampling,
    /// drain, and answer with a [`DaemonMsg::Goodbye`] before exiting.
    Shutdown,
    /// Final flush frame (daemon → tool): announces how many samples the
    /// daemon sent over its lifetime, so the tool can compute the exact
    /// sample-sequence gap (`announced - received`) instead of guessing.
    Goodbye {
        /// Samples the daemon sent on this session (its side of the
        /// conservation law).
        samples_sent: u32,
    },
    /// Aggregated coverage report (relay → parent): how much of the
    /// subtree below a relay is alive and how many samples it lost. A leaf
    /// daemon never sends this; its parent derives `1/1` coverage from the
    /// link itself. Relays resend it whenever the subtree changes, so the
    /// parent composes fleet coverage from the latest report per child.
    SubtreeCoverage {
        /// Leaf daemons below this peer that are currently reporting.
        nodes_reporting: u32,
        /// Leaf daemons the subtree was configured with.
        nodes_total: u32,
        /// Samples known lost below this peer (bounded estimates included).
        samples_lost: u64,
    },
}

/// A decode failure on the daemon channel, classified so error *rates*
/// per failure mode are observable, not just totals. Every construction
/// bumps the `daemon.error.<kind>` counter in `pdmap-obs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DaemonError {
    /// A required field (or message kind) was absent.
    MissingField(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// An unrecognised distribution name.
    BadDistribution(String),
    /// An invalid escape sequence inside a text field.
    BadEscape(String),
    /// An unknown message kind or payload tag.
    UnknownKind(String),
    /// A binary payload codec failure (wrong frame kind, truncation,
    /// trailing garbage).
    Codec(String),
    /// The transport itself failed while receiving (link closed, I/O
    /// error) — distinct from a bad frame, since the *link* is at fault.
    Recv(String),
}

/// Source-compatibility alias for the pre-enum error name.
pub type ProtoError = DaemonError;

impl DaemonError {
    /// Stable lowercase variant name, used to key the per-variant error
    /// counter (`daemon.error.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            DaemonError::MissingField(_) => "missing_field",
            DaemonError::BadNumber(_) => "bad_number",
            DaemonError::BadDistribution(_) => "bad_distribution",
            DaemonError::BadEscape(_) => "bad_escape",
            DaemonError::UnknownKind(_) => "unknown_kind",
            DaemonError::Codec(_) => "codec",
            DaemonError::Recv(_) => "recv",
        }
    }

    /// The human-readable detail carried by the variant.
    pub fn detail(&self) -> &str {
        match self {
            DaemonError::MissingField(s)
            | DaemonError::BadNumber(s)
            | DaemonError::BadDistribution(s)
            | DaemonError::BadEscape(s)
            | DaemonError::UnknownKind(s)
            | DaemonError::Codec(s)
            | DaemonError::Recv(s) => s,
        }
    }
}

/// Bumps the per-variant error counter and passes the error through —
/// every `DaemonError` construction site routes here.
fn track(e: DaemonError) -> DaemonError {
    pdmap_obs::counter(&format!("daemon.error.{}", e.kind())).incr();
    e
}

/// Crate-internal alias so other modules (the multi-daemon session) route
/// their error constructions through the same counters.
pub(crate) fn track_error(e: DaemonError) -> DaemonError {
    track(e)
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "daemon protocol error ({}): {}",
            self.kind(),
            self.detail()
        )
    }
}

impl std::error::Error for DaemonError {}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('|', "\\p")
        .replace('\n', "\\n")
}

/// Inverts [`escape`]. Only `\\`, `\p` and `\n` are valid sequences; any
/// other escape — including a trailing lone backslash — is corruption and
/// is rejected rather than passed through.
fn unescape(s: &str) -> Result<String, ProtoError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('p') => out.push('|'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    return Err(track(DaemonError::BadEscape(format!(
                        "invalid escape sequence '\\{other}'"
                    ))));
                }
                None => {
                    return Err(track(DaemonError::BadEscape(
                        "trailing backslash in field".into(),
                    )));
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

impl DaemonMsg {
    /// Encodes to one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            DaemonMsg::ArrayAllocated {
                id,
                name,
                extents,
                dist,
                subgrids,
            } => {
                let ext: Vec<String> = extents.iter().map(|e| e.to_string()).collect();
                let subs: Vec<String> = subgrids
                    .iter()
                    .map(|(n, r, e)| format!("{n}:{r}:{e}"))
                    .collect();
                format!(
                    "ALLOC|{id}|{}|{}|{}|{}",
                    escape(name),
                    ext.join(","),
                    dist.name(),
                    subs.join(",")
                )
            }
            DaemonMsg::ArrayFreed { id } => format!("FREE|{id}"),
            DaemonMsg::Sample {
                metric,
                focus,
                wall,
                value,
            } => format!("SAMPLE|{}|{}|{wall}|{value}", escape(metric), escape(focus)),
            DaemonMsg::ClockProbe { token, t_tool_ns } => {
                format!("CLOCKP|{token}|{t_tool_ns}")
            }
            DaemonMsg::ClockReply {
                token,
                t_tool_ns,
                t_daemon_ns,
            } => format!("CLOCKR|{token}|{t_tool_ns}|{t_daemon_ns}"),
            DaemonMsg::Shutdown => "SHUTDOWN".to_string(),
            DaemonMsg::Goodbye { samples_sent } => format!("GOODBYE|{samples_sent}"),
            DaemonMsg::SubtreeCoverage {
                nodes_reporting,
                nodes_total,
                samples_lost,
            } => format!("COVER|{nodes_reporting}|{nodes_total}|{samples_lost}"),
        }
    }

    /// Decodes one wire line.
    pub fn decode(line: &str) -> Result<Self, ProtoError> {
        let mut parts = split_unescaped(line);
        let kind = parts
            .next()
            .ok_or_else(|| track(DaemonError::MissingField("message kind".into())))?;
        match kind.as_str() {
            "ALLOC" => {
                let id: u32 = next_field(&mut parts, "id")?
                    .parse()
                    .map_err(|_| track(DaemonError::BadNumber("id".into())))?;
                let name = unescape(&next_field(&mut parts, "name")?)?;
                let extents = parse_list(&next_field(&mut parts, "extents")?, "extent")?;
                let dist_s = next_field(&mut parts, "dist")?;
                let dist = Distribution::parse(&dist_s).ok_or_else(|| {
                    track(DaemonError::BadDistribution(format!(
                        "bad distribution '{dist_s}'"
                    )))
                })?;
                let subs_s = next_field(&mut parts, "subgrids")?;
                let mut subgrids = Vec::new();
                for part in subs_s.split(',').filter(|p| !p.is_empty()) {
                    let mut it = part.split(':');
                    let n = parse_sub(it.next(), "node")?;
                    let r = parse_sub(it.next(), "rows")?;
                    let e = parse_sub(it.next(), "elems")?;
                    subgrids.push((n, r, e));
                }
                Ok(DaemonMsg::ArrayAllocated {
                    id,
                    name,
                    extents,
                    dist,
                    subgrids,
                })
            }
            "FREE" => {
                let id: u32 = next_field(&mut parts, "id")?
                    .parse()
                    .map_err(|_| track(DaemonError::BadNumber("id".into())))?;
                Ok(DaemonMsg::ArrayFreed { id })
            }
            "SAMPLE" => {
                let metric = unescape(&next_field(&mut parts, "metric")?)?;
                let focus = unescape(&next_field(&mut parts, "focus")?)?;
                let wall: u64 = next_field(&mut parts, "wall")?
                    .parse()
                    .map_err(|_| track(DaemonError::BadNumber("wall tick".into())))?;
                let value: f64 = next_field(&mut parts, "value")?
                    .parse()
                    .map_err(|_| track(DaemonError::BadNumber("value".into())))?;
                Ok(DaemonMsg::Sample {
                    metric,
                    focus,
                    wall,
                    value,
                })
            }
            "CLOCKP" => Ok(DaemonMsg::ClockProbe {
                token: parse_u64_field(&mut parts, "token")?,
                t_tool_ns: parse_u64_field(&mut parts, "t_tool_ns")?,
            }),
            "CLOCKR" => Ok(DaemonMsg::ClockReply {
                token: parse_u64_field(&mut parts, "token")?,
                t_tool_ns: parse_u64_field(&mut parts, "t_tool_ns")?,
                t_daemon_ns: parse_u64_field(&mut parts, "t_daemon_ns")?,
            }),
            "SHUTDOWN" => Ok(DaemonMsg::Shutdown),
            "GOODBYE" => Ok(DaemonMsg::Goodbye {
                samples_sent: next_field(&mut parts, "samples_sent")?
                    .parse()
                    .map_err(|_| track(DaemonError::BadNumber("samples_sent".into())))?,
            }),
            "COVER" => Ok(DaemonMsg::SubtreeCoverage {
                nodes_reporting: next_field(&mut parts, "nodes_reporting")?
                    .parse()
                    .map_err(|_| track(DaemonError::BadNumber("nodes_reporting".into())))?,
                nodes_total: next_field(&mut parts, "nodes_total")?
                    .parse()
                    .map_err(|_| track(DaemonError::BadNumber("nodes_total".into())))?,
                samples_lost: parse_u64_field(&mut parts, "samples_lost")?,
            }),
            other => Err(track(DaemonError::UnknownKind(format!(
                "unknown message kind '{other}'"
            )))),
        }
    }
}

impl WirePayload for DaemonMsg {
    const KIND: FrameKind = FrameKind::Daemon;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        use pdmap_transport::wire::put;
        match self {
            DaemonMsg::ArrayAllocated {
                id,
                name,
                extents,
                dist,
                subgrids,
            } => {
                put::u8(out, 0);
                put::u32(out, *id);
                put::str(out, name);
                put::u32(out, extents.len() as u32);
                for &e in extents {
                    put::u64(out, e as u64);
                }
                put::str(out, dist.name());
                put::u32(out, subgrids.len() as u32);
                for &(n, r, e) in subgrids {
                    put::u64(out, n as u64);
                    put::u64(out, r as u64);
                    put::u64(out, e as u64);
                }
            }
            DaemonMsg::ArrayFreed { id } => {
                put::u8(out, 1);
                put::u32(out, *id);
            }
            DaemonMsg::Sample {
                metric,
                focus,
                wall,
                value,
            } => {
                put::u8(out, 2);
                put::str(out, metric);
                put::str(out, focus);
                put::u64(out, *wall);
                put::f64(out, *value);
            }
            DaemonMsg::ClockProbe { token, t_tool_ns } => {
                put::u8(out, 3);
                put::u64(out, *token);
                put::u64(out, *t_tool_ns);
            }
            DaemonMsg::ClockReply {
                token,
                t_tool_ns,
                t_daemon_ns,
            } => {
                put::u8(out, 4);
                put::u64(out, *token);
                put::u64(out, *t_tool_ns);
                put::u64(out, *t_daemon_ns);
            }
            DaemonMsg::Shutdown => put::u8(out, 5),
            DaemonMsg::Goodbye { samples_sent } => {
                put::u8(out, 6);
                put::u32(out, *samples_sent);
            }
            DaemonMsg::SubtreeCoverage {
                nodes_reporting,
                nodes_total,
                samples_lost,
            } => {
                put::u8(out, 7);
                put::u32(out, *nodes_reporting);
                put::u32(out, *nodes_total);
                put::u64(out, *samples_lost);
            }
        }
    }

    fn decode_payload(r: &mut PayloadReader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => {
                let id = r.u32()?;
                let name = r.str()?;
                let extents = (0..r.u32()?)
                    .map(|_| r.u64().map(|v| v as usize))
                    .collect::<Result<Vec<_>, _>>()?;
                let dist_s = r.str()?;
                let dist = Distribution::parse(&dist_s)
                    .ok_or_else(|| CodecError::new(format!("bad distribution '{dist_s}'")))?;
                let subgrids = (0..r.u32()?)
                    .map(|_| Ok((r.u64()? as usize, r.u64()? as usize, r.u64()? as usize)))
                    .collect::<Result<Vec<_>, CodecError>>()?;
                Ok(DaemonMsg::ArrayAllocated {
                    id,
                    name,
                    extents,
                    dist,
                    subgrids,
                })
            }
            1 => Ok(DaemonMsg::ArrayFreed { id: r.u32()? }),
            2 => Ok(DaemonMsg::Sample {
                metric: r.str()?,
                focus: r.str()?,
                wall: r.u64()?,
                value: r.f64()?,
            }),
            3 => Ok(DaemonMsg::ClockProbe {
                token: r.u64()?,
                t_tool_ns: r.u64()?,
            }),
            4 => Ok(DaemonMsg::ClockReply {
                token: r.u64()?,
                t_tool_ns: r.u64()?,
                t_daemon_ns: r.u64()?,
            }),
            5 => Ok(DaemonMsg::Shutdown),
            6 => Ok(DaemonMsg::Goodbye {
                samples_sent: r.u32()?,
            }),
            7 => Ok(DaemonMsg::SubtreeCoverage {
                nodes_reporting: r.u32()?,
                nodes_total: r.u32()?,
                samples_lost: r.u64()?,
            }),
            tag => Err(CodecError::new(format!("unknown DaemonMsg tag {tag}"))),
        }
    }
}

fn split_unescaped(line: &str) -> impl Iterator<Item = String> + '_ {
    // '|' separators are escaped as "\p" inside fields, so a plain split is
    // unambiguous.
    line.split('|').map(str::to_string)
}

fn next_field(parts: &mut impl Iterator<Item = String>, what: &str) -> Result<String, DaemonError> {
    parts
        .next()
        .ok_or_else(|| track(DaemonError::MissingField(format!("missing field '{what}'"))))
}

fn parse_list(s: &str, what: &str) -> Result<Vec<usize>, DaemonError> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.parse()
                .map_err(|_| track(DaemonError::BadNumber(format!("bad {what} '{p}'"))))
        })
        .collect()
}

fn parse_u64_field(
    parts: &mut impl Iterator<Item = String>,
    what: &str,
) -> Result<u64, DaemonError> {
    next_field(parts, what)?
        .parse()
        .map_err(|_| track(DaemonError::BadNumber(what.into())))
}

fn parse_sub(s: Option<&str>, what: &str) -> Result<usize, DaemonError> {
    s.ok_or_else(|| track(DaemonError::MissingField(format!("missing subgrid {what}"))))?
        .parse()
        .map_err(|_| track(DaemonError::BadNumber(format!("bad subgrid {what}"))))
}

/// The application side: encodes mapping information onto the wire. Install
/// as the machine's [`MappingSink`].
pub struct InstrLibEndpoint {
    tx: Arc<dyn Transport>,
}

impl MappingSink for InstrLibEndpoint {
    fn array_allocated(&self, info: &ArrayAllocInfo) {
        let _span = pdmap_obs::span(&daemon_obs().send);
        let msg = DaemonMsg::ArrayAllocated {
            id: info.array.0,
            name: info.name.clone(),
            extents: info.extents.clone(),
            dist: info.dist,
            subgrids: info.subgrids.clone(),
        };
        let _ = send_wire(&*self.tx, &msg);
    }

    fn array_freed(&self, array: ArrayId) {
        let _span = pdmap_obs::span(&daemon_obs().send);
        let _ = send_wire(&*self.tx, &DaemonMsg::ArrayFreed { id: array.0 });
    }
}

impl InstrLibEndpoint {
    /// Wraps an already-connected transport — how `pdmapd` builds its
    /// endpoint over the TCP server it listens on, rather than over one
    /// half of an in-process [`Link`].
    pub fn over_transport(tx: Arc<dyn Transport>) -> Self {
        Self { tx }
    }

    /// Sends any daemon-channel message, surfacing transport failures
    /// (the sink paths deliberately swallow them; process drivers that own
    /// their lifecycle want to see a dead link).
    pub fn send_msg(&self, msg: &DaemonMsg) -> Result<(), pdmap_transport::TransportError> {
        let _span = pdmap_obs::span(&daemon_obs().send);
        send_wire(&*self.tx, msg)
    }

    /// Sends a metric sample over the same channel (performance data and
    /// mapping information share the wire, as in the paper).
    pub fn send_sample(&self, metric: &str, focus: &str, wall: u64, value: f64) {
        let _span = pdmap_obs::span(&daemon_obs().send);
        let _ = send_wire(
            &*self.tx,
            &DaemonMsg::Sample {
                metric: metric.to_string(),
                focus: focus.to_string(),
                wall,
                value,
            },
        );
    }

    /// This end's transport self-metrics.
    pub fn transport_stats(&self) -> TransportStats {
        self.tx.stats()
    }
}

/// The tool side: decodes the stream and forwards mapping information to
/// the Data Manager; metric samples are collected for the front end.
pub struct Daemon {
    link: Link,
    data: Arc<DataManager>,
    samples: Vec<DaemonMsg>,
    decode_errors: Vec<ProtoError>,
}

impl Daemon {
    /// Creates a connected endpoint/daemon pair over an in-process wire
    /// (the single-process topology of the seed).
    pub fn pair(data: Arc<DataManager>) -> (InstrLibEndpoint, Daemon) {
        Self::over(Backend::InProc, data)
    }

    /// Creates a connected endpoint/daemon pair over the chosen backend
    /// with default transport configuration.
    pub fn over(backend: Backend, data: Arc<DataManager>) -> (InstrLibEndpoint, Daemon) {
        Self::over_with(backend, &TransportConfig::default(), data)
    }

    /// As [`Daemon::over`], with explicit transport configuration.
    pub fn over_with(
        backend: Backend,
        cfg: &TransportConfig,
        data: Arc<DataManager>,
    ) -> (InstrLibEndpoint, Daemon) {
        let link = backend.link(cfg);
        (
            InstrLibEndpoint {
                tx: link.client.clone(),
            },
            Daemon {
                link,
                data,
                samples: Vec::new(),
                decode_errors: Vec::new(),
            },
        )
    }

    /// Drains everything currently on the wire, forwarding mapping messages
    /// to the Data Manager. Returns how many messages were processed.
    pub fn pump(&mut self) -> usize {
        // Timed manually: pump_until polls in a tight loop, so an empty
        // pass records no span (only actual request handling is costed).
        let t0 = if pdmap_obs::enabled() {
            Some(pdmap_obs::now_ns())
        } else {
            None
        };
        let mut n = 0;
        loop {
            match self.link.server.try_recv() {
                Ok(Some(frame)) => {
                    n += 1;
                    match DaemonMsg::from_frame(&frame) {
                        Ok(msg) => self.dispatch(msg),
                        Err(e) => self.decode_errors.push(track(DaemonError::Codec(e.0))),
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // A receive failure is the *link*'s fault, not a bad
                    // frame — record it (`daemon.error.recv`) instead of
                    // exiting silently, and end only this drain pass so
                    // later pumps retry. Link errors are sticky, so dedupe
                    // consecutive repeats to keep the log bounded.
                    let err = track(DaemonError::Recv(e.to_string()));
                    if self.decode_errors.last() != Some(&err) {
                        self.decode_errors.push(err);
                    }
                    break;
                }
            }
        }
        if n > 0 {
            if let Some(t0) = t0 {
                let dur = pdmap_obs::now_ns().saturating_sub(t0);
                pdmap_obs::record_span(&daemon_obs().deliver, t0, dur);
            }
        }
        n
    }

    /// Pumps until `want` messages have been processed in total or
    /// `timeout` elapses — needed over TCP, where delivery is asynchronous.
    /// Returns the total processed during this call.
    ///
    /// Drains before ever sleeping and returns the moment `want` is met;
    /// while short, it spins on `yield_now` and then falls back to brief
    /// parks, so a message arriving right after a drain costs microseconds
    /// to notice, not a fixed multi-millisecond poll.
    pub fn pump_until(&mut self, want: usize, timeout: std::time::Duration) -> usize {
        let deadline = std::time::Instant::now() + timeout;
        let mut n = self.pump();
        let mut spins = 0u32;
        while n < want && std::time::Instant::now() < deadline {
            if spins < 64 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            let got = self.pump();
            if got > 0 {
                spins = 0; // traffic is flowing; stay in the fast path
            }
            n += got;
        }
        n
    }

    fn dispatch(&mut self, msg: DaemonMsg) {
        match msg {
            DaemonMsg::ArrayAllocated {
                id,
                name,
                extents,
                dist,
                subgrids,
            } => {
                let info = ArrayAllocInfo {
                    array: ArrayId(id),
                    name,
                    extents,
                    dist,
                    subgrids,
                };
                // Forward "in exactly the same way as ... static mapping
                // information" — via the sink interface.
                self.data.array_allocated(&info);
            }
            DaemonMsg::ArrayFreed { id } => {
                self.data.array_freed(ArrayId(id));
            }
            sample @ DaemonMsg::Sample { .. } => self.samples.push(sample),
            DaemonMsg::ClockProbe { token, t_tool_ns } => {
                // Answer on the same link so in-process daemons support the
                // multi-daemon clock handshake too.
                let _ = send_wire(
                    &*self.link.server,
                    &DaemonMsg::ClockReply {
                        token,
                        t_tool_ns,
                        t_daemon_ns: pdmap_obs::now_ns(),
                    },
                );
            }
            // A stray reply reaching a daemon (not a tool) carries no data
            // to forward; ignore it. Shutdown/Goodbye/SubtreeCoverage are
            // session-lifecycle messages the in-process daemon has no
            // lifecycle for.
            DaemonMsg::ClockReply { .. }
            | DaemonMsg::Shutdown
            | DaemonMsg::Goodbye { .. }
            | DaemonMsg::SubtreeCoverage { .. } => {}
        }
    }

    /// Metric samples received so far.
    pub fn samples(&self) -> &[DaemonMsg] {
        &self.samples
    }

    /// Undecodable frames encountered (kept for diagnosis, never fatal).
    pub fn decode_errors(&self) -> &[ProtoError] {
        &self.decode_errors
    }

    /// The daemon side's transport self-metrics.
    pub fn transport_stats(&self) -> TransportStats {
        self.link.server.stats()
    }

    /// Which backend this daemon's link runs over.
    pub fn backend_name(&self) -> &'static str {
        self.link.server.backend_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmap::model::Namespace;

    #[test]
    fn alloc_roundtrip() {
        let m = DaemonMsg::ArrayAllocated {
            id: 3,
            name: "TOT".into(),
            extents: vec![64, 64],
            dist: Distribution::Block,
            subgrids: vec![(0, 16, 1024), (1, 16, 1024)],
        };
        assert_eq!(DaemonMsg::decode(&m.encode()).unwrap(), m);
        assert_eq!(DaemonMsg::from_frame(&m.to_frame()).unwrap(), m);
    }

    #[test]
    fn sample_roundtrip_with_awkward_names() {
        let m = DaemonMsg::Sample {
            metric: "Point-to-Point Time".into(),
            focus: "CMFarrays/a|b, Machine/node#1".into(),
            wall: 12345,
            value: 0.0625,
        };
        assert_eq!(DaemonMsg::decode(&m.encode()).unwrap(), m);
        assert_eq!(DaemonMsg::from_frame(&m.to_frame()).unwrap(), m);
    }

    #[test]
    fn free_roundtrip_and_errors() {
        let m = DaemonMsg::ArrayFreed { id: 9 };
        assert_eq!(DaemonMsg::decode(&m.encode()).unwrap(), m);
        assert!(DaemonMsg::decode("").is_err());
        assert!(DaemonMsg::decode("BOGUS|1").is_err());
        assert!(DaemonMsg::decode("ALLOC|x|A|8|block|").is_err());
        assert!(DaemonMsg::decode("SAMPLE|m|f|notanumber|1").is_err());
    }

    #[test]
    fn every_error_variant_bumps_its_counter() {
        // The registry is global to the test binary, so compare before and
        // after rather than asserting absolute values.
        let get = |kind: &str| pdmap_obs::counter(&format!("daemon.error.{kind}")).get();
        let cases: &[(&str, &str)] = &[
            ("BOGUS|1", "unknown_kind"),
            ("SAMPLE|m|f|notanumber|1", "bad_number"),
            ("ALLOC|1|A|8|diagonal|", "bad_distribution"),
            ("SAMPLE|m\\q|f|1|1", "bad_escape"),
            ("SAMPLE|m|f", "missing_field"),
        ];
        for &(line, kind) in cases {
            let before = get(kind);
            let err = DaemonMsg::decode(line).unwrap_err();
            assert_eq!(err.kind(), kind, "decoding {line:?}");
            assert_eq!(get(kind), before + 1, "counter for {kind}");
            assert!(err.to_string().contains(kind), "{err}");
        }
    }

    #[test]
    fn escape_unescape_roundtrip() {
        for s in ["plain", "with|pipe", "back\\slash", "new\nline", "\\p", ""] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
    }

    #[test]
    fn unescape_rejects_malformed_input() {
        // Unknown escape sequences are corruption, not literals.
        assert!(unescape("bad\\q").is_err());
        assert!(unescape("\\x41").is_err());
        // A trailing lone backslash can never be produced by `escape`.
        assert!(unescape("trailing\\").is_err());
        assert!(unescape("\\").is_err());
        // And the errors surface through full-message decoding.
        assert!(DaemonMsg::decode("SAMPLE|bad\\q|f|1|1.0").is_err());
        assert!(DaemonMsg::decode("SAMPLE|m|trailing\\|1|1.0").is_err());
        assert!(DaemonMsg::decode("ALLOC|1|bad\\z|8|block|").is_err());
    }

    #[test]
    fn binary_codec_rejects_corrupt_payloads() {
        let m = DaemonMsg::ArrayFreed { id: 1 };
        let mut frame = m.to_frame();
        frame.payload[0] = 77; // unknown tag
        assert!(DaemonMsg::from_frame(&frame).is_err());
        let mut frame = m.to_frame();
        frame.payload.push(0); // trailing garbage
        assert!(DaemonMsg::from_frame(&frame).is_err());
        let frame = pdmap_transport::Frame::data(FrameKind::Daemon, vec![0, 1]); // truncated
        assert!(DaemonMsg::from_frame(&frame).is_err());
    }

    #[test]
    fn clock_messages_roundtrip_both_codecs() {
        let probe = DaemonMsg::ClockProbe {
            token: 7,
            t_tool_ns: 123,
        };
        let reply = DaemonMsg::ClockReply {
            token: 7,
            t_tool_ns: 123,
            t_daemon_ns: 456,
        };
        for m in [probe, reply] {
            assert_eq!(DaemonMsg::decode(&m.encode()).unwrap(), m);
            assert_eq!(DaemonMsg::from_frame(&m.to_frame()).unwrap(), m);
        }
        assert!(DaemonMsg::decode("CLOCKP|x|1").is_err());
        assert!(DaemonMsg::decode("CLOCKR|1|2").is_err());
    }

    #[test]
    fn lifecycle_messages_roundtrip_both_codecs() {
        for m in [
            DaemonMsg::Shutdown,
            DaemonMsg::Goodbye { samples_sent: 42 },
            DaemonMsg::SubtreeCoverage {
                nodes_reporting: 7,
                nodes_total: 8,
                samples_lost: 12_000,
            },
        ] {
            assert_eq!(DaemonMsg::decode(&m.encode()).unwrap(), m);
            assert_eq!(DaemonMsg::from_frame(&m.to_frame()).unwrap(), m);
        }
        assert!(DaemonMsg::decode("GOODBYE|x").is_err());
        assert!(DaemonMsg::decode("GOODBYE").is_err());
        assert!(DaemonMsg::decode("COVER|1|2").is_err());
        assert!(DaemonMsg::decode("COVER|x|2|0").is_err());
    }

    #[test]
    fn daemon_answers_clock_probes_on_the_same_link() {
        let dm = Arc::new(DataManager::new(Namespace::new(), "CM Fortran"));
        let (endpoint, mut daemon) = Daemon::pair(dm);
        endpoint
            .send_msg(&DaemonMsg::ClockProbe {
                token: 42,
                t_tool_ns: 5,
            })
            .unwrap();
        assert_eq!(daemon.pump(), 1);
        let mut got = None;
        for _ in 0..1000 {
            if let Ok(Some(m)) = pdmap_transport::recv_wire::<DaemonMsg>(&*endpoint.tx) {
                got = Some(m);
                break;
            }
            std::thread::yield_now();
        }
        match got {
            Some(DaemonMsg::ClockReply {
                token: 42,
                t_tool_ns: 5,
                t_daemon_ns,
            }) => assert!(t_daemon_ns > 0),
            other => panic!("expected clock reply, got {other:?}"),
        }
        // Probes never pollute the sample stream.
        assert!(daemon.samples().is_empty());
    }

    #[test]
    fn pump_records_receive_errors_and_keeps_working() {
        let dm = Arc::new(DataManager::new(Namespace::new(), "CM Fortran"));
        let (_endpoint, mut daemon) = Daemon::pair(dm);
        let before = pdmap_obs::counter("daemon.error.recv").get();
        daemon.link.server.close();
        daemon.pump();
        assert_eq!(daemon.decode_errors().len(), 1, "error recorded, not lost");
        assert!(matches!(daemon.decode_errors()[0], DaemonError::Recv(_)));
        assert_eq!(pdmap_obs::counter("daemon.error.recv").get(), before + 1);
        // Pumping again still works and does not balloon the error log with
        // the same sticky failure (the counter keeps counting occurrences).
        daemon.pump();
        assert_eq!(daemon.decode_errors().len(), 1);
        assert_eq!(pdmap_obs::counter("daemon.error.recv").get(), before + 2);
    }

    #[test]
    fn pump_until_returns_as_soon_as_want_is_met() {
        let dm = Arc::new(DataManager::new(Namespace::new(), "CM Fortran"));
        let (endpoint, mut daemon) = Daemon::pair(dm);
        for i in 0..4 {
            endpoint.send_sample("M", "/", i, 0.0);
        }
        let t0 = std::time::Instant::now();
        let n = daemon.pump_until(4, std::time::Duration::from_secs(5));
        assert_eq!(n, 4);
        // Everything was already queued: no sleep cycle should be paid.
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(50),
            "took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn daemon_forwards_to_data_manager() {
        let ns = Namespace::new();
        let dm = Arc::new(DataManager::new(ns, "CM Fortran"));
        let (endpoint, mut daemon) = Daemon::pair(dm.clone());
        endpoint.array_allocated(&ArrayAllocInfo {
            array: ArrayId(0),
            name: "A".into(),
            extents: vec![32],
            dist: Distribution::Block,
            subgrids: vec![(0, 16, 16), (1, 16, 16)],
        });
        endpoint.send_sample("Summations", "<whole program>", 10, 4.0);
        assert_eq!(daemon.pump(), 2);
        assert_eq!(dm.dynamic_arrays().len(), 1);
        assert_eq!(daemon.samples().len(), 1);
        assert!(daemon.decode_errors().is_empty());
        assert_eq!(daemon.transport_stats().frames_received, 2);
        assert_eq!(endpoint.transport_stats().frames_sent, 2);
        // Where axis gained the subregions via the wire.
        let axis = dm.render_where_axis();
        assert!(axis.contains("sub#1"), "{axis}");
    }

    #[test]
    fn machine_drives_the_wire_end_to_end() {
        // The machine's sink is the wire endpoint; the daemon forwards to
        // the data manager exactly like the direct-sink path.
        let mut tool = crate::tool::Paradyn::new(cmrts_sim::MachineConfig {
            nodes: 2,
            ..cmrts_sim::MachineConfig::default()
        });
        tool.load_source(cmf_lang::samples::FIGURE4).unwrap();
        let (endpoint, mut daemon) = Daemon::pair(tool.data().clone());
        let mut m = tool.new_machine().unwrap();
        m.set_mapping_sink(Arc::new(endpoint)); // replace direct sink
        m.run();
        let n = daemon.pump();
        assert!(n >= 2, "A and B allocations crossed the wire, got {n}");
        let axis = tool.render_where_axis();
        assert!(axis.contains("sub#0"));
    }

    #[test]
    fn daemon_runs_identically_over_tcp() {
        let ns = Namespace::new();
        let dm = Arc::new(DataManager::new(ns, "CM Fortran"));
        let (endpoint, mut daemon) = Daemon::over(Backend::Tcp, dm.clone());
        assert_eq!(daemon.backend_name(), "tcp-server");
        endpoint.array_allocated(&ArrayAllocInfo {
            array: ArrayId(0),
            name: "A".into(),
            extents: vec![32],
            dist: Distribution::Block,
            subgrids: vec![(0, 16, 16), (1, 16, 16)],
        });
        endpoint.send_sample("Summations", "<whole program>", 10, 4.0);
        let n = daemon.pump_until(2, std::time::Duration::from_secs(5));
        assert_eq!(n, 2);
        assert_eq!(dm.dynamic_arrays().len(), 1);
        assert_eq!(daemon.samples().len(), 1);
        assert!(daemon.decode_errors().is_empty());
    }
}
