//! Sampled metric streams.
//!
//! §5: Paradyn "sends a stream of performance measurements back to the
//! user". The simulator is synchronous, so sampling piggybacks on the
//! machine's step observer: after every control-processor step the sampler
//! reads each outstanding metric request and appends `(wall tick, value)`.

use crate::metrics::MetricRequest;
use cmrts_sim::{Machine, RunSummary};

/// A sampled time series for one metric-focus pair.
#[derive(Clone, Debug, Default)]
pub struct Stream {
    /// Metric display name.
    pub metric: String,
    /// Focus rendered as text.
    pub focus: String,
    /// Unit string.
    pub units: String,
    /// `(wall tick, cumulative value)` samples.
    pub samples: Vec<(u64, f64)>,
}

impl Stream {
    /// The final (cumulative) value.
    pub fn last_value(&self) -> f64 {
        self.samples.last().map(|&(_, v)| v).unwrap_or(0.0)
    }

    /// Per-interval deltas between consecutive samples.
    pub fn deltas(&self) -> Vec<(u64, f64)> {
        self.samples
            .windows(2)
            .map(|w| (w[1].0, w[1].1 - w[0].1))
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Drives a machine while sampling a set of metric requests every
/// `every_steps` control-processor steps. Returns one [`Stream`] per
/// request plus the run summary.
pub fn run_sampled(
    machine: &mut Machine,
    requests: &[MetricRequest],
    every_steps: usize,
) -> (Vec<Stream>, RunSummary) {
    let every = every_steps.max(1);
    let mut streams: Vec<Stream> = requests
        .iter()
        .map(|r| Stream {
            metric: r.decl.name.clone(),
            focus: r.focus.to_string(),
            units: r.decl.units.to_string(),
            samples: Vec::new(),
        })
        .collect();
    let total_steps = machine.program().steps.len();
    let summary = machine.run_with(|m, step| {
        if step % every == 0 || step + 1 == total_steps {
            let t = m.wall_clock();
            for (s, r) in streams.iter_mut().zip(requests) {
                s.samples.push((t, r.value(m)));
            }
        }
    });
    (streams, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datamgr::DataManager;
    use crate::metrics::MetricManager;
    use cmrts_sim::MachineConfig;
    use dyninst_sim::InstrumentationManager;
    use pdmap::hierarchy::Focus;
    use pdmap::model::Namespace;
    use std::sync::Arc;

    #[test]
    fn sampled_stream_is_cumulative_and_monotone() {
        let ns = Namespace::new();
        let mgr = Arc::new(InstrumentationManager::new());
        let compiled = cmf_lang::compile(
            cmf_lang::samples::ALL_VERBS,
            &ns,
            &cmf_lang::CompileOptions::default(),
        )
        .unwrap();
        let dm = DataManager::new(ns.clone(), "CM Fortran");
        dm.import_pif(&compiled.pif).unwrap();
        dm.ensure_machine(4);
        let mm = MetricManager::new(mgr.clone());
        let reqs = vec![
            mm.request(
                "Point-to-Point Operations",
                &dm,
                &Focus::whole_program(),
                1e9,
            )
            .unwrap(),
            mm.request("Node Activations", &dm, &Focus::whole_program(), 1e9)
                .unwrap(),
        ];
        let mut m = cmrts_sim::Machine::new(
            MachineConfig {
                nodes: 4,
                ..MachineConfig::default()
            },
            ns,
            mgr,
            compiled.program().clone(),
        )
        .unwrap();
        let (streams, summary) = run_sampled(&mut m, &reqs, 1);
        assert_eq!(streams.len(), 2);
        for s in &streams {
            assert!(s.len() > 2);
            assert!(
                s.samples.windows(2).all(|w| w[1].1 >= w[0].1),
                "cumulative metric must be monotone: {}",
                s.metric
            );
            assert!(s.samples.windows(2).all(|w| w[1].0 >= w[0].0));
        }
        assert_eq!(
            streams[0].last_value(),
            summary.messages as f64,
            "stream total equals ground truth"
        );
        let deltas = streams[0].deltas();
        assert!(!deltas.is_empty());
    }
}
