//! Sampled metric streams.
//!
//! §5: Paradyn "sends a stream of performance measurements back to the
//! user". The simulator is synchronous, so sampling piggybacks on the
//! machine's step observer: after every control-processor step the sampler
//! reads each outstanding metric request and appends `(wall tick, value)`.

use crate::metrics::MetricRequest;
use cmrts_sim::{Machine, RunSummary};

/// A sampled time series for one metric-focus pair.
#[derive(Clone, Debug, Default)]
pub struct Stream {
    /// Metric display name.
    pub metric: String,
    /// Focus rendered as text.
    pub focus: String,
    /// Unit string.
    pub units: String,
    /// `(wall tick, cumulative value)` samples.
    pub samples: Vec<(u64, f64)>,
}

impl Stream {
    /// The final (cumulative) value.
    pub fn last_value(&self) -> f64 {
        self.samples.last().map(|&(_, v)| v).unwrap_or(0.0)
    }

    /// Per-interval deltas between consecutive samples.
    pub fn deltas(&self) -> Vec<(u64, f64)> {
        self.samples
            .windows(2)
            .map(|w| (w[1].0, w[1].1 - w[0].1))
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Drives a machine while sampling a set of metric requests every
/// `every_steps` control-processor steps. Returns one [`Stream`] per
/// request plus the run summary.
pub fn run_sampled(
    machine: &mut Machine,
    requests: &[MetricRequest],
    every_steps: usize,
) -> (Vec<Stream>, RunSummary) {
    let every = every_steps.max(1);
    let mut streams: Vec<Stream> = requests
        .iter()
        .map(|r| Stream {
            metric: r.decl.name.clone(),
            focus: r.focus.to_string(),
            units: r.decl.units.to_string(),
            samples: Vec::new(),
        })
        .collect();
    let total_steps = machine.program().steps.len();
    let summary = machine.run_with(|m, step| {
        if step % every == 0 || step + 1 == total_steps {
            let t = m.wall_clock();
            for (s, r) in streams.iter_mut().zip(requests) {
                s.samples.push((t, r.value(m)));
            }
        }
    });
    (streams, summary)
}

/// Drives a machine while sampling at an interval governed by an
/// [`pdmap_obs::AdaptiveSampler`] — the ROADMAP's backpressure-aware
/// sampling. `drops` reads the current cumulative transport drop count
/// (e.g. `DistributedSas::transport_stats().drops`); at every sample the
/// sampler observes it and, when drops are rising, multiplicatively
/// lengthens the interval so the tool sheds its own load instead of
/// dropping frames blindly. When the link is clean the interval creeps
/// back down additively.
///
/// The returned streams have the same shape as [`run_sampled`]'s, but the
/// spacing between samples varies with transport health.
pub fn run_sampled_adaptive(
    machine: &mut Machine,
    requests: &[MetricRequest],
    sampler: &mut pdmap_obs::AdaptiveSampler,
    mut drops: impl FnMut(&Machine) -> u64,
) -> (Vec<Stream>, RunSummary) {
    let mut streams: Vec<Stream> = requests
        .iter()
        .map(|r| Stream {
            metric: r.decl.name.clone(),
            focus: r.focus.to_string(),
            units: r.decl.units.to_string(),
            samples: Vec::new(),
        })
        .collect();
    let total_steps = machine.program().steps.len();
    let mut next_sample = 0usize;
    let summary = machine.run_with(|m, step| {
        if step >= next_sample || step + 1 == total_steps {
            let interval = sampler.observe_drops(drops(m));
            let t = m.wall_clock();
            for (s, r) in streams.iter_mut().zip(requests) {
                s.samples.push((t, r.value(m)));
            }
            // A backed-off sampler can return an interval near u64::MAX;
            // saturate instead of overflowing past the end of the run.
            next_sample =
                step.saturating_add(usize::try_from(interval).unwrap_or(usize::MAX).max(1));
        }
    });
    (streams, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datamgr::DataManager;
    use crate::metrics::MetricManager;
    use cmrts_sim::MachineConfig;
    use dyninst_sim::InstrumentationManager;
    use pdmap::hierarchy::Focus;
    use pdmap::model::Namespace;
    use std::sync::Arc;

    #[test]
    fn sampled_stream_is_cumulative_and_monotone() {
        let ns = Namespace::new();
        let mgr = Arc::new(InstrumentationManager::new());
        let compiled = cmf_lang::compile(
            cmf_lang::samples::ALL_VERBS,
            &ns,
            &cmf_lang::CompileOptions::default(),
        )
        .unwrap();
        let dm = DataManager::new(ns.clone(), "CM Fortran");
        dm.import_pif(&compiled.pif).unwrap();
        dm.ensure_machine(4);
        let mm = MetricManager::new(mgr.clone());
        let reqs = vec![
            mm.request(
                "Point-to-Point Operations",
                &dm,
                &Focus::whole_program(),
                1e9,
            )
            .unwrap(),
            mm.request("Node Activations", &dm, &Focus::whole_program(), 1e9)
                .unwrap(),
        ];
        let mut m = cmrts_sim::Machine::new(
            MachineConfig {
                nodes: 4,
                ..MachineConfig::default()
            },
            ns,
            mgr,
            compiled.program().clone(),
        )
        .unwrap();
        let (streams, summary) = run_sampled(&mut m, &reqs, 1);
        assert_eq!(streams.len(), 2);
        for s in &streams {
            assert!(s.len() > 2);
            assert!(
                s.samples.windows(2).all(|w| w[1].1 >= w[0].1),
                "cumulative metric must be monotone: {}",
                s.metric
            );
            assert!(s.samples.windows(2).all(|w| w[1].0 >= w[0].0));
        }
        assert_eq!(
            streams[0].last_value(),
            summary.messages as f64,
            "stream total equals ground truth"
        );
        let deltas = streams[0].deltas();
        assert!(!deltas.is_empty());
    }

    fn adaptive_fixture() -> (Vec<MetricRequest>, cmrts_sim::Machine) {
        let ns = Namespace::new();
        let mgr = Arc::new(InstrumentationManager::new());
        let compiled = cmf_lang::compile(
            cmf_lang::samples::ALL_VERBS,
            &ns,
            &cmf_lang::CompileOptions::default(),
        )
        .unwrap();
        let dm = DataManager::new(ns.clone(), "CM Fortran");
        dm.import_pif(&compiled.pif).unwrap();
        dm.ensure_machine(4);
        let mm = MetricManager::new(mgr.clone());
        let reqs = vec![mm
            .request(
                "Point-to-Point Operations",
                &dm,
                &Focus::whole_program(),
                1e9,
            )
            .unwrap()];
        let m = cmrts_sim::Machine::new(
            MachineConfig {
                nodes: 4,
                ..MachineConfig::default()
            },
            ns,
            mgr,
            compiled.program().clone(),
        )
        .unwrap();
        (reqs, m)
    }

    #[test]
    fn adaptive_sampling_backs_off_under_drops_and_stays_dense_when_clean() {
        use pdmap_obs::{AdaptiveSampler, SamplerConfig};
        let cfg = SamplerConfig {
            base_interval: 1,
            max_interval: 64,
            increase_factor: 2,
            decrease_step: 1,
        };

        // A clean link: drops never move, so the interval stays at base
        // and every step is sampled.
        let (reqs, mut clean_machine) = adaptive_fixture();
        let mut clean_sampler = AdaptiveSampler::new(cfg);
        let (clean_streams, clean_summary) =
            run_sampled_adaptive(&mut clean_machine, &reqs, &mut clean_sampler, |_| 0);
        assert_eq!(clean_sampler.interval(), 1);
        assert_eq!(
            clean_streams[0].last_value(),
            clean_summary.messages as f64,
            "final sample still equals ground truth"
        );

        // A degrading link: drops rise on every observation, so the
        // interval lengthens multiplicatively and far fewer samples land.
        let (reqs, mut lossy_machine) = adaptive_fixture();
        let mut lossy_sampler = AdaptiveSampler::new(cfg);
        let mut fake_drops = 0u64;
        let (lossy_streams, lossy_summary) =
            run_sampled_adaptive(&mut lossy_machine, &reqs, &mut lossy_sampler, |_| {
                fake_drops += 10;
                fake_drops
            });
        assert!(lossy_sampler.interval() > 1);
        assert!(
            lossy_streams[0].len() < clean_streams[0].len(),
            "rising drops must thin the stream: {} vs {}",
            lossy_streams[0].len(),
            clean_streams[0].len()
        );
        assert_eq!(
            lossy_streams[0].last_value(),
            lossy_summary.messages as f64,
            "the last step is always sampled, so totals survive back-off"
        );
    }

    #[test]
    fn adaptive_sampling_survives_a_maximally_backed_off_interval() {
        // A sampler pinned at u64::MAX used to overflow `step + interval`
        // when computing the next sample index; it must saturate instead,
        // sampling only the first and last steps.
        use pdmap_obs::{AdaptiveSampler, SamplerConfig};
        let (reqs, mut machine) = adaptive_fixture();
        let mut sampler = AdaptiveSampler::new(SamplerConfig {
            base_interval: u64::MAX,
            max_interval: u64::MAX,
            increase_factor: 2,
            decrease_step: 1,
        });
        let (streams, summary) = run_sampled_adaptive(&mut machine, &reqs, &mut sampler, |_| 0);
        assert_eq!(
            streams[0].len(),
            2,
            "only the first and final steps sample at an infinite interval"
        );
        assert_eq!(
            streams[0].last_value(),
            summary.messages as f64,
            "the forced final sample still carries the ground-truth total"
        );
    }
}
