//! # pdmap-obs — the tool stack observing itself
//!
//! The paper argues that low-level events only become useful once mapped
//! to high-level constructs, and that the instrumentation's own
//! perturbation must be measured (§5). This crate applies both points to
//! the reproduction itself: the transport, daemon, SAS and data manager
//! record **spans** (enter/exit intervals), **counters** and
//! **histograms** here, and the collected data is exposed back through
//! the very Noun-Verb machinery the tool offers applications (see
//! `pdmap-paradyn`'s `selfmap` module) as well as a Chrome `trace_event`
//! JSON exporter and a plain-text summary.
//!
//! Design constraints, in order:
//!
//! 1. **Never stop a writer.** Recording is lock-free (atomics only);
//!    snapshots read counters/histograms with relaxed loads and span
//!    rings through per-slot seqlocks, discarding records caught
//!    mid-write.
//! 2. **Known cost.** A span is two clock reads plus a handful of relaxed
//!    atomic ops; [`report::calibrate_null_span_ns`] measures that cost
//!    at runtime and [`report::PerturbationReport`] subtracts
//!    `null_cost × span_count` from reported totals — the paper's
//!    perturbation accounting, applied to ourselves.
//! 3. **Zero dependencies.** `std` only, no unsafe code.
//!
//! The [`sampler`] module closes the loop from observation back to
//! behaviour: an MIAD controller lengthens the sampling interval while
//! `TransportStats.drops` is rising and relaxes it after clean windows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod sampler;
pub mod span;
pub mod trace;

pub use clock::now_ns;
pub use metrics::{
    bucket_hi, bucket_lo, bucket_of, Counter, Histogram, HistogramSnapshot, BUCKETS,
};
pub use registry::{
    counter, enabled, histogram, set_enabled, site_name, snapshot, span_site, ObsSnapshot,
    KNOWN_SITES,
};
pub use report::{calibrate_null_span_ns, perturbation_report, summary_text, PerturbationReport};
pub use sampler::{AdaptiveSampler, SamplerConfig, SamplerWindow};
pub use span::{record_span, span, SiteId, SiteSnapshot, SpanEvent, SpanGuard, SpanSite};
pub use trace::{
    chrome_trace_json, fleet_chrome_trace, named_spans, parse_span_dump, span_dump, NamedSpan,
    ProcessSpans, SpanDump,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_span_to_trace() {
        let site = span_site("test/lib", "send");
        for i in 0..5u64 {
            record_span(&site, i * 1_000, 400);
        }
        let snap = snapshot();
        assert!(snap.span_count() >= 5);
        let json = chrome_trace_json(&snap);
        assert!(json.contains("test/lib send"));
        let text = summary_text(&snap);
        assert!(text.contains("test/lib"));
        let report = PerturbationReport::from_snapshot(&snap, 10);
        assert!(report.span_count >= 5);
    }
}
