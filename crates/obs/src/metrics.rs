//! Named counters and log2-bucketed latency histograms.
//!
//! Both are plain atomics: recording is lock-free and wait-free, and a
//! snapshot is just a relaxed load of every cell — writers are never
//! stopped, so a snapshot taken mid-burst is approximate in the same way
//! the transport's [`StatsCell`](../../pdmap_transport/stats/struct.StatsCell.html)
//! snapshots are.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i - 1]`, so `u64::MAX` lands
/// in bucket 64.
pub const BUCKETS: usize = 65;

/// Returns the bucket index for a value.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket (`0` for bucket 0, else `2^(i-1)`).
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of a bucket.
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing named event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free histogram with power-of-two buckets, plus exact count, sum,
/// min and max. Built for latencies in nanoseconds but unit-agnostic.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy. Writers are not stopped, so totals may trail
    /// bucket counts by in-flight updates; never torn per cell.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wraps on overflow; latencies in ns
    /// would need ~584 years of recorded time to wrap).
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket holding the `q`-th observation, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// The difference `self - earlier`, for windowed measurements over a
    /// shared histogram (e.g. one bench cell). Saturates at zero so a
    /// mismatched pair cannot underflow.
    pub fn minus(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i]));
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            // min/max cannot be windowed from totals; keep the later view.
            min: self.min,
            max: self.max,
        }
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_zero_one_max() {
        // The three edge values the bucketing must place exactly.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Boundaries between buckets.
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 63) - 1), 63);
        assert_eq!(bucket_of(1 << 63), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_of(bucket_hi(i)), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn histogram_records_edges() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // 0 + 1 + MAX wraps the sum; count is exact regardless.
        assert_eq!(s.sum, 0u64.wrapping_add(1).wrapping_add(u64::MAX));
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket 4 (8..=15)
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10 (512..=1023)
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 15);
        assert_eq!(s.quantile(0.99), 1000); // clamped to observed max
        assert_eq!(s.mean(), (90 * 10 + 10 * 1000) / 100);
        assert_eq!(s.quantile(0.0), 15); // first observation's bucket
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn minus_gives_window() {
        let h = Histogram::new();
        h.record(5);
        let before = h.snapshot();
        h.record(5);
        h.record(7);
        let win = h.snapshot().minus(&before);
        assert_eq!(win.count, 2);
        assert_eq!(win.sum, 12);
        assert_eq!(win.buckets[bucket_of(5)], 2);
    }

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }
}
