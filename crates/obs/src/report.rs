//! Plain-text summary and perturbation self-report.
//!
//! The paper's §5 argument: instrumentation cost must itself be measured
//! and accounted for, or the mapped performance data lies about the
//! program it perturbed. We estimate the fixed cost of one span by
//! timing a batch of null spans (enter immediately followed by exit) at a
//! calibration site, then model total overhead as
//! `null_span_ns × span_count` and subtract it from the reported totals.

use crate::clock::now_ns;
use crate::registry::{snapshot, span_site, ObsSnapshot};
use crate::span::span;

/// Site used by [`calibrate_null_span_ns`]; excluded from perturbation
/// math so calibration does not inflate the overhead it measures.
pub const CALIBRATION_COMPONENT: &str = "obs";
/// Verb of the calibration site.
pub const CALIBRATION_VERB: &str = "calibrate";

/// Measures the fixed cost of recording one span by timing `rounds`
/// back-to-back null spans at the `obs`/`calibrate` site. Returns the
/// mean cost in ns (at least 1).
pub fn calibrate_null_span_ns(rounds: u32) -> u64 {
    let rounds = rounds.max(1);
    let site = span_site(CALIBRATION_COMPONENT, CALIBRATION_VERB);
    let start = now_ns();
    for _ in 0..rounds {
        let _g = span(&site);
    }
    let elapsed = now_ns().saturating_sub(start);
    (elapsed / rounds as u64).max(1)
}

/// The perturbation model applied to one snapshot: estimated recording
/// overhead versus total reported span time.
#[derive(Clone, Copy, Debug)]
pub struct PerturbationReport {
    /// Calibrated cost of one null span, ns.
    pub null_span_ns: u64,
    /// Spans included in the model (calibration spans excluded).
    pub span_count: u64,
    /// Modelled total overhead: `null_span_ns × span_count`.
    pub overhead_ns: u64,
    /// Total reported span time (calibration excluded), ns.
    pub total_reported_ns: u64,
    /// Reported time with the modelled overhead subtracted.
    pub corrected_total_ns: u64,
}

impl PerturbationReport {
    /// Builds the report from a snapshot and a calibrated null-span cost,
    /// excluding the calibration site itself.
    pub fn from_snapshot(snap: &ObsSnapshot, null_span_ns: u64) -> Self {
        let mut span_count = 0u64;
        let mut total_reported_ns = 0u64;
        for s in &snap.sites {
            if s.component == CALIBRATION_COMPONENT && s.verb == CALIBRATION_VERB {
                continue;
            }
            span_count += s.count;
            total_reported_ns += s.total_ns;
        }
        let overhead_ns = null_span_ns.saturating_mul(span_count);
        Self {
            null_span_ns,
            span_count,
            overhead_ns,
            total_reported_ns,
            corrected_total_ns: total_reported_ns.saturating_sub(overhead_ns),
        }
    }

    /// Overhead as a fraction of total reported time (0.0 when nothing
    /// was reported).
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_reported_ns == 0 {
            0.0
        } else {
            self.overhead_ns as f64 / self.total_reported_ns as f64
        }
    }

    /// One-line rendering for logs and bench JSON footers.
    pub fn summary_line(&self) -> String {
        format!(
            "perturbation: {} spans x {} ns = {} ns overhead ({:.2}% of {} ns reported; corrected {} ns)",
            self.span_count,
            self.null_span_ns,
            self.overhead_ns,
            self.overhead_fraction() * 100.0,
            self.total_reported_ns,
            self.corrected_total_ns,
        )
    }
}

/// Calibrates with a default round count and reports on a fresh
/// snapshot. Convenience for binaries.
pub fn perturbation_report() -> PerturbationReport {
    let null = calibrate_null_span_ns(1024);
    PerturbationReport::from_snapshot(&snapshot(), null)
}

/// Renders the snapshot as a human-readable multi-line summary: one row
/// per site (count, total, mean, p50/p99), then counters, then
/// histograms, then ring statistics.
pub fn summary_text(snap: &ObsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "obs summary @ {} ns ({} threads, {} spans, {} dropped from rings)\n",
        snap.taken_ns,
        snap.threads,
        snap.span_count(),
        snap.spans_dropped
    ));
    out.push_str("sites:\n");
    for s in &snap.sites {
        if s.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "  {:<24} {:<10} count={:<8} total={} ns mean={} ns p50={} ns p99={} ns\n",
            s.component,
            s.verb,
            s.count,
            s.total_ns,
            s.hist.mean(),
            s.hist.quantile(0.5),
            s.hist.quantile(0.99),
        ));
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<40} {v}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snap.histograms {
            if h.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "  {:<40} count={:<8} mean={} p50={} p99={} max={}\n",
                name,
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::record_span;

    #[test]
    fn calibration_returns_positive_cost() {
        let c = calibrate_null_span_ns(256);
        assert!(c >= 1);
        // Calibration spans land on the excluded site.
        let snap = snapshot();
        let cal = snap.site(CALIBRATION_COMPONENT, CALIBRATION_VERB).unwrap();
        assert!(cal.count >= 256);
    }

    #[test]
    fn report_excludes_calibration_and_subtracts() {
        let site = span_site("test/report", "send");
        // 100 spans of 1 ms each dwarf any realistic null-span cost.
        for i in 0..100 {
            record_span(&site, i * 2_000_000, 1_000_000);
        }
        let snap = snapshot();
        let r = PerturbationReport::from_snapshot(&snap, 50);
        assert!(r.span_count >= 100);
        assert_eq!(r.overhead_ns, 50 * r.span_count);
        assert!(r.total_reported_ns >= 100 * 1_000_000);
        assert_eq!(
            r.corrected_total_ns,
            r.total_reported_ns - r.overhead_ns,
            "correction subtracts the modelled overhead"
        );
        assert!(
            r.overhead_fraction() < 0.10,
            "coarse spans keep overhead low"
        );
        assert!(r.summary_line().contains("perturbation:"));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = PerturbationReport::from_snapshot(&ObsSnapshot::default(), 100);
        assert_eq!(r.span_count, 0);
        assert_eq!(r.overhead_fraction(), 0.0);
        assert_eq!(r.corrected_total_ns, 0);
    }

    #[test]
    fn summary_text_lists_active_sites() {
        let site = span_site("test/summary", "deliver");
        record_span(&site, 0, 500);
        let text = summary_text(&snapshot());
        assert!(text.contains("test/summary"));
        assert!(text.contains("deliver"));
        assert!(text.contains("obs summary @"));
    }
}
