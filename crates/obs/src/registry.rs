//! The process-wide observability registry.
//!
//! The registry interns span sites, named counters and histograms, and
//! keeps a list of every thread's span ring. Interning takes a lock, but
//! call sites are expected to cache the returned handles (`SpanSite`,
//! `Arc<Counter>`, `Arc<Histogram>`) in a `OnceLock`, so the hot
//! recording paths never touch the registry again.
//!
//! [`snapshot`] copies everything out without stopping writers: counters
//! and histograms are relaxed atomic loads, and span rings are read
//! through their per-slot seqlocks.

use crate::clock::now_ns;
use crate::metrics::{Counter, Histogram, HistogramSnapshot};
use crate::span::{SiteId, SiteSnapshot, SpanEvent, SpanRing, SpanSite, DEFAULT_RING_CAPACITY};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Locks a registry table, recovering from poisoning. A panic while a
/// holder had the lock leaves only interned handles and counters behind —
/// never a torn invariant — so observability must keep working instead of
/// cascading the panic into every later span or counter call.
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The span sites the tool stack instruments, as `(component, verb)`
/// pairs. Components double as NV nouns and verbs as NV verbs in the
/// `OBS_MDL` self-mapping (see `pdmap-paradyn`'s `selfmap` module).
pub const KNOWN_SITES: &[(&str, &str)] = &[
    ("transport/inproc", "send"),
    ("transport/inproc", "deliver"),
    ("transport/tcp", "send"),
    ("transport/tcp", "deliver"),
    ("transport/tcp", "reconnect"),
    ("daemon", "send"),
    ("daemon", "deliver"),
    ("sas", "push"),
    ("sas", "pop"),
    ("sas", "evaluate"),
    ("sas", "deliver"),
    ("datamgr", "import"),
    ("cmrts", "step"),
    ("consultant", "experiment"),
];

struct Registry {
    enabled: AtomicBool,
    next_tid: AtomicU64,
    sites: Mutex<SiteTable>,
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
    rings: Mutex<Vec<Arc<SpanRing>>>,
}

#[derive(Default)]
struct SiteTable {
    /// Registration order; index == SiteId.
    entries: Vec<SiteEntry>,
    by_name: HashMap<(String, String), u16>,
}

struct SiteEntry {
    component: String,
    verb: String,
    stats: Arc<crate::span::SiteStats>,
}

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        enabled: AtomicBool::new(true),
        next_tid: AtomicU64::new(0),
        sites: Mutex::new(SiteTable::default()),
        counters: Mutex::new(HashMap::new()),
        histograms: Mutex::new(HashMap::new()),
        rings: Mutex::new(Vec::new()),
    })
}

/// Whether span/metric recording is on (default: on). Recording calls
/// check this with a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Handles stay valid; disabled
/// spans cost one atomic load.
pub fn set_enabled(on: bool) {
    global().enabled.store(on, Ordering::Relaxed);
}

/// Interns (or finds) the span site `component`/`verb` and returns a
/// cheap clonable handle. Call once and cache the handle.
///
/// # Panics
/// Panics if more than `u16::MAX` distinct sites are registered.
pub fn span_site(component: &str, verb: &str) -> SpanSite {
    let mut table = lock(&global().sites);
    let key = (component.to_string(), verb.to_string());
    if let Some(&id) = table.by_name.get(&key) {
        return SpanSite {
            id: SiteId(id),
            stats: Arc::clone(&table.entries[id as usize].stats),
        };
    }
    let id = u16::try_from(table.entries.len()).expect("too many span sites");
    let stats = Arc::new(crate::span::SiteStats::default());
    table.entries.push(SiteEntry {
        component: key.0.clone(),
        verb: key.1.clone(),
        stats: Arc::clone(&stats),
    });
    table.by_name.insert(key, id);
    SpanSite {
        id: SiteId(id),
        stats,
    }
}

/// Resolves a site id back to its `(component, verb)` names, or `None`
/// for an id never interned (e.g. from a stale snapshot).
pub fn site_name(id: SiteId) -> Option<(String, String)> {
    let table = lock(&global().sites);
    table
        .entries
        .get(id.index())
        .map(|e| (e.component.clone(), e.verb.clone()))
}

/// Interns (or finds) the named counter. Cache the handle.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = lock(&global().counters);
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new())),
    )
}

/// Interns (or finds) the named histogram. Cache the handle.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = lock(&global().histograms);
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new())),
    )
}

thread_local! {
    static THREAD_RING: RingHandle = RingHandle::register();
}

struct RingHandle {
    ring: Arc<SpanRing>,
}

impl RingHandle {
    fn register() -> Self {
        let reg = global();
        let tid = reg.next_tid.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(SpanRing::new(tid, DEFAULT_RING_CAPACITY));
        lock(&reg.rings).push(Arc::clone(&ring));
        Self { ring }
    }
}

impl Drop for RingHandle {
    fn drop(&mut self) {
        self.ring.retire();
    }
}

/// Runs `f` with the calling thread's span ring, registering the ring on
/// first use. Returns `None` if the thread is already tearing down its
/// locals (the span is then dropped from the trace but still aggregated).
pub(crate) fn with_thread_ring<R>(f: impl FnOnce(&SpanRing) -> R) -> Option<R> {
    THREAD_RING.try_with(|h| f(&h.ring)).ok()
}

/// A consistent-enough, point-in-time copy of everything the registry
/// holds. Taken without stopping any writer.
#[derive(Clone, Debug, Default)]
pub struct ObsSnapshot {
    /// When the snapshot was taken, ns since the process origin.
    pub taken_ns: u64,
    /// Per-site aggregates, in site-id order (registration order).
    pub sites: Vec<SiteSnapshot>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Raw span events from every thread ring, sorted by start time.
    pub spans: Vec<SpanEvent>,
    /// Events lost to ring wraparound across all threads (aggregates in
    /// `sites` still include them).
    pub spans_dropped: u64,
    /// Number of threads that ever recorded a span.
    pub threads: u64,
}

impl ObsSnapshot {
    /// Total completed spans across all sites (aggregate counts, immune
    /// to ring wraparound).
    pub fn span_count(&self) -> u64 {
        self.sites.iter().map(|s| s.count).sum()
    }

    /// Sum of all span durations across sites, in ns.
    pub fn total_span_ns(&self) -> u64 {
        self.sites.iter().map(|s| s.total_ns).sum()
    }

    /// The aggregate row for one site, if it recorded anything.
    pub fn site(&self, component: &str, verb: &str) -> Option<&SiteSnapshot> {
        self.sites
            .iter()
            .find(|s| s.component == component && s.verb == verb)
    }

    /// The value of one named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// One named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// Snapshots every site, counter, histogram and span ring without
/// stopping writers.
pub fn snapshot() -> ObsSnapshot {
    let reg = global();
    let taken_ns = now_ns();

    let sites = {
        let table = lock(&reg.sites);
        table
            .entries
            .iter()
            .map(|e| SiteSnapshot {
                component: e.component.clone(),
                verb: e.verb.clone(),
                count: e.stats.count.load(Ordering::Relaxed),
                total_ns: e.stats.total_ns.load(Ordering::Relaxed),
                hist: e.stats.hist.snapshot(),
            })
            .collect()
    };

    let mut counters: Vec<(String, u64)> = {
        let map = lock(&reg.counters);
        map.iter().map(|(n, c)| (n.clone(), c.get())).collect()
    };
    counters.sort_by(|a, b| a.0.cmp(&b.0));

    let mut histograms: Vec<(String, HistogramSnapshot)> = {
        let map = lock(&reg.histograms);
        map.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect()
    };
    histograms.sort_by(|a, b| a.0.cmp(&b.0));

    let mut spans = Vec::new();
    let mut spans_dropped = 0u64;
    let rings: Vec<Arc<SpanRing>> = lock(&reg.rings).clone();
    for ring in &rings {
        spans_dropped += ring.snapshot_into(&mut spans);
    }
    spans.sort_by_key(|e| (e.start_ns, e.tid, e.seq));

    ObsSnapshot {
        taken_ns,
        sites,
        counters,
        histograms,
        spans,
        spans_dropped,
        threads: rings.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{record_span, span};

    #[test]
    fn interning_is_stable_and_shared() {
        let a = span_site("test/interning", "send");
        let b = span_site("test/interning", "send");
        assert_eq!(a.id(), b.id());
        let c = span_site("test/interning", "deliver");
        assert_ne!(a.id(), c.id());
        assert_eq!(
            site_name(a.id()),
            Some(("test/interning".into(), "send".into()))
        );

        let k1 = counter("test.interning.counter");
        let k2 = counter("test.interning.counter");
        k1.incr();
        k2.incr();
        assert_eq!(k1.get(), 2, "same underlying cell");
    }

    #[test]
    fn snapshot_sees_spans_counters_histograms() {
        let site = span_site("test/snapshot", "evaluate");
        record_span(&site, 100, 50);
        {
            let _g = span(&site);
        }
        counter("test.snapshot.events").add(3);
        histogram("test.snapshot.lat_ns").record(7);

        let snap = snapshot();
        let row = snap.site("test/snapshot", "evaluate").unwrap();
        assert!(row.count >= 2);
        assert!(row.total_ns >= 50);
        assert!(snap.counter("test.snapshot.events") >= 3);
        let h = snap.histogram("test.snapshot.lat_ns").unwrap();
        assert!(h.count >= 1);
        assert!(snap.threads >= 1);
        assert!(snap.spans.iter().any(|e| e.site == site.id()));
        // Sorted by start time.
        assert!(snap
            .spans
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn disabling_stops_recording() {
        let site = span_site("test/disable", "send");
        let before = snapshot()
            .site("test/disable", "send")
            .map_or(0, |s| s.count);
        set_enabled(false);
        {
            let _g = span(&site);
        }
        record_span(&site, 1, 1);
        set_enabled(true);
        let after = snapshot()
            .site("test/disable", "send")
            .map_or(0, |s| s.count);
        assert_eq!(before, after, "disabled spans record nothing");
        {
            let _g = span(&site);
        }
        let reenabled = snapshot().site("test/disable", "send").unwrap().count;
        assert!(reenabled > after, "re-enabled spans record again");
    }

    #[test]
    fn known_sites_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &(c, v) in KNOWN_SITES {
            assert!(seen.insert((c, v)), "duplicate site {c}/{v}");
        }
        assert!(KNOWN_SITES.len() >= 12);
    }
}
