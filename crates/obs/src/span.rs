//! Per-thread lock-free span recording.
//!
//! A **span** is one enter/exit interval at a named **site** (component +
//! verb, e.g. `transport/tcp` / `send`). Recording is designed for hot
//! paths:
//!
//! * per-site aggregates (count, total time, latency histogram) are plain
//!   atomics shared through an [`Arc`], updated wait-free at span exit;
//! * the raw event stream goes into a fixed-size **per-thread ring
//!   buffer** of seqlock slots. The owning thread is the only writer, so
//!   writes never contend; a snapshot reads the slots without stopping the
//!   writer and discards any record it catches mid-write (generation
//!   check). When the ring wraps, the oldest events are overwritten and
//!   counted as dropped — aggregates are unaffected.
//!
//! Everything is `std` atomics; no unsafe code.

use crate::clock::now_ns;
use crate::metrics::{Histogram, HistogramSnapshot};
use crate::registry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default per-thread ring capacity (slots). Must be a power of two.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Dense identifier of a registered span site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SiteId(pub(crate) u16);

impl SiteId {
    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Shared per-site aggregates, updated at every span exit.
#[derive(Debug, Default)]
pub(crate) struct SiteStats {
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
    pub(crate) hist: Histogram,
}

impl SiteStats {
    #[inline]
    fn record(&self, dur_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        self.hist.record(dur_ns);
    }
}

/// A registered span site: the handle call sites cache (in a `OnceLock`)
/// so the span hot path never touches the registry lock.
#[derive(Clone)]
pub struct SpanSite {
    pub(crate) id: SiteId,
    pub(crate) stats: Arc<SiteStats>,
}

impl SpanSite {
    /// The site's dense id.
    pub fn id(&self) -> SiteId {
        self.id
    }
}

impl std::fmt::Debug for SpanSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpanSite({})", self.id.0)
    }
}

/// One seqlock slot. The generation is 0 while a write is in progress and
/// `record_index + 1` once the record is published; it strictly increases
/// per slot, so a reader that sees the same nonzero generation before and
/// after reading the payload fields has a consistent record.
#[derive(Debug)]
struct Slot {
    gen: AtomicU64,
    site: AtomicU64,
    start: AtomicU64,
    dur: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            gen: AtomicU64::new(0),
            site: AtomicU64::new(0),
            start: AtomicU64::new(0),
            dur: AtomicU64::new(0),
        }
    }
}

/// A fixed-size span ring owned by one thread. Only the owning thread
/// writes; any thread may snapshot.
#[derive(Debug)]
pub struct SpanRing {
    tid: u64,
    retired: AtomicBool,
    /// Total records ever written (not capped by capacity).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl SpanRing {
    /// Creates a ring with `capacity` slots (rounded up to a power of two,
    /// minimum 2) for the pseudo-thread-id `tid`.
    pub fn new(tid: u64, capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        Self {
            tid,
            retired: AtomicBool::new(false),
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    /// The owning thread's dense id (assigned at registration).
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Total records ever written.
    pub fn written(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Marks the owning thread as finished (the ring's history remains
    /// readable).
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Appends a record. Must only be called by the owning thread; all
    /// cells are atomics so a misuse cannot corrupt memory, only interleave
    /// records.
    #[inline]
    pub fn record(&self, site: SiteId, start_ns: u64, dur_ns: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (self.slots.len() - 1)];
        slot.gen.store(0, Ordering::Release); // invalidate while writing
        slot.site.store(site.0 as u64, Ordering::Relaxed);
        slot.start.store(start_ns, Ordering::Relaxed);
        slot.dur.store(dur_ns, Ordering::Relaxed);
        slot.gen.store(h + 1, Ordering::Release); // publish (1-based index)
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copies every consistent record out of the ring without stopping the
    /// writer. Returns how many records have been overwritten (lost to
    /// wraparound) as of this read.
    pub fn snapshot_into(&self, out: &mut Vec<SpanEvent>) -> u64 {
        for slot in self.slots.iter() {
            let g1 = slot.gen.load(Ordering::Acquire);
            if g1 == 0 {
                continue; // never written, or mid-write
            }
            let site = slot.site.load(Ordering::Relaxed);
            let start = slot.start.load(Ordering::Relaxed);
            let dur = slot.dur.load(Ordering::Relaxed);
            if slot.gen.load(Ordering::Acquire) != g1 {
                continue; // overwritten while reading
            }
            out.push(SpanEvent {
                tid: self.tid,
                seq: g1 - 1,
                site: SiteId(site as u16),
                start_ns: start,
                dur_ns: dur,
            });
        }
        self.written().saturating_sub(self.slots.len() as u64)
    }
}

/// One completed span copied out of a ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Dense id of the recording thread.
    pub tid: u64,
    /// Per-thread record index (0-based, monotone).
    pub seq: u64,
    /// The site the span was recorded at.
    pub site: SiteId,
    /// Start timestamp, ns since the process origin.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

impl SpanEvent {
    /// End timestamp, ns since the process origin.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// An RAII span: records `[construction, drop]` at its site. Obtain via
/// [`span`].
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard<'a> {
    site: Option<&'a SpanSite>,
    start: u64,
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(site) = self.site {
            let dur = now_ns().saturating_sub(self.start);
            finish_span(site, self.start, dur);
        }
    }
}

/// Starts a span at `site`. When recording is disabled the guard is a
/// no-op costing one atomic load.
#[inline]
pub fn span(site: &SpanSite) -> SpanGuard<'_> {
    if registry::enabled() {
        SpanGuard {
            site: Some(site),
            start: now_ns(),
        }
    } else {
        SpanGuard {
            site: None,
            start: 0,
        }
    }
}

/// Records an already-measured span (for paths where a guard is awkward,
/// e.g. "only count this if a frame actually arrived"). No-op while
/// recording is disabled.
#[inline]
pub fn record_span(site: &SpanSite, start_ns: u64, dur_ns: u64) {
    if registry::enabled() {
        finish_span(site, start_ns, dur_ns);
    }
}

#[inline]
fn finish_span(site: &SpanSite, start_ns: u64, dur_ns: u64) {
    site.stats.record(dur_ns);
    registry::with_thread_ring(|ring| ring.record(site.id, start_ns, dur_ns));
}

/// Aggregated view of one site in a snapshot.
#[derive(Clone, Debug)]
pub struct SiteSnapshot {
    /// Component noun, e.g. `transport/tcp`.
    pub component: String,
    /// Verb, e.g. `send`.
    pub verb: String,
    /// Completed spans recorded at this site.
    pub count: u64,
    /// Sum of span durations in ns.
    pub total_ns: u64,
    /// Latency histogram of span durations (ns).
    pub hist: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_losses() {
        let ring = SpanRing::new(7, 8);
        for i in 0..20u64 {
            ring.record(SiteId(0), i * 10, 1);
        }
        let mut out = Vec::new();
        let dropped = ring.snapshot_into(&mut out);
        assert_eq!(dropped, 12, "20 written into 8 slots");
        assert_eq!(out.len(), 8);
        let mut seqs: Vec<u64> = out.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>(), "newest survive");
        assert!(out.iter().all(|e| e.tid == 7));
        assert!(out.iter().all(|e| e.start_ns == e.seq * 10));
    }

    #[test]
    fn ring_capacity_rounds_to_power_of_two() {
        let ring = SpanRing::new(0, 9);
        for i in 0..16u64 {
            ring.record(SiteId(1), i, 2);
        }
        let mut out = Vec::new();
        assert_eq!(ring.snapshot_into(&mut out), 0, "16 slots hold 16");
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn snapshot_while_writing_yields_only_consistent_records() {
        // A seeded multi-thread loop: one writer hammers the ring while
        // readers snapshot concurrently. Every accepted record must be
        // internally consistent (the payload encodes its own seq).
        let ring = Arc::new(SpanRing::new(3, 64));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    // start = 3*seq, dur = seq + 1: readable invariants.
                    ring.record(SiteId((i % 5) as u16), i * 3, i + 1);
                }
            })
        };
        let mut checked = 0u64;
        for _ in 0..200 {
            let mut out = Vec::new();
            ring.snapshot_into(&mut out);
            for e in &out {
                assert_eq!(e.start_ns, e.seq * 3, "torn record escaped seqlock");
                assert_eq!(e.dur_ns, e.seq + 1, "torn record escaped seqlock");
                assert_eq!(e.site.0 as u64, e.seq % 5);
                checked += 1;
            }
        }
        writer.join().unwrap();
        assert!(checked > 0, "snapshots observed live records");
        // Final snapshot sees exactly the last 64 records.
        let mut out = Vec::new();
        let dropped = ring.snapshot_into(&mut out);
        assert_eq!(out.len(), 64);
        assert_eq!(dropped, 200_000 - 64);
    }

    #[test]
    fn span_event_end() {
        let e = SpanEvent {
            tid: 0,
            seq: 0,
            site: SiteId(0),
            start_ns: u64::MAX - 1,
            dur_ns: 10,
        };
        assert_eq!(e.end_ns(), u64::MAX, "saturates instead of wrapping");
    }
}
