//! Chrome `trace_event` JSON exporter.
//!
//! Emits the snapshot's span events in the Trace Event Format understood
//! by `chrome://tracing` and <https://ui.perfetto.dev>: one complete
//! (`"ph":"X"`) event per span, with microsecond timestamps relative to
//! the process origin. Hand-rolled serialisation — the crate stays
//! dependency-free.

use crate::registry::{site_name, ObsSnapshot};

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the snapshot's spans as a Chrome `trace_event` JSON document.
///
/// Timestamps (`ts`) and durations (`dur`) are microseconds, as the
/// format requires; sub-microsecond spans are emitted with `dur: 0` but
/// keep their true nanosecond duration in `args.dur_ns`. Events whose
/// site id cannot be resolved (impossible in-process, possible for a
/// replayed snapshot) are labelled `site-N`.
pub fn chrome_trace_json(snap: &ObsSnapshot) -> String {
    let mut out = String::with_capacity(64 + snap.spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (component, verb) = site_name(e.site)
            .unwrap_or_else(|| (format!("site-{}", e.site.index()), String::new()));
        let name = if verb.is_empty() {
            component.clone()
        } else {
            format!("{component} {verb}")
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"dur_ns\":{},\"seq\":{}}}}}",
            json_escape(&name),
            json_escape(&component),
            e.start_ns / 1000,
            e.dur_ns / 1000,
            e.tid,
            e.dur_ns,
            e.seq,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{snapshot, span_site};
    use crate::span::record_span;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_json_contains_events_and_balances() {
        let site = span_site("test/trace", "send");
        record_span(&site, 1_000, 2_500);
        let snap = snapshot();
        let json = chrome_trace_json(&snap);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"test/trace send\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Structural sanity: braces and brackets balance, quotes pair up.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn empty_snapshot_is_valid_document() {
        let snap = ObsSnapshot::default();
        assert_eq!(
            chrome_trace_json(&snap),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }
}
