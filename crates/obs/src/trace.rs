//! Chrome `trace_event` JSON exporter, plus the cross-process span-dump
//! format that feeds the merged fleet trace.
//!
//! [`chrome_trace_json`] emits one process's snapshot in the Trace Event
//! Format understood by `chrome://tracing` and <https://ui.perfetto.dev>:
//! one complete (`"ph":"X"`) event per span, with microsecond timestamps
//! relative to the process origin. Hand-rolled serialisation — the crate
//! stays dependency-free.
//!
//! For a *fleet* trace the raw snapshot is not portable: span events
//! carry process-local site ids and process-origin-relative stamps. So a
//! daemon writes a [`SpanDump`] (names resolved, plus the delta from its
//! origin clock to its session clock), the tool reads it back with
//! [`parse_span_dump`], chains the clock offset it already measured for
//! that daemon, and [`fleet_chrome_trace`] merges every process's spans
//! onto the tool clock — one trace pid per process.

use crate::registry::{site_name, ObsSnapshot};

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the snapshot's spans as a Chrome `trace_event` JSON document.
///
/// Timestamps (`ts`) and durations (`dur`) are microseconds, as the
/// format requires; sub-microsecond spans are emitted with `dur: 0` but
/// keep their true nanosecond duration in `args.dur_ns`. Events whose
/// site id cannot be resolved (impossible in-process, possible for a
/// replayed snapshot) are labelled `site-N`.
pub fn chrome_trace_json(snap: &ObsSnapshot) -> String {
    let mut out = String::with_capacity(64 + snap.spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (component, verb) = site_name(e.site)
            .unwrap_or_else(|| (format!("site-{}", e.site.index()), String::new()));
        let name = if verb.is_empty() {
            component.clone()
        } else {
            format!("{component} {verb}")
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"dur_ns\":{},\"seq\":{}}}}}",
            json_escape(&name),
            json_escape(&component),
            e.start_ns / 1000,
            e.dur_ns / 1000,
            e.tid,
            e.dur_ns,
            e.seq,
        ));
    }
    out.push_str("]}");
    out
}

/// A span event with its site resolved to names — the portable form one
/// process can write to disk and another process can read back (site ids
/// are process-local; names are not).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedSpan {
    /// Site component ("transport/tcp", "daemon", ...).
    pub component: String,
    /// Site verb ("send", "deliver", ...).
    pub verb: String,
    /// Recording thread's registry tid.
    pub tid: u64,
    /// Start, ns since the recording process's origin.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

/// Resolves every span in the snapshot to a [`NamedSpan`]. Spans whose
/// site id cannot be resolved (impossible in-process) are labelled
/// `site-N`.
pub fn named_spans(snap: &ObsSnapshot) -> Vec<NamedSpan> {
    snap.spans
        .iter()
        .map(|e| {
            let (component, verb) = site_name(e.site)
                .unwrap_or_else(|| (format!("site-{}", e.site.index()), String::new()));
            NamedSpan {
                component,
                verb,
                tid: e.tid,
                start_ns: e.start_ns,
                dur_ns: e.dur_ns,
            }
        })
        .collect()
}

/// One process's span dump: its spans plus the delta that maps the
/// process-origin-relative stamps onto the clock that process exposes to
/// the tool (for a `pdmapd` daemon, `daemon_now` = origin + base + skew).
/// A reader chains the tool-measured clock offset on top to land the
/// spans on the tool clock.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanDump {
    /// `session_clock_ns - origin_clock_ns` of the writing process.
    pub origin_delta_ns: i64,
    /// The spans, stamps still origin-relative.
    pub spans: Vec<NamedSpan>,
}

/// Header line identifying the dump format.
const SPAN_DUMP_HEADER: &str = "pdmap-obs spans v1";

/// Serialises the snapshot's spans as a plain-text dump: a header, an
/// `origin <delta>` line, then one tab-separated
/// `component verb tid start_ns dur_ns` line per span. Text on purpose —
/// a truncated file (killed daemon) still parses up to the cut.
pub fn span_dump(snap: &ObsSnapshot, origin_delta_ns: i64) -> String {
    let mut out = String::with_capacity(64 + snap.spans.len() * 48);
    out.push_str(SPAN_DUMP_HEADER);
    out.push('\n');
    out.push_str(&format!("origin {origin_delta_ns}\n"));
    for s in named_spans(snap) {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            s.component, s.verb, s.tid, s.start_ns, s.dur_ns
        ));
    }
    out
}

/// Parses a [`span_dump`] document. Lenient: malformed or truncated
/// lines are skipped, a missing `origin` line reads as delta 0 — the
/// dump may come from a process that died mid-write.
pub fn parse_span_dump(text: &str) -> SpanDump {
    let mut dump = SpanDump::default();
    for line in text.lines() {
        if line.is_empty() || line == SPAN_DUMP_HEADER {
            continue;
        }
        if let Some(delta) = line.strip_prefix("origin ") {
            if let Ok(d) = delta.trim().parse() {
                dump.origin_delta_ns = d;
            }
            continue;
        }
        let mut f = line.split('\t');
        let (Some(component), Some(verb), Some(tid), Some(start), Some(dur)) =
            (f.next(), f.next(), f.next(), f.next(), f.next())
        else {
            continue;
        };
        let (Ok(tid), Ok(start_ns), Ok(dur_ns)) = (tid.parse(), start.parse(), dur.parse()) else {
            continue;
        };
        dump.spans.push(NamedSpan {
            component: component.to_string(),
            verb: verb.to_string(),
            tid,
            start_ns,
            dur_ns,
        });
    }
    dump
}

/// One process's contribution to a merged fleet trace.
#[derive(Clone, Debug, Default)]
pub struct ProcessSpans {
    /// Trace pid (convention: 0 = the tool process).
    pub pid: u64,
    /// Human label for the process row ("tool", "daemon:127.0.0.1:4242").
    pub name: String,
    /// Added to each span stamp to land it on the tool clock. For a
    /// daemon this is `dump.origin_delta_ns - measured_clock_offset_ns`
    /// (origin → session clock, then session clock → tool clock); for
    /// the tool's own spans it is 0.
    pub clock_delta_ns: i64,
    /// The process's spans, stamps origin-relative.
    pub spans: Vec<NamedSpan>,
}

/// Merges per-process span streams into one Chrome `trace_event` JSON
/// document on the tool clock: a `process_name` metadata event per
/// process, then every span as a complete event under that process's
/// pid, with `ts` shifted by the process's `clock_delta_ns`. Stamps that
/// would go negative after alignment clamp to 0 (same saturating rule
/// the sample path uses).
pub fn fleet_chrome_trace(procs: &[ProcessSpans]) -> String {
    let total: usize = procs.iter().map(|p| p.spans.len()).sum();
    let mut out = String::with_capacity(128 + procs.len() * 96 + total * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&ev);
    };
    for p in procs {
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                p.pid,
                json_escape(&p.name)
            ),
        );
        for s in &p.spans {
            let aligned_ns = (s.start_ns as i128 + p.clock_delta_ns as i128).max(0);
            let name = if s.verb.is_empty() {
                s.component.clone()
            } else {
                format!("{} {}", s.component, s.verb)
            };
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"dur_ns\":{}}}}}",
                    json_escape(&name),
                    json_escape(&s.component),
                    aligned_ns / 1000,
                    s.dur_ns / 1000,
                    p.pid,
                    s.tid,
                    s.dur_ns,
                ),
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{snapshot, span_site};
    use crate::span::record_span;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_json_contains_events_and_balances() {
        let site = span_site("test/trace", "send");
        record_span(&site, 1_000, 2_500);
        let snap = snapshot();
        let json = chrome_trace_json(&snap);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"test/trace send\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Structural sanity: braces and brackets balance, quotes pair up.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn empty_snapshot_is_valid_document() {
        let snap = ObsSnapshot::default();
        assert_eq!(
            chrome_trace_json(&snap),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn span_dump_round_trips() {
        let site = span_site("test/dump", "send");
        record_span(&site, 5_000, 700);
        let snap = snapshot();
        let text = span_dump(&snap, 1_000_000_007);
        let dump = parse_span_dump(&text);
        assert_eq!(dump.origin_delta_ns, 1_000_000_007);
        let mine: Vec<&NamedSpan> = dump
            .spans
            .iter()
            .filter(|s| s.component == "test/dump")
            .collect();
        assert!(!mine.is_empty());
        assert!(mine
            .iter()
            .any(|s| s.start_ns == 5_000 && s.dur_ns == 700 && s.verb == "send"));
        // Parsed spans match the resolved originals one-for-one.
        assert_eq!(dump.spans, named_spans(&snap));
    }

    #[test]
    fn parse_is_lenient_about_truncation_and_garbage() {
        let text = "pdmap-obs spans v1\norigin -42\na\tb\t1\t10\t20\ntrunca";
        let dump = parse_span_dump(text);
        assert_eq!(dump.origin_delta_ns, -42);
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.spans[0].component, "a");

        let headless = parse_span_dump("x\ty\t2\t30\t40\n");
        assert_eq!(headless.origin_delta_ns, 0);
        assert_eq!(headless.spans.len(), 1);
    }

    #[test]
    fn fleet_trace_merges_processes_onto_tool_clock() {
        let procs = vec![
            ProcessSpans {
                pid: 0,
                name: "tool".into(),
                clock_delta_ns: 0,
                spans: vec![NamedSpan {
                    component: "sas".into(),
                    verb: "evaluate".into(),
                    tid: 1,
                    start_ns: 9_000,
                    dur_ns: 1_000,
                }],
            },
            ProcessSpans {
                pid: 3,
                name: "daemon:127.0.0.1:9999".into(),
                clock_delta_ns: -4_000,
                spans: vec![
                    NamedSpan {
                        component: "transport/tcp".into(),
                        verb: "send".into(),
                        tid: 0,
                        start_ns: 12_000,
                        dur_ns: 2_000,
                    },
                    // Would align to -1_000 ns: clamps to 0.
                    NamedSpan {
                        component: "daemon".into(),
                        verb: "deliver".into(),
                        tid: 0,
                        start_ns: 3_000,
                        dur_ns: 500,
                    },
                ],
            },
        ];
        let json = fleet_chrome_trace(&procs);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"tool\""));
        assert!(json.contains("\"name\":\"daemon:127.0.0.1:9999\""));
        // 12_000 - 4_000 = 8_000 ns → ts 8 µs under pid 3.
        assert!(json.contains("\"ts\":8,\"dur\":2,\"pid\":3"));
        // Clamped event lands at ts 0.
        assert!(json.contains("\"ts\":0,\"dur\":0,\"pid\":3"));
        // Tool event under pid 0, unshifted.
        assert!(json.contains("\"ts\":9,\"dur\":1,\"pid\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn empty_fleet_is_valid_document() {
        assert_eq!(
            fleet_chrome_trace(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }
}
