//! Drop-driven adaptive sampling interval (MIAD).
//!
//! Closes the ROADMAP backpressure item: instead of letting a saturated
//! transport drop sample frames blindly, the producer consults an
//! [`AdaptiveSampler`] fed with the transport's cumulative
//! `TransportStats.drops` counter. When drops rise inside an observation
//! window the sampling interval grows multiplicatively (shedding load
//! fast); after a clean window it shrinks additively (probing back
//! towards full resolution). The multiplicative-increase /
//! additive-decrease shape is deliberately the inverse of TCP's AIMD —
//! here the *interval* is the controlled quantity, so MI on congestion
//! and AD on recovery yields the same conservative backoff.

/// Tuning for [`AdaptiveSampler`]. All intervals are in the caller's
/// unit (steps, frames, ns — the sampler only compares and scales them).
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Interval when the transport is healthy; also the floor.
    pub base_interval: u64,
    /// Hard ceiling for the interval.
    pub max_interval: u64,
    /// Multiplier applied when a window saw new drops (> 1).
    pub increase_factor: u64,
    /// Amount subtracted after a clean window.
    pub decrease_step: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            base_interval: 1,
            max_interval: 1024,
            increase_factor: 2,
            decrease_step: 1,
        }
    }
}

/// One observation window's outcome, kept for bench trajectories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplerWindow {
    /// Cumulative drops reported at the end of the window.
    pub drops_total: u64,
    /// New drops inside the window.
    pub drops_delta: u64,
    /// Interval chosen for the next window.
    pub interval: u64,
}

/// Multiplicative-increase / additive-decrease sampling interval driven
/// by a cumulative drop counter.
#[derive(Clone, Debug)]
pub struct AdaptiveSampler {
    config: SamplerConfig,
    interval: u64,
    /// Last seen cumulative drops; `None` until the first observation,
    /// which only sets the baseline (a pre-existing drop total must not
    /// count as a fresh spike).
    last_drops: Option<u64>,
    windows: Vec<SamplerWindow>,
}

impl AdaptiveSampler {
    /// Creates a sampler starting at `config.base_interval`.
    pub fn new(config: SamplerConfig) -> Self {
        let config = SamplerConfig {
            base_interval: config.base_interval.max(1),
            max_interval: config.max_interval.max(config.base_interval.max(1)),
            increase_factor: config.increase_factor.max(2),
            decrease_step: config.decrease_step.max(1),
        };
        Self {
            interval: config.base_interval,
            config,
            last_drops: None,
            windows: Vec::new(),
        }
    }

    /// The interval to sample at right now.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The active (normalised) configuration.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Feeds the cumulative drop counter at the end of an observation
    /// window and returns the interval for the next window. The first
    /// call establishes the baseline without reacting.
    pub fn observe_drops(&mut self, drops_total: u64) -> u64 {
        let delta = match self.last_drops {
            None => 0,
            Some(prev) => drops_total.saturating_sub(prev),
        };
        self.last_drops = Some(drops_total);
        if delta > 0 {
            self.interval = self
                .interval
                .saturating_mul(self.config.increase_factor)
                .min(self.config.max_interval);
        } else {
            self.interval = self
                .interval
                .saturating_sub(self.config.decrease_step)
                .max(self.config.base_interval);
        }
        self.windows.push(SamplerWindow {
            drops_total,
            drops_delta: delta,
            interval: self.interval,
        });
        self.interval
    }

    /// The per-window trajectory observed so far.
    pub fn windows(&self) -> &[SamplerWindow] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_sets_baseline_without_spiking() {
        let mut s = AdaptiveSampler::new(SamplerConfig::default());
        assert_eq!(s.interval(), 1);
        // A large pre-existing total is baseline, not a fresh spike.
        assert_eq!(s.observe_drops(10_000), 1);
    }

    #[test]
    fn drop_ramp_lengthens_then_recovers() {
        let mut s = AdaptiveSampler::new(SamplerConfig {
            base_interval: 2,
            max_interval: 64,
            increase_factor: 2,
            decrease_step: 3,
        });
        // Baseline first, then a synthetic ramp: drops grow each window.
        s.observe_drops(0);
        let mut total = 0;
        let mut last = s.interval();
        for step in [5u64, 9, 2, 40] {
            total += step;
            let next = s.observe_drops(total);
            assert!(next > last, "rising drops must lengthen the interval");
            last = next;
        }
        assert_eq!(last, 32, "2 -> 4 -> 8 -> 16 -> 32");
        // Saturation at the ceiling.
        total += 1;
        assert_eq!(s.observe_drops(total), 64);
        total += 1;
        assert_eq!(s.observe_drops(total), 64, "capped at max_interval");
        // Recovery: clean windows walk back additively to the floor.
        let mut seq = Vec::new();
        for _ in 0..25 {
            seq.push(s.observe_drops(total));
        }
        assert_eq!(seq[0], 61);
        assert_eq!(seq[1], 58);
        assert_eq!(*seq.last().unwrap(), 2, "returns to base interval");
        assert!(seq.windows(2).all(|w| w[1] <= w[0]), "monotone recovery");
    }

    #[test]
    fn trajectory_is_recorded() {
        let mut s = AdaptiveSampler::new(SamplerConfig::default());
        s.observe_drops(0);
        s.observe_drops(4);
        s.observe_drops(4);
        let w = s.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].drops_delta, 0);
        assert_eq!(w[1].drops_delta, 4);
        assert_eq!(w[1].interval, 2);
        assert_eq!(w[2].drops_delta, 0);
        assert_eq!(w[2].interval, 1);
    }

    #[test]
    fn config_is_normalised() {
        let s = AdaptiveSampler::new(SamplerConfig {
            base_interval: 0,
            max_interval: 0,
            increase_factor: 0,
            decrease_step: 0,
        });
        let c = s.config();
        assert_eq!(c.base_interval, 1);
        assert!(c.max_interval >= c.base_interval);
        assert!(c.increase_factor >= 2);
        assert!(c.decrease_step >= 1);
    }
}
