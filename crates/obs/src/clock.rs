//! Monotonic nanosecond clock shared by every recorder.
//!
//! All timestamps in this crate are nanoseconds since a process-wide
//! origin (the first call to [`now_ns`]). Using one origin keeps spans
//! from different threads on a single comparable timeline, which is what
//! the Chrome trace exporter needs.

use std::sync::OnceLock;
use std::time::Instant;

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process-wide origin. Monotonic and
/// comparable across threads.
pub fn now_ns() -> u64 {
    origin().elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_shared_across_threads() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        let h = std::thread::spawn(now_ns);
        let c = h.join().unwrap();
        let d = now_ns();
        assert!(d >= c || d >= a, "one origin serves every thread");
    }
}
