//! Lexer for the CM Fortran-like source language.
//!
//! Line-oriented, Fortran-flavoured: `!` starts a comment, newlines
//! terminate statements, identifiers are case-insensitive (normalised to
//! upper case).

use std::fmt;

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (upper-cased).
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `/=`
    Ne,
    /// `:`
    Colon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of statement (one or more newlines).
    Newline,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier '{s}'"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::LParen => f.write_str("'('"),
            Tok::RParen => f.write_str("')'"),
            Tok::Comma => f.write_str("','"),
            Tok::Eq => f.write_str("'='"),
            Tok::EqEq => f.write_str("'=='"),
            Tok::Lt => f.write_str("'<'"),
            Tok::Gt => f.write_str("'>'"),
            Tok::Le => f.write_str("'<='"),
            Tok::Ge => f.write_str("'>='"),
            Tok::Ne => f.write_str("'/='"),
            Tok::Colon => f.write_str("':'"),
            Tok::Plus => f.write_str("'+'"),
            Tok::Minus => f.write_str("'-'"),
            Tok::Star => f.write_str("'*'"),
            Tok::Slash => f.write_str("'/'"),
            Tok::Newline => f.write_str("end of line"),
        }
    }
}

/// A compile error with source-line context (shared by all phases).
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError {
    /// 1-based source line (0 = end of input / whole program).
    pub line: u32,
    /// Explanation.
    pub message: String,
}

impl CompileError {
    /// Builds an error.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Tokenises source text. Consecutive newlines (and comment-only lines)
/// collapse into single [`Tok::Newline`] markers.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut out: Vec<Token> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = (i + 1) as u32;
        let text = match raw.find('!') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let mut chars = text.chars().peekable();
        let start_len = out.len();
        while let Some(&c) = chars.peek() {
            match c {
                c if c.is_whitespace() => {
                    chars.next();
                }
                '(' => push(&mut out, Tok::LParen, line, &mut chars),
                ')' => push(&mut out, Tok::RParen, line, &mut chars),
                ',' => push(&mut out, Tok::Comma, line, &mut chars),
                '=' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push(Token {
                            kind: Tok::EqEq,
                            line,
                        });
                    } else {
                        out.push(Token {
                            kind: Tok::Eq,
                            line,
                        });
                    }
                }
                '<' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push(Token {
                            kind: Tok::Le,
                            line,
                        });
                    } else {
                        out.push(Token {
                            kind: Tok::Lt,
                            line,
                        });
                    }
                }
                '>' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push(Token {
                            kind: Tok::Ge,
                            line,
                        });
                    } else {
                        out.push(Token {
                            kind: Tok::Gt,
                            line,
                        });
                    }
                }
                ':' => push(&mut out, Tok::Colon, line, &mut chars),
                '+' => push(&mut out, Tok::Plus, line, &mut chars),
                '-' => push(&mut out, Tok::Minus, line, &mut chars),
                '*' => push(&mut out, Tok::Star, line, &mut chars),
                '/' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push(Token {
                            kind: Tok::Ne,
                            line,
                        });
                    } else {
                        out.push(Token {
                            kind: Tok::Slash,
                            line,
                        });
                    }
                }
                c if c.is_ascii_digit() || c == '.' => {
                    let mut s = String::new();
                    while let Some(&d) = chars.peek() {
                        if d.is_ascii_digit() || d == '.' {
                            s.push(d);
                            chars.next();
                        } else if (d == 'e' || d == 'E') && !s.is_empty() && !s.contains('e') {
                            s.push('e');
                            chars.next();
                            if let Some(&sign) = chars.peek() {
                                if sign == '+' || sign == '-' {
                                    s.push(sign);
                                    chars.next();
                                }
                            }
                        } else {
                            break;
                        }
                    }
                    let n: f64 = s
                        .parse()
                        .map_err(|_| CompileError::new(line, format!("bad number '{s}'")))?;
                    out.push(Token {
                        kind: Tok::Num(n),
                        line,
                    });
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&d) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            s.push(d.to_ascii_uppercase());
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Token {
                        kind: Tok::Ident(s),
                        line,
                    });
                }
                other => {
                    return Err(CompileError::new(
                        line,
                        format!("unexpected character '{other}'"),
                    ))
                }
            }
        }
        // Statement terminator if this line contributed tokens.
        if out.len() > start_len {
            out.push(Token {
                kind: Tok::Newline,
                line,
            });
        }
    }
    Ok(out)
}

fn push(
    out: &mut Vec<Token>,
    kind: Tok,
    line: u32,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) {
    chars.next();
    out.push(Token { kind, line });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("asum = SUM(A)"),
            vec![
                Tok::Ident("ASUM".into()),
                Tok::Eq,
                Tok::Ident("SUM".into()),
                Tok::LParen,
                Tok::Ident("A".into()),
                Tok::RParen,
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn numbers_and_exponents() {
        assert_eq!(kinds("1.5"), vec![Tok::Num(1.5), Tok::Newline]);
        assert_eq!(kinds("2"), vec![Tok::Num(2.0), Tok::Newline]);
        assert_eq!(kinds("1e3"), vec![Tok::Num(1000.0), Tok::Newline]);
        assert_eq!(kinds("2.5E-1"), vec![Tok::Num(0.25), Tok::Newline]);
    }

    #[test]
    fn comments_and_blank_lines_fold() {
        let ks = kinds("A = 1 ! set A\n\n! whole-line comment\nB = 2");
        let newlines = ks.iter().filter(|k| **k == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn line_numbers_survive() {
        let toks = lex("A = 1\n\nB = 2\n").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == Tok::Ident("B".into()))
            .unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("A*B + C/D - 2"),
            vec![
                Tok::Ident("A".into()),
                Tok::Star,
                Tok::Ident("B".into()),
                Tok::Plus,
                Tok::Ident("C".into()),
                Tok::Slash,
                Tok::Ident("D".into()),
                Tok::Minus,
                Tok::Num(2.0),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn comparison_tokens() {
        assert_eq!(
            kinds("A < B <= C > D >= E == F /= G / H"),
            vec![
                Tok::Ident("A".into()),
                Tok::Lt,
                Tok::Ident("B".into()),
                Tok::Le,
                Tok::Ident("C".into()),
                Tok::Gt,
                Tok::Ident("D".into()),
                Tok::Ge,
                Tok::Ident("E".into()),
                Tok::EqEq,
                Tok::Ident("F".into()),
                Tok::Ne,
                Tok::Ident("G".into()),
                Tok::Slash,
                Tok::Ident("H".into()),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        let e = lex("A = @").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains('@'));
    }

    #[test]
    fn case_is_normalised() {
        assert_eq!(kinds("ForAll")[0], Tok::Ident("FORALL".into()));
    }
}
