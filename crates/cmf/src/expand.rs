//! DO-loop unrolling.
//!
//! The CM Fortran compiler unrolls small counted loops over node code
//! blocks; here every `DO` is fully expanded right after parsing, with the
//! index substituted as a constant in each iteration. Later phases (sema,
//! lowering, mapping) therefore never see loops — every unrolled statement
//! keeps its original source line, so costs from all iterations aggregate
//! onto the same line nouns, exactly as line-level attribution should.

use crate::ast::{Stmt, StmtKind, Unit};
use crate::lex::CompileError;

/// Hard cap on total statements after expansion (guards against
/// `DO I = 1:1000000`).
pub const MAX_EXPANDED_STATEMENTS: usize = 100_000;

/// Expands every DO loop in the unit (including inside subroutines).
pub fn expand_unit(unit: &Unit) -> Result<Unit, CompileError> {
    let mut budget = MAX_EXPANDED_STATEMENTS;
    let mut out = Unit {
        name: unit.name.clone(),
        subroutines: Vec::with_capacity(unit.subroutines.len()),
        stmts: Vec::new(),
    };
    for sub in &unit.subroutines {
        out.subroutines.push(crate::ast::Subroutine {
            name: sub.name.clone(),
            line: sub.line,
            stmts: expand_stmts(&sub.stmts, &mut budget)?,
        });
    }
    out.stmts = expand_stmts(&unit.stmts, &mut budget)?;
    Ok(out)
}

fn expand_stmts(stmts: &[Stmt], budget: &mut usize) -> Result<Vec<Stmt>, CompileError> {
    let mut out = Vec::new();
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Do {
                index,
                lo,
                hi,
                body,
            } => {
                if hi < lo {
                    // Zero-trip loop: Fortran semantics, nothing emitted.
                    continue;
                }
                let inner = expand_stmts(body, budget)?;
                for i in *lo..=*hi {
                    for s in &inner {
                        spend(budget, stmt.line)?;
                        out.push(substitute_stmt(s, index, i as f64));
                    }
                }
            }
            _ => {
                spend(budget, stmt.line)?;
                out.push(stmt.clone());
            }
        }
    }
    Ok(out)
}

fn spend(budget: &mut usize, line: u32) -> Result<(), CompileError> {
    if *budget == 0 {
        return Err(CompileError::new(
            line,
            format!("loop expansion exceeds {MAX_EXPANDED_STATEMENTS} statements"),
        ));
    }
    *budget -= 1;
    Ok(())
}

fn substitute_stmt(stmt: &Stmt, index: &str, value: f64) -> Stmt {
    let kind = match &stmt.kind {
        StmtKind::Assign { target, expr } => StmtKind::Assign {
            target: target.clone(),
            expr: expr.substitute(index, value),
        },
        StmtKind::Where {
            lhs,
            cmp,
            rhs,
            target,
            expr,
        } => StmtKind::Where {
            lhs: lhs.substitute(index, value),
            cmp: *cmp,
            rhs: rhs.substitute(index, value),
            target: target.clone(),
            expr: expr.substitute(index, value),
        },
        StmtKind::Forall {
            index: fi,
            lo,
            hi,
            target,
            expr,
        } => StmtKind::Forall {
            index: fi.clone(),
            lo: *lo,
            hi: *hi,
            target: target.clone(),
            // The FORALL index shadows the DO index inside its expression.
            expr: if fi == index {
                expr.clone()
            } else {
                expr.substitute(index, value)
            },
        },
        other => other.clone(),
    };
    Stmt {
        line: stmt.line,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn do_loop_unrolls_with_substitution() {
        let unit = parse("PROGRAM P\nREAL A(8)\nDO I = 1:3\nA = A + I\nENDDO\nEND\n").unwrap();
        let expanded = expand_unit(&unit).unwrap();
        // decl + 3 unrolled assignments.
        assert_eq!(expanded.stmts.len(), 4);
        // Each iteration substituted a different constant.
        let consts: Vec<f64> = expanded.stmts[1..]
            .iter()
            .map(|s| match &s.kind {
                StmtKind::Assign { expr, .. } => match expr {
                    crate::ast::Expr::Bin(_, _, b) => match **b {
                        crate::ast::Expr::Num(n) => n,
                        _ => panic!("expected constant"),
                    },
                    _ => panic!("expected binop"),
                },
                _ => panic!("expected assign"),
            })
            .collect();
        assert_eq!(consts, vec![1.0, 2.0, 3.0]);
        // Lines are preserved for attribution.
        assert!(expanded.stmts[1..].iter().all(|s| s.line == 4));
    }

    #[test]
    fn nested_do_loops_multiply() {
        let unit = parse(
            "PROGRAM P\nREAL A(8)\nDO I = 1:2\nDO J = 1:3\nA = A + I * J\nENDDO\nENDDO\nEND\n",
        )
        .unwrap();
        let expanded = expand_unit(&unit).unwrap();
        assert_eq!(expanded.stmts.len(), 1 + 6);
    }

    #[test]
    fn zero_trip_loop_vanishes() {
        let unit =
            parse("PROGRAM P\nREAL A(8)\nDO I = 5:1\nA = 1.0\nENDDO\nA = 2.0\nEND\n").unwrap();
        let expanded = expand_unit(&unit).unwrap();
        assert_eq!(expanded.stmts.len(), 2); // decl + final assign
    }

    #[test]
    fn expansion_budget_is_enforced() {
        let unit =
            parse("PROGRAM P\nREAL A(8)\nDO I = 1:200000\nA = A + 1.0\nENDDO\nEND\n").unwrap();
        let e = expand_unit(&unit).unwrap_err();
        assert!(e.message.contains("exceeds"));
    }

    #[test]
    fn forall_index_shadows_do_index() {
        let unit =
            parse("PROGRAM P\nREAL A(4)\nDO I = 1:2\nFORALL (I = 1:4) A(I) = I\nENDDO\nEND\n")
                .unwrap();
        let expanded = expand_unit(&unit).unwrap();
        // The FORALL's own I survives (not replaced by the DO constant).
        match &expanded.stmts[1].kind {
            StmtKind::Forall { expr, .. } => {
                assert_eq!(expr, &crate::ast::Expr::Ident("I".into()));
            }
            other => panic!("{other:?}"),
        }
    }
}
