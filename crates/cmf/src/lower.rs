//! Lowering to CMRTS node programs.
//!
//! This back end is where the paper's mapping problem is *created*:
//!
//! * adjacent element-wise statements are **fused** into a single node code
//!   block — one low-level function implementing several source lines (the
//!   one-to-many `cmpe_corr_6_()` situation of Figure 2);
//! * a statement that mixes communication intrinsics with element-wise
//!   arithmetic is split across several blocks — many low-level functions
//!   implementing one line (many-to-one);
//! * both at once yields overlapping block/line sets (many-to-many).
//!
//! Lowering also interns the NV-model vocabulary (line nouns, array nouns,
//! operation verbs) and attaches pre-built sentences to the IR so the
//! dispatcher and collectives can notify the SAS without knowing anything
//! about the source language.

use crate::ast::{BinKind, Expr, Stmt, StmtKind, Unit};
use crate::lex::CompileError;
use crate::sema::{infer_shape, linear_of_index, Intrinsic, Shape, Symbols};
use cmrts_sim::{
    ArrayDecl, ArrayId, BinOpKind, Distribution, Instr, NodeCodeBlock, NodeOp, Operand, Program,
    ReduceKind, ScalarExpr, ScalarId, Step,
};
use pdmap::model::{Namespace, NounId, SentenceId, VerbId};
use std::collections::{BTreeMap, BTreeSet};

/// Options controlling lowering.
#[derive(Clone, Debug)]
pub struct LowerOptions {
    /// Name of the source level of abstraction.
    pub source_level: String,
    /// Name of the base level of abstraction.
    pub base_level: String,
    /// Fuse adjacent element-wise statements into one block (the
    /// optimisation that merges source lines; turning it off is the
    /// ablation used by the mapping benches).
    pub fuse_elementwise: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        Self {
            source_level: "CM Fortran".to_string(),
            base_level: "Base".to_string(),
            fuse_elementwise: true,
        }
    }
}

/// Interned CM Fortran vocabulary, exposed so tools can build questions
/// (`{A Sums}`) against compiled programs.
#[derive(Clone, Debug)]
pub struct CmfVocab {
    /// The source level.
    pub source_level: pdmap::model::LevelId,
    /// The base level.
    pub base_level: pdmap::model::LevelId,
    /// `Executes` (statements; "units are % CPU").
    pub executes: VerbId,
    /// `Active` (array participates in the running block).
    pub active: VerbId,
    /// `Assigns` (element-wise computation).
    pub assigns: VerbId,
    /// `Sums` / `MaxVals` / `MinVals`.
    pub sums: VerbId,
    /// MAXVAL reductions.
    pub maxvals: VerbId,
    /// MINVAL reductions.
    pub minvals: VerbId,
    /// Scans.
    pub scans: VerbId,
    /// Sorts.
    pub sorts: VerbId,
    /// Circular shifts.
    pub rotates: VerbId,
    /// End-off shifts.
    pub shifts: VerbId,
    /// Transposes.
    pub transposes: VerbId,
    /// File reads.
    pub reads: VerbId,
    /// File writes.
    pub writes: VerbId,
    /// Base-level `Executes` (blocks).
    pub base_executes: VerbId,
    /// Base-level `CPU Utilization`.
    pub cpu_utilization: VerbId,
}

impl CmfVocab {
    fn intern(ns: &Namespace, opts: &LowerOptions) -> Self {
        let source_level = ns.level(&opts.source_level);
        let base_level = ns.level(&opts.base_level);
        let v = |name: &str, desc: &str| ns.verb(source_level, name, desc);
        Self {
            executes: v("Executes", "units are \"% CPU\""),
            active: v(
                "Active",
                "array participates in the running node code block",
            ),
            assigns: v("Assigns", "element-wise parallel assignment"),
            sums: v("Sums", "SUM reduction"),
            maxvals: v("MaxVals", "MAXVAL reduction"),
            minvals: v("MinVals", "MINVAL reduction"),
            scans: v("Scans", "parallel-prefix scan"),
            sorts: v("Sorts", "global sort"),
            rotates: v("Rotates", "circular shift (CSHIFT)"),
            shifts: v("Shifts", "end-off shift (EOSHIFT)"),
            transposes: v("Transposes", "2-D transpose"),
            reads: v("Reads", "file read"),
            writes: v("Writes", "file write"),
            // Named `Runs` (not `Executes`) so PIF mapping records, which
            // reference verbs by bare name, stay unambiguous across levels.
            base_executes: ns.verb(base_level, "Runs", "node code block is executing"),
            cpu_utilization: ns.verb(base_level, "CPU Utilization", "units are \"% CPU\""),
            source_level,
            base_level,
        }
    }

    /// The verb for a reduction kind.
    pub fn reduce_verb(&self, kind: ReduceKind) -> VerbId {
        match kind {
            ReduceKind::Sum => self.sums,
            ReduceKind::Max => self.maxvals,
            ReduceKind::Min => self.minvals,
        }
    }
}

/// Listing-facing record of one generated block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockRecord {
    /// Mangled name (without the trailing `()`).
    pub name: String,
    /// Source lines implemented.
    pub lines: Vec<u32>,
    /// Non-temporary arrays touched.
    pub arrays: Vec<String>,
}

/// The result of lowering.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The runnable node program.
    pub program: Program,
    /// Generated block records (for the compiler listing).
    pub blocks: Vec<BlockRecord>,
    /// The interned vocabulary.
    pub vocab: CmfVocab,
    /// `line → noun` for statements.
    pub line_nouns: BTreeMap<u32, NounId>,
    /// `array name → noun`.
    pub array_nouns: BTreeMap<String, NounId>,
}

impl Lowered {
    /// The `{array} <verb>` sentence for building questions against this
    /// program (e.g. `{A} Sums`).
    pub fn array_sentence(&self, ns: &Namespace, array: &str, verb: VerbId) -> Option<SentenceId> {
        let noun = *self.array_nouns.get(array)?;
        Some(ns.say(verb, [noun]))
    }

    /// The `{lineN} Executes` sentence.
    pub fn line_sentence(&self, ns: &Namespace, line: u32) -> Option<SentenceId> {
        let noun = *self.line_nouns.get(&line)?;
        Some(ns.say(self.vocab.executes, [noun]))
    }
}

struct Pending {
    instrs: Vec<Instr>,
    lines: Vec<u32>,
    arrays: BTreeSet<String>,
    free_after: Vec<ArrayId>,
}

impl Pending {
    fn new() -> Self {
        Self {
            instrs: Vec::new(),
            lines: Vec::new(),
            arrays: BTreeSet::new(),
            free_after: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

struct Lowerer<'a> {
    ns: &'a Namespace,
    syms: &'a Symbols,
    opts: &'a LowerOptions,
    unit: &'a Unit,
    unit_name_lower: String,
    vocab: CmfVocab,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<String>,
    steps: Vec<Step>,
    array_ids: BTreeMap<String, ArrayId>,
    scalar_ids: BTreeMap<String, ScalarId>,
    line_nouns: BTreeMap<u32, NounId>,
    array_nouns: BTreeMap<String, NounId>,
    /// Non-temp source arrays feeding each array (temps included as keys).
    provenance: BTreeMap<ArrayId, BTreeSet<String>>,
    temp_counter: u32,
    block_counter: u32,
    pending: Pending,
    blocks: Vec<BlockRecord>,
}

impl<'a> Lowerer<'a> {
    fn new(unit: &'a Unit, syms: &'a Symbols, ns: &'a Namespace, opts: &'a LowerOptions) -> Self {
        Self {
            ns,
            syms,
            opts,
            unit,
            unit_name_lower: unit.name.to_lowercase(),
            vocab: CmfVocab::intern(ns, opts),
            arrays: Vec::new(),
            scalars: Vec::new(),
            steps: Vec::new(),
            array_ids: BTreeMap::new(),
            scalar_ids: BTreeMap::new(),
            line_nouns: BTreeMap::new(),
            array_nouns: BTreeMap::new(),
            provenance: BTreeMap::new(),
            temp_counter: 0,
            block_counter: 0,
            pending: Pending::new(),
            blocks: Vec::new(),
        }
    }

    fn array_id(&self, name: &str) -> ArrayId {
        self.array_ids[name]
    }

    fn scalar_id(&mut self, name: &str) -> ScalarId {
        if let Some(&id) = self.scalar_ids.get(name) {
            return id;
        }
        let id = ScalarId(self.scalars.len() as u32);
        self.scalars.push(name.to_string());
        self.scalar_ids.insert(name.to_string(), id);
        id
    }

    fn fresh_temp_array(&mut self, extents: &[usize], dist: Distribution) -> ArrayId {
        self.temp_counter += 1;
        let name = format!("CMF_TMP{}", self.temp_counter);
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: name.clone(),
            extents: extents.to_vec(),
            dist,
        });
        self.array_ids.insert(name, id);
        self.steps.push(Step::Alloc(id));
        id
    }

    fn fresh_temp_scalar(&mut self) -> ScalarId {
        self.temp_counter += 1;
        self.scalar_id(&format!("CMF_STMP{}", self.temp_counter))
    }

    fn is_temp(&self, id: ArrayId) -> bool {
        self.arrays[id.index()].name.starts_with("CMF_TMP")
    }

    fn next_block_name(&mut self) -> String {
        self.block_counter += 1;
        format!("cmpe_{}_{}_", self.unit_name_lower, self.block_counter)
    }

    fn line_noun(&mut self, line: u32, text: &str) -> NounId {
        if let Some(&n) = self.line_nouns.get(&line) {
            return n;
        }
        let n = self.ns.noun(
            self.vocab.source_level,
            &format!("line{line}"),
            &format!("line #{line}: {text}"),
        );
        self.line_nouns.insert(line, n);
        n
    }

    fn array_noun(&mut self, name: &str) -> NounId {
        if let Some(&n) = self.array_nouns.get(name) {
            return n;
        }
        let desc = match self.syms.array_extents(name) {
            Some(e) => format!("parallel array, extents {e:?}"),
            None => "parallel array".to_string(),
        };
        let n = self.ns.noun(self.vocab.source_level, name, &desc);
        self.array_nouns.insert(name.to_string(), n);
        n
    }

    /// Builds the `{arrays...} <verb>` operation sentence from provenance.
    fn op_sentence(&mut self, verb: VerbId, sources: &BTreeSet<String>) -> Option<SentenceId> {
        if sources.is_empty() {
            return None;
        }
        let nouns: Vec<NounId> = sources
            .iter()
            .map(|s| self.array_noun(s))
            .collect::<Vec<_>>();
        Some(self.ns.say(verb, nouns))
    }

    fn provenance_of(&self, id: ArrayId) -> BTreeSet<String> {
        if self.is_temp(id) {
            self.provenance.get(&id).cloned().unwrap_or_default()
        } else {
            std::iter::once(self.arrays[id.index()].name.clone()).collect()
        }
    }

    /// Emits one node code block built from the given instructions.
    fn emit_block(
        &mut self,
        instrs: Vec<Instr>,
        lines: Vec<u32>,
        line_texts: &BTreeMap<u32, String>,
        arrays: BTreeSet<String>,
        frees: Vec<ArrayId>,
    ) {
        if instrs.is_empty() {
            return;
        }
        let name = self.next_block_name();
        // Base-level block noun + sentence.
        let block_noun = self.ns.noun(
            self.vocab.base_level,
            &format!("{name}()"),
            "compiler generated function, source code not available",
        );
        let block_sentence = self.ns.say(self.vocab.base_executes, [block_noun]);

        let mut line_sentences = Vec::new();
        let mut dedup_lines: Vec<u32> = lines.clone();
        dedup_lines.dedup();
        for &line in &dedup_lines {
            let text = line_texts.get(&line).cloned().unwrap_or_default();
            let noun = self.line_noun(line, &text);
            line_sentences.push(self.ns.say(self.vocab.executes, [noun]));
        }

        // Argument arrays: every array any instruction touches.
        let mut args: Vec<ArrayId> = Vec::new();
        for instr in &instrs {
            for a in op_arrays(&instr.op) {
                if !args.contains(&a) {
                    args.push(a);
                }
            }
        }
        let mut array_sentences = Vec::new();
        for &a in &args {
            if !self.is_temp(a) {
                let name = self.arrays[a.index()].name.clone();
                let noun = self.array_noun(&name);
                array_sentences.push((a, self.ns.say(self.vocab.active, [noun])));
            }
        }

        self.blocks.push(BlockRecord {
            name: name.clone(),
            lines: dedup_lines.clone(),
            arrays: arrays.iter().cloned().collect(),
        });
        self.steps.push(Step::Ncb(NodeCodeBlock {
            name,
            lines: dedup_lines,
            args,
            block_sentence: Some(block_sentence),
            line_sentences,
            array_sentences,
            body: instrs,
        }));
        for t in frees {
            self.steps.push(Step::Free(t));
        }
    }

    fn flush_pending(&mut self, line_texts: &BTreeMap<u32, String>) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::replace(&mut self.pending, Pending::new());
        self.emit_block(
            pending.instrs,
            pending.lines,
            line_texts,
            pending.arrays,
            pending.free_after,
        );
    }

    /// Lowers an array-valued expression; returns the array holding the
    /// result. `dest` is used for the outermost value when provided.
    /// Element-wise steps accumulate into `ew`; communication pieces flush
    /// and emit standalone blocks.
    #[allow(clippy::too_many_arguments)]
    fn lower_array_expr(
        &mut self,
        expr: &Expr,
        dest: Option<ArrayId>,
        line: u32,
        line_texts: &BTreeMap<u32, String>,
        ew: &mut Vec<Instr>,
        stmt_arrays: &mut BTreeSet<String>,
        temps: &mut Vec<ArrayId>,
    ) -> Result<ArrayId, CompileError> {
        let shape = infer_shape(expr, self.syms, None, line)?;
        let Shape::Array(extents) = shape else {
            unreachable!("lower_array_expr called on scalar expression");
        };
        let dist = Distribution::Block;
        match expr {
            Expr::Ident(name) => {
                let src = self.array_id(name);
                stmt_arrays.insert(name.clone());
                match dest {
                    Some(d) if d != src => {
                        let sentence =
                            self.op_sentence(self.vocab.assigns, &self.provenance_of(src));
                        ew.push(Instr {
                            op: NodeOp::Copy { dst: d, src },
                            sentence,
                        });
                        Ok(d)
                    }
                    Some(d) => Ok(d),
                    None => Ok(src),
                }
            }
            Expr::Neg(inner) => {
                let d = match dest {
                    Some(d) => d,
                    None => {
                        let t = self.fresh_temp_array(&extents, dist);
                        temps.push(t);
                        t
                    }
                };
                let src =
                    self.lower_array_expr(inner, None, line, line_texts, ew, stmt_arrays, temps)?;
                let prov = self.provenance_of(src);
                let sentence = self.op_sentence(self.vocab.assigns, &prov);
                self.provenance.insert(d, prov);
                ew.push(Instr {
                    op: NodeOp::BinOp {
                        dst: d,
                        a: Operand::Const(-1.0),
                        b: Operand::Array(src),
                        op: BinOpKind::Mul,
                    },
                    sentence,
                });
                Ok(d)
            }
            Expr::Bin(op, a, b) => {
                let d = match dest {
                    Some(d) => d,
                    None => {
                        let t = self.fresh_temp_array(&extents, dist);
                        temps.push(t);
                        t
                    }
                };
                let oa = self.lower_operand(a, line, line_texts, ew, stmt_arrays, temps)?;
                let ob = self.lower_operand(b, line, line_texts, ew, stmt_arrays, temps)?;
                let kind = match op {
                    BinKind::Add => BinOpKind::Add,
                    BinKind::Sub => BinOpKind::Sub,
                    BinKind::Mul => BinOpKind::Mul,
                    BinKind::Div => BinOpKind::Div,
                };
                let mut prov = BTreeSet::new();
                for o in [&oa, &ob] {
                    if let Operand::Array(x) = o {
                        prov.extend(self.provenance_of(*x));
                    }
                }
                let sentence = self.op_sentence(self.vocab.assigns, &prov);
                self.provenance.insert(d, prov);
                ew.push(Instr {
                    op: NodeOp::BinOp {
                        dst: d,
                        a: oa,
                        b: ob,
                        op: kind,
                    },
                    sentence,
                });
                Ok(d)
            }
            Expr::Call { name, args } => {
                let intr = Intrinsic::by_name(name).expect("checked by sema");
                match intr {
                    Intrinsic::EMax | Intrinsic::EMin => {
                        let d = match dest {
                            Some(d) => d,
                            None => {
                                let t = self.fresh_temp_array(&extents, dist);
                                temps.push(t);
                                t
                            }
                        };
                        let oa =
                            self.lower_operand(&args[0], line, line_texts, ew, stmt_arrays, temps)?;
                        let ob =
                            self.lower_operand(&args[1], line, line_texts, ew, stmt_arrays, temps)?;
                        let mut prov = BTreeSet::new();
                        for o in [&oa, &ob] {
                            if let Operand::Array(x) = o {
                                prov.extend(self.provenance_of(*x));
                            }
                        }
                        let sentence = self.op_sentence(self.vocab.assigns, &prov);
                        self.provenance.insert(d, prov);
                        ew.push(Instr {
                            op: NodeOp::BinOp {
                                dst: d,
                                a: oa,
                                b: ob,
                                op: if intr == Intrinsic::EMax {
                                    BinOpKind::Max
                                } else {
                                    BinOpKind::Min
                                },
                            },
                            sentence,
                        });
                        Ok(d)
                    }
                    Intrinsic::Scan(_)
                    | Intrinsic::Sort
                    | Intrinsic::CShift
                    | Intrinsic::EoShift
                    | Intrinsic::Transpose => {
                        // Communication piece: its own block. First lower
                        // the inner array, flushing element-wise work that
                        // produces it.
                        let src = self.lower_array_expr(
                            &args[0],
                            None,
                            line,
                            line_texts,
                            ew,
                            stmt_arrays,
                            temps,
                        )?;
                        // Flush accumulated element-wise work (it must run
                        // before the communication op).
                        if !ew.is_empty() {
                            let instrs = std::mem::take(ew);
                            self.pending.instrs.extend(instrs);
                            if !self.pending.lines.contains(&line) {
                                self.pending.lines.push(line);
                            }
                            self.pending.arrays.extend(stmt_arrays.iter().cloned());
                            self.flush_pending(line_texts);
                        } else {
                            self.flush_pending(line_texts);
                        }
                        let d = match dest {
                            Some(d) => d,
                            None => {
                                let t = self.fresh_temp_array(&extents, dist);
                                temps.push(t);
                                t
                            }
                        };
                        let prov = self.provenance_of(src);
                        let (op, verb) = match intr {
                            Intrinsic::Scan(kind) => {
                                (NodeOp::Scan { kind, src, dst: d }, self.vocab.scans)
                            }
                            Intrinsic::Sort => (NodeOp::Sort { dst: d, src }, self.vocab.sorts),
                            Intrinsic::CShift | Intrinsic::EoShift => {
                                let offset = const_int(&args[1]);
                                let dim = args
                                    .get(2)
                                    .map(|e| (const_int(e) - 1).max(0) as usize)
                                    .unwrap_or(0);
                                (
                                    NodeOp::Shift {
                                        dst: d,
                                        src,
                                        offset,
                                        circular: intr == Intrinsic::CShift,
                                        dim,
                                    },
                                    if intr == Intrinsic::CShift {
                                        self.vocab.rotates
                                    } else {
                                        self.vocab.shifts
                                    },
                                )
                            }
                            Intrinsic::Transpose => {
                                (NodeOp::Transpose { dst: d, src }, self.vocab.transposes)
                            }
                            _ => unreachable!(),
                        };
                        let sentence = self.op_sentence(verb, &prov);
                        self.provenance.insert(d, prov.clone());
                        let mut arrays: BTreeSet<String> = prov;
                        if !self.is_temp(d) {
                            arrays.insert(self.arrays[d.index()].name.clone());
                        }
                        self.emit_block(
                            vec![Instr { op, sentence }],
                            vec![line],
                            line_texts,
                            arrays,
                            Vec::new(),
                        );
                        Ok(d)
                    }
                    Intrinsic::Reduce(_) => unreachable!("reduce is scalar-valued"),
                }
            }
            Expr::Num(_) => unreachable!("scalar in lower_array_expr"),
        }
    }

    /// Lowers an expression to an element-wise operand (array, scalar, or
    /// constant).
    fn lower_operand(
        &mut self,
        expr: &Expr,
        line: u32,
        line_texts: &BTreeMap<u32, String>,
        ew: &mut Vec<Instr>,
        stmt_arrays: &mut BTreeSet<String>,
        temps: &mut Vec<ArrayId>,
    ) -> Result<Operand, CompileError> {
        match infer_shape(expr, self.syms, None, line)? {
            Shape::Array(_) => {
                let id =
                    self.lower_array_expr(expr, None, line, line_texts, ew, stmt_arrays, temps)?;
                if !self.is_temp(id) {
                    stmt_arrays.insert(self.arrays[id.index()].name.clone());
                }
                Ok(Operand::Array(id))
            }
            Shape::Scalar => {
                match expr {
                    Expr::Num(n) => Ok(Operand::Const(*n)),
                    _ => {
                        // A runtime scalar expression: compute it on the CP
                        // into a temp scalar (lowering any reductions).
                        let (sexpr, needs_cp_step) =
                            self.lower_scalar_expr(expr, line, line_texts, stmt_arrays)?;
                        match sexpr {
                            ScalarExpr::Const(c) => Ok(Operand::Const(c)),
                            ScalarExpr::Scalar(s) if !needs_cp_step => Ok(Operand::Scalar(s)),
                            other => {
                                let t = self.fresh_temp_scalar();
                                self.steps.push(Step::ScalarAssign {
                                    dst: t,
                                    expr: other,
                                });
                                Ok(Operand::Scalar(t))
                            }
                        }
                    }
                }
            }
        }
    }

    /// Lowers a scalar-valued expression to a CP [`ScalarExpr`], emitting
    /// reduction blocks for embedded SUM/MAXVAL/MINVAL. Returns the
    /// expression plus whether it is compound (needs a CP step if used as
    /// an operand).
    fn lower_scalar_expr(
        &mut self,
        expr: &Expr,
        line: u32,
        line_texts: &BTreeMap<u32, String>,
        stmt_arrays: &mut BTreeSet<String>,
    ) -> Result<(ScalarExpr, bool), CompileError> {
        match expr {
            Expr::Num(n) => Ok((ScalarExpr::Const(*n), false)),
            Expr::Ident(name) => Ok((ScalarExpr::Scalar(self.scalar_id(name)), false)),
            Expr::Neg(e) => {
                let (inner, _) = self.lower_scalar_expr(e, line, line_texts, stmt_arrays)?;
                Ok((
                    ScalarExpr::Bin(
                        BinOpKind::Mul,
                        Box::new(ScalarExpr::Const(-1.0)),
                        Box::new(inner),
                    ),
                    true,
                ))
            }
            Expr::Bin(op, a, b) => {
                let (ea, _) = self.lower_scalar_expr(a, line, line_texts, stmt_arrays)?;
                let (eb, _) = self.lower_scalar_expr(b, line, line_texts, stmt_arrays)?;
                let kind = match op {
                    BinKind::Add => BinOpKind::Add,
                    BinKind::Sub => BinOpKind::Sub,
                    BinKind::Mul => BinOpKind::Mul,
                    BinKind::Div => BinOpKind::Div,
                };
                Ok((ScalarExpr::Bin(kind, Box::new(ea), Box::new(eb)), true))
            }
            Expr::Call { name, args } => {
                let intr = Intrinsic::by_name(name).expect("checked by sema");
                let Intrinsic::Reduce(kind) = intr else {
                    unreachable!("array-valued intrinsic in scalar context");
                };
                // Lower the argument array (element-wise work included).
                let mut ew = Vec::new();
                let mut temps = Vec::new();
                let src = self.lower_array_expr(
                    &args[0],
                    None,
                    line,
                    line_texts,
                    &mut ew,
                    stmt_arrays,
                    &mut temps,
                )?;
                if !ew.is_empty() {
                    self.pending.instrs.extend(ew);
                    if !self.pending.lines.contains(&line) {
                        self.pending.lines.push(line);
                    }
                    self.pending.arrays.extend(stmt_arrays.iter().cloned());
                }
                self.flush_pending(line_texts);
                let dst = self.fresh_temp_scalar();
                let prov = self.provenance_of(src);
                stmt_arrays.extend(prov.iter().cloned());
                let sentence = self.op_sentence(self.vocab.reduce_verb(kind), &prov);
                self.emit_block(
                    vec![Instr {
                        op: NodeOp::Reduce { kind, src, dst },
                        sentence,
                    }],
                    vec![line],
                    line_texts,
                    prov,
                    temps,
                );
                Ok((ScalarExpr::Scalar(dst), false))
            }
        }
    }

    fn lower_stmt(
        &mut self,
        stmt: &Stmt,
        line_texts: &BTreeMap<u32, String>,
    ) -> Result<(), CompileError> {
        let line = stmt.line;
        match &stmt.kind {
            // Arrays are statically allocated by the pre-pass (Fortran
            // style); only scalar declarations remain meaningful here.
            StmtKind::Decl { entries } => {
                for e in entries {
                    if e.extents.is_empty() {
                        self.scalar_id(&e.name);
                    }
                }
                Ok(())
            }
            StmtKind::Dist { .. } => Ok(()), // consumed by sema
            StmtKind::Call { name } => {
                let sub = self.unit.subroutine(name).expect("checked by sema");
                for stmt in &sub.stmts {
                    self.lower_stmt(stmt, line_texts)?;
                }
                Ok(())
            }
            StmtKind::Assign { target, expr } => {
                if self.syms.is_array(target) {
                    let dst = self.array_id(target);
                    let mut stmt_arrays: BTreeSet<String> = BTreeSet::new();
                    stmt_arrays.insert(target.clone());
                    match infer_shape(expr, self.syms, None, line)? {
                        Shape::Array(_) => {
                            let mut ew = Vec::new();
                            let mut temps = Vec::new();
                            self.lower_array_expr(
                                expr,
                                Some(dst),
                                line,
                                line_texts,
                                &mut ew,
                                &mut stmt_arrays,
                                &mut temps,
                            )?;
                            self.queue_elementwise(ew, line, &stmt_arrays, temps, line_texts);
                        }
                        Shape::Scalar => {
                            // Broadcast fill.
                            let mut stmt_arrays2 = stmt_arrays.clone();
                            let value = match expr {
                                Expr::Num(n) => Operand::Const(*n),
                                _ => {
                                    let mut ew_unused = Vec::new();
                                    let mut temps_unused = Vec::new();
                                    self.lower_operand(
                                        expr,
                                        line,
                                        line_texts,
                                        &mut ew_unused,
                                        &mut stmt_arrays2,
                                        &mut temps_unused,
                                    )?
                                }
                            };
                            let sentence = self.op_sentence(
                                self.vocab.assigns,
                                &std::iter::once(target.clone()).collect(),
                            );
                            self.queue_elementwise(
                                vec![Instr {
                                    op: NodeOp::Fill { dst, value },
                                    sentence,
                                }],
                                line,
                                &stmt_arrays2,
                                Vec::new(),
                                line_texts,
                            );
                        }
                    }
                } else {
                    // Scalar assignment on the CP.
                    let mut stmt_arrays = BTreeSet::new();
                    let (sexpr, _) =
                        self.lower_scalar_expr(expr, line, line_texts, &mut stmt_arrays)?;
                    let dst = self.scalar_id(target);
                    self.steps.push(Step::ScalarAssign { dst, expr: sexpr });
                }
                Ok(())
            }
            StmtKind::Forall {
                index,
                target,
                expr,
                ..
            } => {
                let (coeff, offset) = linear_of_index(expr, index, line)?;
                let dst = self.array_id(target);
                let sentence = self.op_sentence(
                    self.vocab.assigns,
                    &std::iter::once(target.clone()).collect(),
                );
                self.queue_elementwise(
                    vec![Instr {
                        op: NodeOp::Ramp {
                            dst,
                            // value(I) with I = 1-based index; the Ramp op
                            // uses 0-based global indices.
                            start: coeff + offset,
                            step: coeff,
                        },
                        sentence,
                    }],
                    line,
                    &std::iter::once(target.clone()).collect(),
                    Vec::new(),
                    line_texts,
                );
                Ok(())
            }
            StmtKind::Where {
                lhs,
                cmp,
                rhs,
                target,
                expr,
            } => {
                let dst = self.array_id(target);
                let extents = self
                    .syms
                    .array_extents(target)
                    .expect("checked by sema")
                    .to_vec();
                let mut ew = Vec::new();
                let mut temps = Vec::new();
                let mut stmt_arrays: BTreeSet<String> = BTreeSet::new();
                stmt_arrays.insert(target.clone());
                let oa = self.lower_operand(
                    lhs,
                    line,
                    line_texts,
                    &mut ew,
                    &mut stmt_arrays,
                    &mut temps,
                )?;
                let ob = self.lower_operand(
                    rhs,
                    line,
                    line_texts,
                    &mut ew,
                    &mut stmt_arrays,
                    &mut temps,
                )?;
                let mask = self.fresh_temp_array(&extents, Distribution::Block);
                temps.push(mask);
                let sentence = self.op_sentence(self.vocab.assigns, &stmt_arrays.clone());
                ew.push(Instr {
                    op: NodeOp::Compare {
                        dst: mask,
                        a: oa,
                        b: ob,
                        cmp: *cmp,
                    },
                    sentence,
                });
                let val = self.lower_operand(
                    expr,
                    line,
                    line_texts,
                    &mut ew,
                    &mut stmt_arrays,
                    &mut temps,
                )?;
                let sentence = self.op_sentence(self.vocab.assigns, &stmt_arrays.clone());
                ew.push(Instr {
                    op: NodeOp::Select {
                        dst,
                        mask,
                        on_true: val,
                        on_false: Operand::Array(dst),
                    },
                    sentence,
                });
                self.queue_elementwise(ew, line, &stmt_arrays.clone(), temps, line_texts);
                Ok(())
            }
            StmtKind::Do { .. } => {
                unreachable!("DO loops are expanded before lowering")
            }
            StmtKind::Read { name } | StmtKind::Write { name } => {
                self.flush_pending(line_texts);
                let write = matches!(stmt.kind, StmtKind::Write { .. });
                let id = self.array_id(name);
                let bytes = self.arrays[id.index()].total_elems() as u64 * 8;
                let verb = if write {
                    self.vocab.writes
                } else {
                    self.vocab.reads
                };
                let prov: BTreeSet<String> = std::iter::once(name.clone()).collect();
                let sentence = self.op_sentence(verb, &prov);
                self.emit_block(
                    vec![Instr {
                        op: NodeOp::FileIo { bytes, write },
                        sentence,
                    }],
                    vec![line],
                    line_texts,
                    prov,
                    Vec::new(),
                );
                Ok(())
            }
        }
    }

    /// Adds element-wise instructions to the fusion buffer (or emits them
    /// immediately when fusion is disabled).
    fn queue_elementwise(
        &mut self,
        instrs: Vec<Instr>,
        line: u32,
        arrays: &BTreeSet<String>,
        temps: Vec<ArrayId>,
        line_texts: &BTreeMap<u32, String>,
    ) {
        if instrs.is_empty() {
            for t in temps {
                self.steps.push(Step::Free(t));
            }
            return;
        }
        self.pending.instrs.extend(instrs);
        if !self.pending.lines.contains(&line) {
            self.pending.lines.push(line);
        }
        self.pending.arrays.extend(arrays.iter().cloned());
        self.pending.free_after.extend(temps);
        if !self.opts.fuse_elementwise {
            self.flush_pending(line_texts);
        }
    }
}

fn const_int(e: &Expr) -> i64 {
    match e {
        Expr::Num(n) => *n as i64,
        Expr::Neg(inner) => -const_int(inner),
        _ => unreachable!("checked by sema"),
    }
}

fn op_arrays(op: &NodeOp) -> Vec<ArrayId> {
    match *op {
        NodeOp::Fill { dst, .. } | NodeOp::Ramp { dst, .. } => vec![dst],
        NodeOp::Copy { dst, src } => vec![dst, src],
        NodeOp::BinOp { dst, a, b, .. } => {
            let mut v = vec![dst];
            if let Operand::Array(x) = a {
                v.push(x);
            }
            if let Operand::Array(y) = b {
                v.push(y);
            }
            v
        }
        NodeOp::Reduce { src, .. } => vec![src],
        NodeOp::Scan { src, dst, .. }
        | NodeOp::Shift { dst, src, .. }
        | NodeOp::Transpose { dst, src }
        | NodeOp::Sort { dst, src } => vec![dst, src],
        NodeOp::FileIo { .. } => vec![],
        NodeOp::Compare { dst, a, b, .. } => {
            let mut v = vec![dst];
            if let Operand::Array(x) = a {
                v.push(x);
            }
            if let Operand::Array(y) = b {
                v.push(y);
            }
            v
        }
        NodeOp::Select {
            dst,
            mask,
            on_true,
            on_false,
        } => {
            let mut v = vec![dst, mask];
            if let Operand::Array(x) = on_true {
                v.push(x);
            }
            if let Operand::Array(y) = on_false {
                v.push(y);
            }
            v
        }
    }
}

/// Lowers a checked unit to a node program.
pub fn lower(
    unit: &Unit,
    syms: &Symbols,
    ns: &Namespace,
    opts: &LowerOptions,
    source: &str,
) -> Result<Lowered, CompileError> {
    let line_texts: BTreeMap<u32, String> = source
        .lines()
        .enumerate()
        .map(|(i, l)| ((i + 1) as u32, l.trim().to_string()))
        .collect();
    let mut lw = Lowerer::new(unit, syms, ns, opts);
    // Static allocation pre-pass: every declared array (main or
    // subroutine) is allocated up front, so repeated CALLs never
    // re-allocate.
    for name in &syms.array_order {
        let extents = syms.array_extents(name).expect("declared array");
        let id = ArrayId(lw.arrays.len() as u32);
        lw.arrays.push(ArrayDecl {
            name: name.clone(),
            extents: extents.to_vec(),
            dist: syms.array_dist(name).unwrap_or(Distribution::Block),
        });
        lw.array_ids.insert(name.clone(), id);
        lw.steps.push(Step::Alloc(id));
        lw.array_noun(name);
    }
    for stmt in &unit.stmts {
        lw.lower_stmt(stmt, &line_texts)?;
    }
    lw.flush_pending(&line_texts);
    let program = Program {
        name: format!("{}.fcm", lw.unit_name_lower),
        arrays: lw.arrays,
        scalars: lw.scalars,
        steps: lw.steps,
    };
    program
        .validate()
        .map_err(|e| CompileError::new(0, format!("internal lowering error: {e}")))?;
    Ok(Lowered {
        program,
        blocks: lw.blocks,
        vocab: lw.vocab,
        line_nouns: lw.line_nouns,
        array_nouns: lw.array_nouns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyze;

    fn lowered(src: &str) -> Lowered {
        let unit = parse(src).unwrap();
        let syms = analyze(&unit).unwrap();
        let ns = Namespace::new();
        lower(&unit, &syms, &ns, &LowerOptions::default(), src).unwrap()
    }

    fn lowered_opts(src: &str, opts: &LowerOptions) -> Lowered {
        let unit = parse(src).unwrap();
        let syms = analyze(&unit).unwrap();
        let ns = Namespace::new();
        lower(&unit, &syms, &ns, opts, src).unwrap()
    }

    fn ncbs(l: &Lowered) -> Vec<&NodeCodeBlock> {
        l.program
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Ncb(b) => Some(b),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fusion_merges_adjacent_elementwise_lines() {
        // Two element-wise statements -> ONE block implementing both lines:
        // the one-to-many situation of Figure 2.
        let l = lowered("PROGRAM CORR\nREAL A(64), B(64)\nA = 1.5\nB = 2.5\nEND\n");
        let blocks = ncbs(&l);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].lines, vec![3, 4]);
        assert_eq!(blocks[0].name, "cmpe_corr_1_");
        assert_eq!(blocks[0].line_sentences.len(), 2);
    }

    #[test]
    fn fusion_off_keeps_lines_separate() {
        let opts = LowerOptions {
            fuse_elementwise: false,
            ..LowerOptions::default()
        };
        let l = lowered_opts(
            "PROGRAM CORR\nREAL A(64), B(64)\nA = 1.5\nB = 2.5\nEND\n",
            &opts,
        );
        assert_eq!(ncbs(&l).len(), 2);
    }

    #[test]
    fn mixed_statement_splits_into_many_blocks() {
        // C = CSHIFT(A, 1) + B: a shift block + an element-wise block, both
        // implementing line 3 (many-to-one).
        let l = lowered("PROGRAM P\nREAL A(64), B(64), C(64)\nC = CSHIFT(A, 1) + B\nEND\n");
        let blocks = ncbs(&l);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.lines == vec![3]));
        assert!(blocks[0]
            .body
            .iter()
            .any(|i| matches!(i.op, NodeOp::Shift { circular: true, .. })));
        assert!(blocks[1]
            .body
            .iter()
            .any(|i| matches!(i.op, NodeOp::BinOp { .. })));
    }

    #[test]
    fn reduction_produces_reduce_block_and_cp_assign() {
        let l = lowered("PROGRAM P\nREAL A(64)\nA = 1.0\nASUM = SUM(A)\nEND\n");
        let blocks = ncbs(&l);
        assert_eq!(blocks.len(), 2); // fill block + reduce block
        let reduce = blocks[1];
        assert!(matches!(
            reduce.body[0].op,
            NodeOp::Reduce {
                kind: ReduceKind::Sum,
                ..
            }
        ));
        assert!(
            reduce.body[0].sentence.is_some(),
            "reduce carries {{A}} Sums"
        );
        // Final CP assignment of ASUM from the temp scalar.
        assert!(l
            .program
            .steps
            .iter()
            .any(|s| matches!(s, Step::ScalarAssign { .. })));
        assert!(l.program.scalars.iter().any(|s| s == "ASUM"));
    }

    #[test]
    fn figure4_program_lowers_to_two_reductions() {
        let src = "PROGRAM HPFEX\nREAL A(1024), B(1024)\nA = 1.0\nB = 2.0\nASUM = SUM(A)\nBMAX = MAXVAL(B)\nEND\n";
        let l = lowered(src);
        let blocks = ncbs(&l);
        // fused fill block + SUM block + MAXVAL block.
        assert_eq!(blocks.len(), 3);
        assert!(matches!(
            blocks[1].body[0].op,
            NodeOp::Reduce {
                kind: ReduceKind::Sum,
                ..
            }
        ));
        assert!(matches!(
            blocks[2].body[0].op,
            NodeOp::Reduce {
                kind: ReduceKind::Max,
                ..
            }
        ));
    }

    #[test]
    fn forall_becomes_ramp() {
        let l = lowered("PROGRAM P\nREAL A(8)\nFORALL (I = 1:8) A(I) = 2*I + 1\nEND\n");
        let blocks = ncbs(&l);
        assert_eq!(blocks.len(), 1);
        match blocks[0].body[0].op {
            NodeOp::Ramp { start, step, .. } => {
                assert_eq!(start, 3.0); // 2*1 + 1
                assert_eq!(step, 2.0);
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn read_write_lower_to_fileio_blocks() {
        let l = lowered("PROGRAM P\nREAL A(16)\nREAD A\nWRITE A\nEND\n");
        let blocks = ncbs(&l);
        assert_eq!(blocks.len(), 2);
        assert!(matches!(
            blocks[0].body[0].op,
            NodeOp::FileIo {
                bytes: 128,
                write: false
            }
        ));
        assert!(matches!(
            blocks[1].body[0].op,
            NodeOp::FileIo {
                bytes: 128,
                write: true
            }
        ));
    }

    #[test]
    fn temps_are_allocated_and_freed() {
        let l = lowered("PROGRAM P\nREAL A(32)\nX = SUM(A * 2.0)\nEND\n");
        let allocs = l
            .program
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Alloc(_)))
            .count();
        let frees = l
            .program
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Free(_)))
            .count();
        assert_eq!(allocs, 2); // A + temp
        assert_eq!(frees, 1); // temp freed after the reduction
        assert!(l
            .program
            .arrays
            .iter()
            .any(|a| a.name.starts_with("CMF_TMP")));
    }

    #[test]
    fn block_args_and_array_sentences_exclude_temps() {
        let l = lowered("PROGRAM P\nREAL A(32), B(32)\nB = A * 2.0 + 1.0\nEND\n");
        let blocks = ncbs(&l);
        assert_eq!(blocks.len(), 1);
        let b = blocks[0];
        // array sentences only for A and B.
        assert_eq!(b.array_sentences.len(), 2);
        assert!(!b.args.is_empty());
    }

    #[test]
    fn dist_directive_reaches_ir() {
        let l = lowered("PROGRAM P\nREAL A(8)\nDIST A CYCLIC\nA = 1.0\nEND\n");
        assert_eq!(l.program.arrays[0].dist, Distribution::Cyclic);
    }

    #[test]
    fn sentences_are_queryable() {
        let src = "PROGRAM P\nREAL A(8)\nASUM = SUM(A)\nEND\n";
        let unit = parse(src).unwrap();
        let syms = analyze(&unit).unwrap();
        let ns = Namespace::new();
        let l = lower(&unit, &syms, &ns, &LowerOptions::default(), src).unwrap();
        let s = l.array_sentence(&ns, "A", l.vocab.sums).unwrap();
        assert_eq!(ns.render_sentence(s), "CM Fortran: {A} Sums");
        assert!(l.line_sentence(&ns, 3).is_some());
        assert!(l.line_sentence(&ns, 99).is_none());
    }

    #[test]
    fn scalar_arithmetic_with_reductions() {
        let l = lowered("PROGRAM P\nREAL A(8)\nA = 1.0\nX = SUM(A) / 8.0 + MAXVAL(A)\nEND\n");
        // Two reduce blocks.
        let reduces = ncbs(&l)
            .iter()
            .filter(|b| matches!(b.body[0].op, NodeOp::Reduce { .. }))
            .count();
        assert_eq!(reduces, 2);
    }

    #[test]
    fn transpose_lowering() {
        let l = lowered("PROGRAM P\nREAL M(4,8), T(8,4)\nM = 1.0\nT = TRANSPOSE(M)\nEND\n");
        let blocks = ncbs(&l);
        assert!(blocks
            .iter()
            .any(|b| matches!(b.body[0].op, NodeOp::Transpose { .. })));
    }

    #[test]
    fn self_copy_is_elided() {
        let l = lowered("PROGRAM P\nREAL A(8)\nA = 1.0\nA = A\nEND\n");
        // The A = A statement adds no instruction.
        let total_instrs: usize = ncbs(&l).iter().map(|b| b.body.len()).sum();
        assert_eq!(total_instrs, 1);
    }

    #[test]
    fn block_names_are_sequential_and_mangled() {
        let l = lowered("PROGRAM CORR\nREAL A(8)\nA = 1.0\nX = SUM(A)\nA = 2.0\nEND\n");
        let names: Vec<&str> = l.blocks.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["cmpe_corr_1_", "cmpe_corr_2_", "cmpe_corr_3_"]);
    }
}
