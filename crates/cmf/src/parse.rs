//! Recursive-descent parser for the CM Fortran-like language.

use crate::ast::{BinKind, DeclEntry, Expr, Stmt, StmtKind, Unit};
use crate::lex::{lex, CompileError, Tok, Token};
use cmrts_sim::Distribution;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<(), CompileError> {
        match self.next() {
            Some(t) if &t.kind == want => Ok(()),
            Some(t) => Err(CompileError::new(
                t.line,
                format!("expected {want}, found {}", t.kind),
            )),
            None => Err(CompileError::new(
                0,
                format!("expected {want}, found end of input"),
            )),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, u32), CompileError> {
        match self.next() {
            Some(Token {
                kind: Tok::Ident(s),
                line,
            }) => Ok((s, line)),
            Some(t) => Err(CompileError::new(
                t.line,
                format!("expected {what}, found {}", t.kind),
            )),
            None => Err(CompileError::new(
                0,
                format!("expected {what}, found end of input"),
            )),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, CompileError> {
        match self.next() {
            Some(Token {
                kind: Tok::Num(n), ..
            }) => Ok(n),
            Some(Token {
                kind: Tok::Minus, ..
            }) => Ok(-self.number(what)?),
            Some(t) => Err(CompileError::new(
                t.line,
                format!("expected {what}, found {}", t.kind),
            )),
            None => Err(CompileError::new(
                0,
                format!("expected {what}, found end of input"),
            )),
        }
    }

    fn skip_newlines(&mut self) {
        while self.peek() == Some(&Tok::Newline) {
            self.pos += 1;
        }
    }

    fn end_statement(&mut self) -> Result<(), CompileError> {
        match self.next() {
            None => Ok(()),
            Some(t) if t.kind == Tok::Newline => Ok(()),
            Some(t) => Err(CompileError::new(
                t.line,
                format!("unexpected {} after statement", t.kind),
            )),
        }
    }
}

/// Parses a compilation unit.
pub fn parse(src: &str) -> Result<Unit, CompileError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.skip_newlines();

    let (kw, line) = p.ident("'PROGRAM'")?;
    if kw != "PROGRAM" {
        return Err(CompileError::new(
            line,
            format!("expected 'PROGRAM', found '{kw}'"),
        ));
    }
    let (name, _) = p.ident("program name")?;
    p.end_statement()?;

    let mut subroutines = Vec::new();
    let mut stmts = Vec::new();
    loop {
        p.skip_newlines();
        let Some(tok) = p.peek() else {
            return Err(CompileError::new(0, "missing END"));
        };
        let line = p.line();
        match tok {
            Tok::Ident(id) if id == "END" => {
                p.next();
                break;
            }
            Tok::Ident(id) if id == "ENDSUB" => {
                return Err(CompileError::new(line, "ENDSUB outside a SUBROUTINE"));
            }
            Tok::Ident(id) if id == "ENDDO" => {
                return Err(CompileError::new(line, "ENDDO outside a DO loop"));
            }
            Tok::Ident(id) if id == "SUBROUTINE" => {
                p.next();
                let (sub_name, _) = p.ident("subroutine name")?;
                p.end_statement()?;
                let mut body = Vec::new();
                loop {
                    p.skip_newlines();
                    match p.peek() {
                        None => {
                            return Err(CompileError::new(
                                line,
                                format!("SUBROUTINE {sub_name} is missing ENDSUB"),
                            ))
                        }
                        Some(Tok::Ident(id)) if id == "ENDSUB" => {
                            p.next();
                            p.end_statement()?;
                            break;
                        }
                        Some(Tok::Ident(id)) if id == "SUBROUTINE" => {
                            return Err(CompileError::new(p.line(), "subroutines cannot nest"))
                        }
                        Some(Tok::Ident(id)) if id == "END" => {
                            return Err(CompileError::new(
                                p.line(),
                                format!("SUBROUTINE {sub_name} is missing ENDSUB"),
                            ))
                        }
                        _ => body.push(parse_one(&mut p)?),
                    }
                }
                subroutines.push(crate::ast::Subroutine {
                    name: sub_name,
                    line,
                    stmts: body,
                });
            }
            _ => stmts.push(parse_one(&mut p)?),
        }
    }
    Ok(Unit {
        name,
        subroutines,
        stmts,
    })
}

/// Parses one simple statement (not SUBROUTINE/END/ENDSUB).
fn parse_one(p: &mut Parser) -> Result<Stmt, CompileError> {
    let Some(tok) = p.peek() else {
        return Err(CompileError::new(
            0,
            "expected a statement, found end of input",
        ));
    };
    let line = p.line();
    match tok {
        Tok::Ident(id) if id == "REAL" => {
            p.next();
            let mut entries = Vec::new();
            loop {
                let (name, _) = p.ident("declaration name")?;
                let mut extents = Vec::new();
                if p.peek() == Some(&Tok::LParen) {
                    p.next();
                    loop {
                        let n = p.number("array extent")?;
                        if n < 1.0 || n.fract() != 0.0 {
                            return Err(CompileError::new(
                                line,
                                format!("array extent must be a positive integer, got {n}"),
                            ));
                        }
                        extents.push(n as usize);
                        match p.next() {
                            Some(t) if t.kind == Tok::Comma => continue,
                            Some(t) if t.kind == Tok::RParen => break,
                            other => {
                                return Err(CompileError::new(
                                    line,
                                    format!(
                                        "expected ',' or ')' in extents, found {:?}",
                                        other.map(|t| t.kind)
                                    ),
                                ))
                            }
                        }
                    }
                    if extents.len() > 2 {
                        return Err(CompileError::new(
                            line,
                            "only 1-D and 2-D arrays are supported",
                        ));
                    }
                }
                entries.push(DeclEntry { name, extents });
                if p.peek() == Some(&Tok::Comma) {
                    p.next();
                    continue;
                }
                break;
            }
            p.end_statement()?;
            Ok(Stmt {
                line,
                kind: StmtKind::Decl { entries },
            })
        }
        Tok::Ident(id) if id == "DIST" => {
            p.next();
            let (name, _) = p.ident("array name")?;
            let (d, dl) = p.ident("distribution")?;
            let dist = Distribution::parse(&d.to_lowercase()).ok_or_else(|| {
                CompileError::new(dl, format!("unknown distribution '{d}' (BLOCK|CYCLIC)"))
            })?;
            p.end_statement()?;
            Ok(Stmt {
                line,
                kind: StmtKind::Dist { name, dist },
            })
        }
        Tok::Ident(id) if id == "FORALL" => {
            p.next();
            p.eat(&Tok::LParen)?;
            let (index, _) = p.ident("index variable")?;
            p.eat(&Tok::Eq)?;
            let lo = p.number("lower bound")? as i64;
            p.eat(&Tok::Colon)?;
            let hi = p.number("upper bound")? as i64;
            p.eat(&Tok::RParen)?;
            let (target, _) = p.ident("target array")?;
            p.eat(&Tok::LParen)?;
            let (ivar, il) = p.ident("index variable")?;
            if ivar != index {
                return Err(CompileError::new(
                    il,
                    format!("FORALL target index '{ivar}' does not match '{index}'"),
                ));
            }
            p.eat(&Tok::RParen)?;
            p.eat(&Tok::Eq)?;
            let expr = parse_expr(p)?;
            p.end_statement()?;
            Ok(Stmt {
                line,
                kind: StmtKind::Forall {
                    index,
                    lo,
                    hi,
                    target,
                    expr,
                },
            })
        }
        Tok::Ident(id) if id == "READ" || id == "WRITE" => {
            let write = id == "WRITE";
            p.next();
            let (name, _) = p.ident("array name")?;
            p.end_statement()?;
            Ok(Stmt {
                line,
                kind: if write {
                    StmtKind::Write { name }
                } else {
                    StmtKind::Read { name }
                },
            })
        }
        Tok::Ident(id) if id == "DO" => {
            p.next();
            let (index, _) = p.ident("index variable")?;
            p.eat(&Tok::Eq)?;
            let lo = p.number("lower bound")? as i64;
            p.eat(&Tok::Colon)?;
            let hi = p.number("upper bound")? as i64;
            p.end_statement()?;
            let mut body = Vec::new();
            loop {
                p.skip_newlines();
                match p.peek() {
                    None => return Err(CompileError::new(line, "DO is missing ENDDO")),
                    Some(Tok::Ident(id)) if id == "ENDDO" => {
                        p.next();
                        p.end_statement()?;
                        break;
                    }
                    Some(Tok::Ident(id)) if id == "END" || id == "ENDSUB" => {
                        return Err(CompileError::new(p.line(), "DO is missing ENDDO"))
                    }
                    _ => body.push(parse_one(p)?),
                }
            }
            Ok(Stmt {
                line,
                kind: StmtKind::Do {
                    index,
                    lo,
                    hi,
                    body,
                },
            })
        }
        Tok::Ident(id) if id == "WHERE" => {
            p.next();
            p.eat(&Tok::LParen)?;
            let lhs = parse_expr(p)?;
            let cmp = match p.next() {
                Some(Token { kind: Tok::Lt, .. }) => cmrts_sim::CmpKind::Lt,
                Some(Token { kind: Tok::Gt, .. }) => cmrts_sim::CmpKind::Gt,
                Some(Token { kind: Tok::Le, .. }) => cmrts_sim::CmpKind::Le,
                Some(Token { kind: Tok::Ge, .. }) => cmrts_sim::CmpKind::Ge,
                Some(Token {
                    kind: Tok::EqEq, ..
                }) => cmrts_sim::CmpKind::Eq,
                Some(Token { kind: Tok::Ne, .. }) => cmrts_sim::CmpKind::Ne,
                other => {
                    return Err(CompileError::new(
                        line,
                        format!(
                            "expected a comparison in WHERE, found {:?}",
                            other.map(|t| t.kind)
                        ),
                    ))
                }
            };
            let rhs = parse_expr(p)?;
            p.eat(&Tok::RParen)?;
            let (target, _) = p.ident("target array")?;
            p.eat(&Tok::Eq)?;
            let expr = parse_expr(p)?;
            p.end_statement()?;
            Ok(Stmt {
                line,
                kind: StmtKind::Where {
                    lhs,
                    cmp,
                    rhs,
                    target,
                    expr,
                },
            })
        }
        Tok::Ident(id) if id == "CALL" => {
            p.next();
            let (name, _) = p.ident("subroutine name")?;
            p.end_statement()?;
            Ok(Stmt {
                line,
                kind: StmtKind::Call { name },
            })
        }
        Tok::Ident(_) => {
            let (target, _) = p.ident("assignment target")?;
            p.eat(&Tok::Eq)?;
            let expr = parse_expr(p)?;
            p.end_statement()?;
            Ok(Stmt {
                line,
                kind: StmtKind::Assign { target, expr },
            })
        }
        other => Err(CompileError::new(
            line,
            format!("expected a statement, found {other}"),
        )),
    }
}

fn parse_expr(p: &mut Parser) -> Result<Expr, CompileError> {
    let mut lhs = parse_term(p)?;
    loop {
        let op = match p.peek() {
            Some(Tok::Plus) => BinKind::Add,
            Some(Tok::Minus) => BinKind::Sub,
            _ => break,
        };
        p.next();
        let rhs = parse_term(p)?;
        lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_term(p: &mut Parser) -> Result<Expr, CompileError> {
    let mut lhs = parse_factor(p)?;
    loop {
        let op = match p.peek() {
            Some(Tok::Star) => BinKind::Mul,
            Some(Tok::Slash) => BinKind::Div,
            _ => break,
        };
        p.next();
        let rhs = parse_factor(p)?;
        lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_factor(p: &mut Parser) -> Result<Expr, CompileError> {
    match p.next() {
        Some(Token {
            kind: Tok::Num(n), ..
        }) => Ok(Expr::Num(n)),
        Some(Token {
            kind: Tok::Minus, ..
        }) => Ok(Expr::Neg(Box::new(parse_factor(p)?))),
        Some(Token {
            kind: Tok::LParen, ..
        }) => {
            let e = parse_expr(p)?;
            p.eat(&Tok::RParen)?;
            Ok(e)
        }
        Some(Token {
            kind: Tok::Ident(name),
            ..
        }) => {
            if p.peek() == Some(&Tok::LParen) {
                p.next();
                let mut args = Vec::new();
                if p.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(parse_expr(p)?);
                        if p.peek() == Some(&Tok::Comma) {
                            p.next();
                            continue;
                        }
                        break;
                    }
                }
                p.eat(&Tok::RParen)?;
                Ok(Expr::Call { name, args })
            } else {
                Ok(Expr::Ident(name))
            }
        }
        Some(t) => Err(CompileError::new(
            t.line,
            format!("expected an expression, found {}", t.kind),
        )),
        None => Err(CompileError::new(
            0,
            "expected an expression, found end of input",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG4: &str = "\
PROGRAM HPFEX
REAL A(1024), B(1024)
A = 1.5
B = 2.5
ASUM = SUM(A)
BMAX = MAXVAL(B)
END
";

    #[test]
    fn parses_figure4_program() {
        let u = parse(FIG4).unwrap();
        assert_eq!(u.name, "HPFEX");
        assert_eq!(u.stmts.len(), 5);
        match &u.stmts[0].kind {
            StmtKind::Decl { entries } => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].name, "A");
                assert_eq!(entries[0].extents, vec![1024]);
            }
            other => panic!("expected decl, got {other:?}"),
        }
        match &u.stmts[3].kind {
            StmtKind::Assign { target, expr } => {
                assert_eq!(target, "ASUM");
                assert_eq!(
                    expr,
                    &Expr::Call {
                        name: "SUM".into(),
                        args: vec![Expr::Ident("A".into())]
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(u.stmts[3].line, 5);
    }

    #[test]
    fn parses_2d_decl_and_dist() {
        let u = parse("PROGRAM P\nREAL M(64,64)\nDIST M CYCLIC\nEND\n").unwrap();
        match &u.stmts[1].kind {
            StmtKind::Dist { name, dist } => {
                assert_eq!(name, "M");
                assert_eq!(*dist, Distribution::Cyclic);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_forall() {
        let u = parse("PROGRAM P\nREAL A(8)\nFORALL (I = 1:8) A(I) = 2*I + 1\nEND\n").unwrap();
        match &u.stmts[1].kind {
            StmtKind::Forall {
                index,
                lo,
                hi,
                target,
                ..
            } => {
                assert_eq!(index, "I");
                assert_eq!((*lo, *hi), (1, 8));
                assert_eq!(target, "A");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forall_index_mismatch_is_error() {
        let e = parse("PROGRAM P\nREAL A(8)\nFORALL (I = 1:8) A(J) = I\nEND\n").unwrap_err();
        assert!(e.message.contains("does not match"));
    }

    #[test]
    fn precedence_and_parens() {
        let u = parse("PROGRAM P\nX = 1 + 2 * 3\nY = (1 + 2) * 3\nEND\n").unwrap();
        let x = match &u.stmts[0].kind {
            StmtKind::Assign { expr, .. } => expr.clone(),
            _ => unreachable!(),
        };
        // 1 + (2*3)
        assert!(matches!(x, Expr::Bin(BinKind::Add, _, _)));
        let y = match &u.stmts[1].kind {
            StmtKind::Assign { expr, .. } => expr.clone(),
            _ => unreachable!(),
        };
        assert!(matches!(y, Expr::Bin(BinKind::Mul, _, _)));
    }

    #[test]
    fn read_write_statements() {
        let u = parse("PROGRAM P\nREAL A(4)\nREAD A\nWRITE A\nEND\n").unwrap();
        assert!(matches!(u.stmts[1].kind, StmtKind::Read { .. }));
        assert!(matches!(u.stmts[2].kind, StmtKind::Write { .. }));
    }

    #[test]
    fn unary_minus() {
        let u = parse("PROGRAM P\nX = -3 + 1\nEND\n").unwrap();
        match &u.stmts[0].kind {
            StmtKind::Assign { expr, .. } => {
                assert!(matches!(expr, Expr::Bin(BinKind::Add, a, _)
                    if matches!(**a, Expr::Neg(_))));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn missing_end_is_reported() {
        let e = parse("PROGRAM P\nX = 1\n").unwrap_err();
        assert!(e.message.contains("END"));
    }

    #[test]
    fn three_dim_arrays_rejected() {
        let e = parse("PROGRAM P\nREAL A(2,2,2)\nEND\n").unwrap_err();
        assert!(e.message.contains("2-D"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let e = parse("PROGRAM P\nX = 1 2\nEND\n").unwrap_err();
        assert!(e.message.contains("unexpected"));
    }

    #[test]
    fn call_with_multiple_args() {
        let u = parse("PROGRAM P\nREAL A(8), B(8)\nC = CSHIFT(A, 1) + MAX(A, B)\nEND\n").unwrap();
        match &u.stmts[1].kind {
            StmtKind::Assign { expr, .. } => {
                let ids = expr.idents();
                assert_eq!(ids, vec!["A", "A", "B"]);
            }
            _ => unreachable!(),
        }
    }
}
