//! Compiler-output listing emission (§6.2's input).
//!
//! The compiler writes a `CMF LISTING v1` file describing the parallel
//! statements, parallel arrays, and node-code blocks it generated. The
//! `pdmap-pif` crate's scanner (the paper's "simple utility that parses CM
//! Fortran compiler output files") turns it into a PIF file — reproducing
//! the paper's exact tool-chain shape: compiler → listing → scanner → PIF
//! → Paradyn.

use crate::ast::{StmtKind, Unit};
use crate::lower::Lowered;
use crate::sema::Symbols;
use std::fmt::Write as _;

/// Emits the `CMF LISTING v1` text for a lowered unit.
pub fn emit_listing(unit: &Unit, syms: &Symbols, lowered: &Lowered, source: &str) -> String {
    let mut out = String::new();
    writeln!(out, "CMF LISTING v1").unwrap();
    writeln!(out, "file = {}", lowered.program.name).unwrap();

    let line_text = |line: u32| -> String {
        source
            .lines()
            .nth((line - 1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    // Parallel statements: the lines that generated node code blocks,
    // attributed to their enclosing function (subroutine or main program).
    let mut listed = std::collections::BTreeSet::new();
    let mut emit_stmt = |out: &mut String, stmt: &crate::ast::Stmt, func: &str| {
        let parallel = match &stmt.kind {
            StmtKind::Assign { target, expr } => {
                syms.is_array(target) || expr.idents().iter().any(|i| syms.is_array(i))
            }
            StmtKind::Forall { .. }
            | StmtKind::Read { .. }
            | StmtKind::Write { .. }
            | StmtKind::Where { .. } => true,
            StmtKind::Decl { .. }
            | StmtKind::Dist { .. }
            | StmtKind::Call { .. }
            | StmtKind::Do { .. } => false,
        };
        if parallel && listed.insert(stmt.line) {
            writeln!(
                out,
                "statement line={} fn={} text={}",
                stmt.line,
                func,
                line_text(stmt.line)
            )
            .unwrap();
        }
    };
    for sub in &unit.subroutines {
        for stmt in &sub.stmts {
            emit_stmt(&mut out, stmt, &sub.name);
        }
    }
    for stmt in &unit.stmts {
        emit_stmt(&mut out, stmt, &unit.name);
    }

    // Parallel arrays (temporaries excluded), attributed to the declaring
    // function.
    for name in &syms.array_order {
        let extents = syms.array_extents(name).unwrap_or(&[]);
        let dist = syms
            .array_dist(name)
            .unwrap_or(cmrts_sim::Distribution::Block);
        let home = syms
            .array_home
            .get(name)
            .map(String::as_str)
            .unwrap_or(unit.name.as_str());
        let ext: Vec<String> = extents.iter().map(|e| e.to_string()).collect();
        writeln!(
            out,
            "array name={} fn={} rank={} extents={} dist={}",
            name,
            home,
            extents.len(),
            ext.join(","),
            dist.name()
        )
        .unwrap();
    }

    // Node code blocks.
    for b in &lowered.blocks {
        let lines: Vec<String> = b.lines.iter().map(|l| l.to_string()).collect();
        let arrays: Vec<String> = b
            .arrays
            .iter()
            .filter(|a| !a.starts_with("CMF_TMP"))
            .cloned()
            .collect();
        write!(out, "block name={} lines={}", b.name, lines.join(",")).unwrap();
        if !arrays.is_empty() {
            write!(out, " arrays={}", arrays.join(",")).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LowerOptions};
    use crate::parse::parse;
    use crate::sema::analyze;
    use pdmap::model::Namespace;

    fn listing_for(src: &str) -> String {
        let unit = parse(src).unwrap();
        let syms = analyze(&unit).unwrap();
        let ns = Namespace::new();
        let lowered = lower(&unit, &syms, &ns, &LowerOptions::default(), src).unwrap();
        emit_listing(&unit, &syms, &lowered, src)
    }

    const SRC: &str = "\
PROGRAM CORR
REAL A(64), B(64)
A = 1.5
B = 2.5
ASUM = SUM(A)
END
";

    #[test]
    fn listing_has_header_and_sections() {
        let l = listing_for(SRC);
        assert!(l.starts_with("CMF LISTING v1\n"));
        assert!(l.contains("file = corr.fcm"));
        assert!(l.contains("statement line=3 fn=CORR text=A = 1.5"));
        assert!(l.contains("array name=A fn=CORR rank=1 extents=64 dist=block"));
        assert!(l.contains("block name=cmpe_corr_1_ lines=3,4 arrays=A,B"));
        assert!(l.contains("block name=cmpe_corr_2_ lines=5 arrays=A"));
    }

    #[test]
    fn listing_parses_with_pif_scanner() {
        let text = listing_for(SRC);
        let parsed = pdmap_pif::parse_listing(&text).unwrap();
        assert_eq!(parsed.file, "corr.fcm");
        assert_eq!(parsed.statements.len(), 3);
        assert_eq!(parsed.arrays.len(), 2);
        assert_eq!(parsed.blocks.len(), 2);
        // The fused block implements two lines: Figure 2's shape.
        assert_eq!(parsed.blocks[0].lines, vec![3, 4]);
    }

    #[test]
    fn scanner_generates_figure2_style_pif() {
        let text = listing_for(SRC);
        let parsed = pdmap_pif::parse_listing(&text).unwrap();
        let pif = pdmap_pif::listing_to_pif(&parsed, &pdmap_pif::ScanOptions::default());
        let written = pdmap_pif::write(&pif);
        assert!(written.contains("source = {cmpe_corr_1_(), CPU Utilization}"));
        assert!(written.contains("destination = {line3, Executes}"));
        assert!(written.contains("destination = {line4, Executes}"));
    }

    #[test]
    fn temps_never_reach_the_listing() {
        let l = listing_for("PROGRAM P\nREAL A(16)\nX = SUM(A * 2.0)\nEND\n");
        assert!(!l.contains("CMF_TMP"));
    }

    #[test]
    fn scalar_only_statements_are_not_parallel() {
        let l = listing_for("PROGRAM P\nREAL A(4)\nA = 1.0\nX = 1 + 2\nEND\n");
        assert!(!l.contains("text=X = 1 + 2"));
    }

    #[test]
    fn cyclic_dist_is_recorded() {
        let l = listing_for("PROGRAM P\nREAL A(8)\nDIST A CYCLIC\nA = 0.0\nEND\n");
        assert!(l.contains("dist=cyclic"));
    }
}
