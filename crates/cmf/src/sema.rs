//! Semantic analysis: symbol resolution, shape checking, intrinsic
//! signatures, and FORALL linearity.

use crate::ast::{BinKind, Expr, Stmt, StmtKind, Unit};
use crate::lex::CompileError;
use cmrts_sim::Distribution;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// What a name denotes.
#[derive(Clone, Debug, PartialEq)]
pub enum Symbol {
    /// A distributed array.
    Array {
        /// Extents (1-D or 2-D).
        extents: Vec<usize>,
        /// Distribution of the first axis.
        dist: Distribution,
    },
    /// A front-end scalar.
    Scalar,
}

/// The symbol table produced by [`analyze`].
#[derive(Clone, Debug, Default)]
pub struct Symbols {
    map: BTreeMap<String, Symbol>,
    /// Array names in declaration order.
    pub array_order: Vec<String>,
    /// Scalar names in first-assignment order.
    pub scalar_order: Vec<String>,
    /// Array name → the function (subroutine or program) that declared it.
    pub array_home: BTreeMap<String, String>,
    /// Declared subroutine names.
    pub subroutines: BTreeSet<String>,
}

impl Symbols {
    /// Looks a name up.
    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.map.get(name)
    }

    /// The extents of an array name (None for scalars/unknown).
    pub fn array_extents(&self, name: &str) -> Option<&[usize]> {
        match self.map.get(name) {
            Some(Symbol::Array { extents, .. }) => Some(extents),
            _ => None,
        }
    }

    /// The distribution of an array name.
    pub fn array_dist(&self, name: &str) -> Option<Distribution> {
        match self.map.get(name) {
            Some(Symbol::Array { dist, .. }) => Some(*dist),
            _ => None,
        }
    }

    /// True if `name` is an array.
    pub fn is_array(&self, name: &str) -> bool {
        matches!(self.map.get(name), Some(Symbol::Array { .. }))
    }
}

/// The shape of an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Shape {
    /// A front-end scalar value.
    Scalar,
    /// A distributed array with these extents.
    Array(Vec<usize>),
}

/// Array-valued intrinsics and their behaviour, used by both checking and
/// lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intrinsic {
    /// SUM / MAXVAL / MINVAL — reductions to a scalar.
    Reduce(cmrts_sim::ReduceKind),
    /// SCAN_ADD / SCAN_MAX / SCAN_MIN — parallel prefix.
    Scan(cmrts_sim::ReduceKind),
    /// CSHIFT (circular).
    CShift,
    /// EOSHIFT (end-off).
    EoShift,
    /// TRANSPOSE.
    Transpose,
    /// SORT (ascending, global).
    Sort,
    /// Element-wise MAX.
    EMax,
    /// Element-wise MIN.
    EMin,
}

impl Intrinsic {
    /// Resolves an intrinsic by (upper-case) name.
    pub fn by_name(name: &str) -> Option<Intrinsic> {
        use cmrts_sim::ReduceKind::*;
        Some(match name {
            "SUM" => Intrinsic::Reduce(Sum),
            "MAXVAL" => Intrinsic::Reduce(Max),
            "MINVAL" => Intrinsic::Reduce(Min),
            "SCAN_ADD" => Intrinsic::Scan(Sum),
            "SCAN_MAX" => Intrinsic::Scan(Max),
            "SCAN_MIN" => Intrinsic::Scan(Min),
            "CSHIFT" => Intrinsic::CShift,
            "EOSHIFT" => Intrinsic::EoShift,
            "TRANSPOSE" => Intrinsic::Transpose,
            "SORT" => Intrinsic::Sort,
            "MAX" => Intrinsic::EMax,
            "MIN" => Intrinsic::EMin,
            _ => return None,
        })
    }
}

/// Infers the shape of `expr`. `index` is the in-scope FORALL index (a
/// scalar), if any.
pub fn infer_shape(
    expr: &Expr,
    syms: &Symbols,
    index: Option<&str>,
    line: u32,
) -> Result<Shape, CompileError> {
    match expr {
        Expr::Num(_) => Ok(Shape::Scalar),
        Expr::Ident(name) => {
            if Some(name.as_str()) == index {
                return Ok(Shape::Scalar);
            }
            match syms.get(name) {
                Some(Symbol::Array { extents, .. }) => Ok(Shape::Array(extents.clone())),
                Some(Symbol::Scalar) => Ok(Shape::Scalar),
                None => Err(CompileError::new(
                    line,
                    format!("'{name}' used before definition"),
                )),
            }
        }
        Expr::Neg(e) => infer_shape(e, syms, index, line),
        Expr::Bin(_, a, b) => {
            let sa = infer_shape(a, syms, index, line)?;
            let sb = infer_shape(b, syms, index, line)?;
            join_shapes(sa, sb, line)
        }
        Expr::Call { name, args } => {
            let Some(intr) = Intrinsic::by_name(name) else {
                return Err(CompileError::new(
                    line,
                    format!("unknown intrinsic '{name}'"),
                ));
            };
            let array_arg = |k: usize| -> Result<Vec<usize>, CompileError> {
                let a = args.get(k).ok_or_else(|| {
                    CompileError::new(line, format!("{name} expects an array argument"))
                })?;
                match infer_shape(a, syms, index, line)? {
                    Shape::Array(e) => Ok(e),
                    Shape::Scalar => Err(CompileError::new(
                        line,
                        format!("argument {} of {name} must be an array", k + 1),
                    )),
                }
            };
            match intr {
                Intrinsic::Reduce(_) => {
                    expect_arity(name, args, 1, line)?;
                    array_arg(0)?;
                    Ok(Shape::Scalar)
                }
                Intrinsic::Scan(_) | Intrinsic::Sort => {
                    expect_arity(name, args, 1, line)?;
                    Ok(Shape::Array(array_arg(0)?))
                }
                Intrinsic::CShift | Intrinsic::EoShift => {
                    if args.len() != 2 && args.len() != 3 {
                        return Err(CompileError::new(
                            line,
                            format!("{name} expects 2 or 3 arguments, got {}", args.len()),
                        ));
                    }
                    let e = array_arg(0)?;
                    match &args[1] {
                        Expr::Num(n) if n.fract() == 0.0 => {}
                        Expr::Neg(inner) if matches!(**inner, Expr::Num(n) if n.fract() == 0.0) => {
                        }
                        _ => {
                            return Err(CompileError::new(
                                line,
                                format!("{name} shift amount must be an integer constant"),
                            ))
                        }
                    }
                    if let Some(dim_arg) = args.get(2) {
                        let dim = match dim_arg {
                            Expr::Num(n) if n.fract() == 0.0 => *n as i64,
                            _ => {
                                return Err(CompileError::new(
                                    line,
                                    format!("{name} DIM must be an integer constant"),
                                ))
                            }
                        };
                        if dim < 1 || dim as usize > e.len() {
                            return Err(CompileError::new(
                                line,
                                format!(
                                    "{name} DIM must be between 1 and {} for this array",
                                    e.len()
                                ),
                            ));
                        }
                    }
                    Ok(Shape::Array(e))
                }
                Intrinsic::Transpose => {
                    expect_arity(name, args, 1, line)?;
                    let e = array_arg(0)?;
                    if e.len() != 2 {
                        return Err(CompileError::new(line, "TRANSPOSE requires a 2-D array"));
                    }
                    Ok(Shape::Array(vec![e[1], e[0]]))
                }
                Intrinsic::EMax | Intrinsic::EMin => {
                    expect_arity(name, args, 2, line)?;
                    let sa = infer_shape(&args[0], syms, index, line)?;
                    let sb = infer_shape(&args[1], syms, index, line)?;
                    join_shapes(sa, sb, line)
                }
            }
        }
    }
}

fn expect_arity(name: &str, args: &[Expr], n: usize, line: u32) -> Result<(), CompileError> {
    if args.len() != n {
        return Err(CompileError::new(
            line,
            format!("{name} expects {n} argument(s), got {}", args.len()),
        ));
    }
    Ok(())
}

fn join_shapes(a: Shape, b: Shape, line: u32) -> Result<Shape, CompileError> {
    match (a, b) {
        (Shape::Scalar, Shape::Scalar) => Ok(Shape::Scalar),
        (Shape::Array(e), Shape::Scalar) | (Shape::Scalar, Shape::Array(e)) => Ok(Shape::Array(e)),
        (Shape::Array(ea), Shape::Array(eb)) => {
            if ea == eb {
                Ok(Shape::Array(ea))
            } else {
                Err(CompileError::new(
                    line,
                    format!("array shape mismatch: {ea:?} vs {eb:?}"),
                ))
            }
        }
    }
}

/// Extracts a FORALL right-hand side as a linear function of the index:
/// returns `(coeff, offset)` with `value(I) = coeff·I + offset`.
pub fn linear_of_index(expr: &Expr, index: &str, line: u32) -> Result<(f64, f64), CompileError> {
    match expr {
        Expr::Num(n) => Ok((0.0, *n)),
        Expr::Ident(name) if name == index => Ok((1.0, 0.0)),
        Expr::Ident(name) => Err(CompileError::new(
            line,
            format!("FORALL expression may only reference the index, found '{name}'"),
        )),
        Expr::Neg(e) => {
            let (c, o) = linear_of_index(e, index, line)?;
            Ok((-c, -o))
        }
        Expr::Bin(op, a, b) => {
            let (ca, oa) = linear_of_index(a, index, line)?;
            let (cb, ob) = linear_of_index(b, index, line)?;
            match op {
                BinKind::Add => Ok((ca + cb, oa + ob)),
                BinKind::Sub => Ok((ca - cb, oa - ob)),
                BinKind::Mul => {
                    if ca == 0.0 {
                        Ok((oa * cb, oa * ob))
                    } else if cb == 0.0 {
                        Ok((ca * ob, oa * ob))
                    } else {
                        Err(CompileError::new(
                            line,
                            "FORALL expression must be linear in the index",
                        ))
                    }
                }
                BinKind::Div => {
                    if cb == 0.0 && ob != 0.0 {
                        Ok((ca / ob, oa / ob))
                    } else {
                        Err(CompileError::new(
                            line,
                            "FORALL expression may only divide by a nonzero constant",
                        ))
                    }
                }
            }
        }
        Expr::Call { .. } => Err(CompileError::new(
            line,
            "intrinsic calls are not allowed in FORALL expressions",
        )),
    }
}

/// Analyses a unit: builds the symbol table and checks every statement.
///
/// Scoping follows classic Fortran common-block style (a deliberate
/// simplification): all arrays and scalars share one global scope, so array
/// names must be unique across the whole unit; subroutines merely group
/// statements (and where-axis resources) under a function name.
pub fn analyze(unit: &Unit) -> Result<Symbols, CompileError> {
    let mut syms = Symbols::default();
    for sub in &unit.subroutines {
        if Intrinsic::by_name(&sub.name).is_some() {
            return Err(CompileError::new(
                sub.line,
                format!("subroutine '{}' shadows an intrinsic", sub.name),
            ));
        }
        if !syms.subroutines.insert(sub.name.clone()) {
            return Err(CompileError::new(
                sub.line,
                format!("subroutine '{}' defined twice", sub.name),
            ));
        }
    }
    for sub in &unit.subroutines {
        for stmt in &sub.stmts {
            check_stmt(stmt, &mut syms, &sub.name, true)?;
        }
    }
    for stmt in &unit.stmts {
        check_stmt(stmt, &mut syms, &unit.name, false)?;
    }
    Ok(syms)
}

fn declare_scalar(syms: &mut Symbols, name: &str) {
    if syms.get(name).is_none() {
        syms.map.insert(name.to_string(), Symbol::Scalar);
        syms.scalar_order.push(name.to_string());
    }
}

fn check_stmt(
    stmt: &Stmt,
    syms: &mut Symbols,
    scope: &str,
    in_sub: bool,
) -> Result<(), CompileError> {
    let line = stmt.line;
    match &stmt.kind {
        StmtKind::Decl { entries } => {
            for e in entries {
                if syms.get(&e.name).is_some() {
                    return Err(CompileError::new(
                        line,
                        format!("'{}' declared twice", e.name),
                    ));
                }
                if e.extents.is_empty() {
                    declare_scalar(syms, &e.name);
                } else {
                    if Intrinsic::by_name(&e.name).is_some() {
                        return Err(CompileError::new(
                            line,
                            format!("'{}' shadows an intrinsic", e.name),
                        ));
                    }
                    syms.map.insert(
                        e.name.clone(),
                        Symbol::Array {
                            extents: e.extents.clone(),
                            dist: Distribution::Block,
                        },
                    );
                    syms.array_order.push(e.name.clone());
                    syms.array_home.insert(e.name.clone(), scope.to_string());
                }
            }
            Ok(())
        }
        StmtKind::Call { name } => {
            if in_sub {
                return Err(CompileError::new(
                    line,
                    "CALL inside a subroutine is not supported (flat call graph)",
                ));
            }
            if !syms.subroutines.contains(name) {
                return Err(CompileError::new(
                    line,
                    format!("CALL of undefined subroutine '{name}'"),
                ));
            }
            Ok(())
        }
        StmtKind::Dist { name, dist } => match syms.map.get_mut(name) {
            Some(Symbol::Array { dist: d, .. }) => {
                *d = *dist;
                Ok(())
            }
            _ => Err(CompileError::new(
                line,
                format!("DIST names undeclared array '{name}'"),
            )),
        },
        StmtKind::Assign { target, expr } => {
            let rhs = infer_shape(expr, syms, None, line)?;
            match (syms.get(target).cloned(), rhs) {
                (Some(Symbol::Array { extents, .. }), Shape::Array(e)) => {
                    if extents != e {
                        return Err(CompileError::new(
                            line,
                            format!("cannot assign shape {e:?} to '{target}' of shape {extents:?}"),
                        ));
                    }
                    Ok(())
                }
                (Some(Symbol::Array { .. }), Shape::Scalar) => Ok(()), // broadcast fill
                (Some(Symbol::Scalar), Shape::Scalar) | (None, Shape::Scalar) => {
                    declare_scalar(syms, target);
                    Ok(())
                }
                (Some(Symbol::Scalar), Shape::Array(_)) | (None, Shape::Array(_)) => {
                    Err(CompileError::new(
                        line,
                        format!("cannot assign an array expression to scalar '{target}'"),
                    ))
                }
            }
        }
        StmtKind::Forall {
            index,
            lo,
            hi,
            target,
            expr,
        } => {
            let Some(extents) = syms.array_extents(target).map(<[usize]>::to_vec) else {
                return Err(CompileError::new(
                    line,
                    format!("FORALL target '{target}' is not a declared array"),
                ));
            };
            if extents.len() != 1 {
                return Err(CompileError::new(line, "FORALL target must be 1-D"));
            }
            if *lo != 1 || *hi != extents[0] as i64 {
                return Err(CompileError::new(
                    line,
                    format!(
                        "FORALL bounds must cover the whole array (1:{})",
                        extents[0]
                    ),
                ));
            }
            linear_of_index(expr, index, line)?;
            Ok(())
        }
        StmtKind::Where {
            lhs,
            cmp: _,
            rhs,
            target,
            expr,
        } => {
            let Some(extents) = syms.array_extents(target).map(<[usize]>::to_vec) else {
                return Err(CompileError::new(
                    line,
                    format!("WHERE target '{target}' is not a declared array"),
                ));
            };
            let sl = infer_shape(lhs, syms, None, line)?;
            let sr = infer_shape(rhs, syms, None, line)?;
            let cond = join_shapes(sl, sr, line)?;
            match cond {
                Shape::Array(e) if e == extents => {}
                Shape::Array(e) => {
                    return Err(CompileError::new(
                        line,
                        format!("WHERE mask shape {e:?} does not match target {extents:?}"),
                    ))
                }
                Shape::Scalar => {
                    return Err(CompileError::new(
                        line,
                        "WHERE condition must involve an array",
                    ))
                }
            }
            match infer_shape(expr, syms, None, line)? {
                Shape::Scalar => Ok(()),
                Shape::Array(e) if e == extents => Ok(()),
                Shape::Array(e) => Err(CompileError::new(
                    line,
                    format!("cannot assign shape {e:?} to '{target}' of shape {extents:?}"),
                )),
            }
        }
        StmtKind::Do { body, index, .. } => {
            // Reached only when analysing un-expanded ASTs directly (the
            // public `compile` expands first). Treat the index as a scalar
            // and check the body.
            declare_scalar(syms, index);
            for s in body {
                check_stmt(s, syms, scope, in_sub)?;
            }
            Ok(())
        }
        StmtKind::Read { name } | StmtKind::Write { name } => {
            if !syms.is_array(name) {
                return Err(CompileError::new(
                    line,
                    format!("READ/WRITE target '{name}' is not a declared array"),
                ));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn ok(src: &str) -> Symbols {
        analyze(&parse(src).unwrap()).unwrap()
    }

    fn fail(src: &str) -> CompileError {
        analyze(&parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn symbol_table_tracks_arrays_and_scalars() {
        let s = ok("PROGRAM P\nREAL A(8), M(4,4)\nX = 1\nY = SUM(A)\nEND\n");
        assert!(s.is_array("A"));
        assert_eq!(s.array_extents("M"), Some(&[4, 4][..]));
        assert_eq!(s.get("X"), Some(&Symbol::Scalar));
        assert_eq!(s.scalar_order, vec!["X", "Y"]);
        assert_eq!(s.array_order, vec!["A", "M"]);
    }

    #[test]
    fn dist_directive_applies() {
        let s = ok("PROGRAM P\nREAL A(8)\nDIST A CYCLIC\nEND\n");
        assert_eq!(s.array_dist("A"), Some(Distribution::Cyclic));
        assert!(fail("PROGRAM P\nDIST A CYCLIC\nEND\n")
            .message
            .contains("undeclared"));
    }

    #[test]
    fn use_before_definition_rejected() {
        assert!(fail("PROGRAM P\nX = Y + 1\nEND\n")
            .message
            .contains("before definition"));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let e = fail("PROGRAM P\nREAL A(8), B(9)\nA = A + B\nEND\n");
        assert!(e.message.contains("shape mismatch"));
        let e2 = fail("PROGRAM P\nREAL A(8), M(4,4)\nA = M\nEND\n");
        assert!(e2.message.contains("cannot assign shape"));
    }

    #[test]
    fn scalar_gets_array_rejected() {
        let e = fail("PROGRAM P\nREAL A(8)\nX = A\nEND\n");
        assert!(e.message.contains("array expression to scalar"));
    }

    #[test]
    fn broadcast_fill_allowed() {
        ok("PROGRAM P\nREAL A(8)\nA = 1.5\nA = SUM(A)\nEND\n");
    }

    #[test]
    fn reductions_are_scalar_valued() {
        ok("PROGRAM P\nREAL A(8)\nX = SUM(A) + MAXVAL(A) * 2\nEND\n");
    }

    #[test]
    fn intrinsic_signatures_enforced() {
        assert!(fail("PROGRAM P\nREAL A(8)\nX = SUM(A, A)\nEND\n")
            .message
            .contains("expects 1"));
        assert!(fail("PROGRAM P\nX = SUM(3)\nEND\n")
            .message
            .contains("must be an array"));
        assert!(fail("PROGRAM P\nREAL A(8)\nB = CSHIFT(A, A)\nEND\n")
            .message
            .contains("integer constant"));
        assert!(fail("PROGRAM P\nREAL A(8)\nB = BOGUS(A)\nEND\n")
            .message
            .contains("unknown intrinsic"));
    }

    #[test]
    fn transpose_shape() {
        let s = ok("PROGRAM P\nREAL M(2,3), T(3,2)\nT = TRANSPOSE(M)\nEND\n");
        assert!(s.is_array("T"));
        assert!(
            fail("PROGRAM P\nREAL M(2,3), T(2,3)\nT = TRANSPOSE(M)\nEND\n")
                .message
                .contains("cannot assign shape")
        );
        assert!(fail("PROGRAM P\nREAL A(8), B(8)\nB = TRANSPOSE(A)\nEND\n")
            .message
            .contains("2-D"));
    }

    #[test]
    fn cshift_dim_argument() {
        ok("PROGRAM P\nREAL M(4,4), T(4,4)\nM = 1.0\nT = CSHIFT(M, 1, 2)\nEND\n");
        ok("PROGRAM P\nREAL A(8), B(8)\nA = 1.0\nB = EOSHIFT(A, 2, 1)\nEND\n");
        assert!(
            fail("PROGRAM P\nREAL A(8), B(8)\nB = CSHIFT(A, 1, 2)\nEND\n")
                .message
                .contains("DIM must be between")
        );
        assert!(
            fail("PROGRAM P\nREAL A(8), B(8)\nB = CSHIFT(A, 1, A)\nEND\n")
                .message
                .contains("integer constant")
        );
        assert!(
            fail("PROGRAM P\nREAL A(8), B(8)\nB = CSHIFT(A, 1, 2, 3)\nEND\n")
                .message
                .contains("2 or 3")
        );
    }

    #[test]
    fn forall_rules() {
        ok("PROGRAM P\nREAL A(8)\nFORALL (I = 1:8) A(I) = 3*I - 2\nEND\n");
        assert!(
            fail("PROGRAM P\nREAL A(8)\nFORALL (I = 1:4) A(I) = I\nEND\n")
                .message
                .contains("whole array")
        );
        assert!(
            fail("PROGRAM P\nREAL A(8)\nFORALL (I = 1:8) A(I) = I*I\nEND\n")
                .message
                .contains("linear")
        );
        assert!(
            fail("PROGRAM P\nREAL A(8)\nFORALL (I = 1:8) A(I) = SUM(A)\nEND\n")
                .message
                .contains("not allowed")
        );
        assert!(
            fail("PROGRAM P\nREAL M(2,2)\nFORALL (I = 1:2) M(I) = I\nEND\n")
                .message
                .contains("1-D")
        );
    }

    #[test]
    fn linear_extraction() {
        use crate::ast::Expr;
        let two_i_plus_one = Expr::Bin(
            BinKind::Add,
            Box::new(Expr::Bin(
                BinKind::Mul,
                Box::new(Expr::Num(2.0)),
                Box::new(Expr::Ident("I".into())),
            )),
            Box::new(Expr::Num(1.0)),
        );
        assert_eq!(
            linear_of_index(&two_i_plus_one, "I", 1).unwrap(),
            (2.0, 1.0)
        );
        let half_i = Expr::Bin(
            BinKind::Div,
            Box::new(Expr::Ident("I".into())),
            Box::new(Expr::Num(2.0)),
        );
        assert_eq!(linear_of_index(&half_i, "I", 1).unwrap(), (0.5, 0.0));
        let neg = Expr::Neg(Box::new(Expr::Ident("I".into())));
        assert_eq!(linear_of_index(&neg, "I", 1).unwrap(), (-1.0, 0.0));
    }

    #[test]
    fn double_declaration_rejected() {
        assert!(fail("PROGRAM P\nREAL A(8)\nREAL A(4)\nEND\n")
            .message
            .contains("twice"));
    }

    #[test]
    fn intrinsic_shadowing_rejected() {
        assert!(fail("PROGRAM P\nREAL SUM(8)\nEND\n")
            .message
            .contains("shadows"));
    }

    #[test]
    fn read_write_targets_checked() {
        assert!(fail("PROGRAM P\nREAD A\nEND\n")
            .message
            .contains("not a declared array"));
    }
}
