//! # cmf-lang — a CM Fortran-like data-parallel language and compiler
//!
//! The paper's case study measures CM Fortran programs; the TMC compiler is
//! unavailable, so this crate provides the closest synthetic equivalent: a
//! small data-parallel array language (assignments, FORALL, WHERE masks,
//! SUM / MAXVAL / MINVAL, CSHIFT / EOSHIFT with a DIM argument, TRANSPOSE,
//! SCAN_*, SORT, SUBROUTINE/CALL, file I/O) compiled to [`cmrts_sim`] node
//! programs.
//!
//! What matters for the paper is preserved:
//!
//! * lowering creates the four mapping shapes of Figure 1 (statement fusion
//!   → one-to-many; communication/compute splitting → many-to-one;
//!   together → many-to-many);
//! * the compiler emits an output **listing** that the `pdmap-pif` scanner
//!   turns into PIF static mapping files, reproducing §6.2's tool-chain;
//! * the lowered IR carries pre-interned NV-model sentences, so the CMRTS
//!   dispatcher can notify the SAS of line/array/operation activity.
//!
//! ```
//! use pdmap::model::Namespace;
//!
//! let src = "PROGRAM HPFEX\nREAL A(1024), B(1024)\nA = 1.0\nB = 2.0\nASUM = SUM(A)\nBMAX = MAXVAL(B)\nEND\n";
//! let ns = Namespace::new();
//! let compiled = cmf_lang::compile(src, &ns, &cmf_lang::CompileOptions::default()).unwrap();
//! assert!(compiled.listing.contains("CMF LISTING v1"));
//! assert!(compiled.pif_text.contains("MAPPING"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod expand;
pub mod lex;
pub mod listing;
pub mod lower;
pub mod parse;
pub mod sema;

pub use ast::Unit;
pub use lex::CompileError;
pub use lower::{BlockRecord, CmfVocab, LowerOptions, Lowered};
pub use sema::{Intrinsic, Shape, Symbol, Symbols};

/// Options for [`compile`].
#[derive(Clone, Debug, Default)]
pub struct CompileOptions {
    /// Lowering options (fusion, level names).
    pub lower: LowerOptions,
}

/// A fully compiled program: IR, vocabulary, listing, and PIF.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The parsed unit.
    pub unit: Unit,
    /// The symbol table.
    pub symbols: Symbols,
    /// The lowered program and sentence maps.
    pub lowered: Lowered,
    /// The compiler output listing (`CMF LISTING v1`).
    pub listing: String,
    /// The PIF produced by scanning the listing (§6.2's utility).
    pub pif: pdmap_pif::PifFile,
    /// The PIF in textual form.
    pub pif_text: String,
}

impl Compiled {
    /// The runnable node program.
    pub fn program(&self) -> &cmrts_sim::Program {
        &self.lowered.program
    }
}

/// Compiles source text: parse → analyse → lower → emit listing → scan to
/// PIF. The namespace receives every noun/verb/sentence the program uses.
pub fn compile(
    source: &str,
    ns: &pdmap::model::Namespace,
    opts: &CompileOptions,
) -> Result<Compiled, CompileError> {
    let unit = parse::parse(source)?;
    let unit = expand::expand_unit(&unit)?; // unroll DO loops
    let symbols = sema::analyze(&unit)?;
    let lowered = lower::lower(&unit, &symbols, ns, &opts.lower, source)?;
    let listing_text = listing::emit_listing(&unit, &symbols, &lowered, source);
    let parsed_listing = pdmap_pif::parse_listing(&listing_text)
        .map_err(|e| CompileError::new(e.line as u32, format!("internal listing error: {e}")))?;
    let scan_opts = pdmap_pif::ScanOptions {
        source_level: opts.lower.source_level.clone(),
        base_level: opts.lower.base_level.clone(),
    };
    let pif = pdmap_pif::listing_to_pif(&parsed_listing, &scan_opts);
    let pif_text = pdmap_pif::write(&pif);
    Ok(Compiled {
        unit,
        symbols,
        lowered,
        listing: listing_text,
        pif,
        pif_text,
    })
}

/// Example programs used across tests, benches, and the figure binaries.
pub mod samples {
    /// The Figure 4 HPF fragment, embedded in a runnable program:
    /// `ASUM = SUM(A)` on line 5, `BMAX = MAXVAL(B)` on line 6.
    pub const FIGURE4: &str = "\
PROGRAM HPFEX
REAL A(1024), B(1024)
A = 1.0
B = 2.0
ASUM = SUM(A)
BMAX = MAXVAL(B)
END
";

    /// A `bow.fcm`-like program for the Figure 8 where axis: the module
    /// contains six functions, and one of them (CORNER) contains the five
    /// arrays the figure shows (TOT expanded into per-node subregions at
    /// run time).
    pub const BOW: &str = "\
PROGRAM BOW
SUBROUTINE CORNER
REAL TOT(64, 64), SRM(64, 64), WGHT(64, 64), SCL(64, 64), TMP(64, 64)
TOT = 0.0
SRM = 1.0
WGHT = 2.0
SCL = WGHT * 0.5
TMP = TRANSPOSE(TOT)
TOT = TOT + SRM * WGHT
ENDSUB
SUBROUTINE EDGE
REAL EDG(128)
EDG = 1.0
ENDSUB
SUBROUTINE INTERIOR
REAL INTR(128)
INTR = 2.0
ENDSUB
SUBROUTINE FLUX
REAL FLX(128)
FLX = SCAN_ADD(INTR)
ENDSUB
SUBROUTINE SOURCE
REAL SRC(128)
SRC = EDG + INTR
ENDSUB
SUBROUTINE UPDATE
REAL UPD(128)
UPD = MAX(FLX, SRC)
ENDSUB
CALL CORNER
CALL EDGE
CALL INTERIOR
CALL FLUX
CALL SOURCE
CALL UPDATE
TSUM = SUM(TOT)
WRITE TOT
END
";

    /// A workload touching every Figure 9 verb: computation (including a
    /// masked WHERE assignment), all three reductions, rotation, shift,
    /// transpose, scan, sort, and file I/O.
    pub const ALL_VERBS: &str = "\
PROGRAM KITCHEN
REAL A(256), B(256), C(256), M(32, 32), T(32, 32)
A = 1.0
FORALL (I = 1:256) B(I) = 2*I - 1
C = A + B * 0.5
WHERE (B > 100.0) C = B * 0.1
S = SUM(A)
MX = MAXVAL(B)
MN = MINVAL(C)
C = CSHIFT(C, 3)
B = EOSHIFT(B, -2)
M = 1.5
T = TRANSPOSE(M)
A = SCAN_ADD(A)
C = SORT(C)
READ A
WRITE C
END
";
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmap::model::Namespace;

    #[test]
    fn compile_figure4_end_to_end() {
        let ns = Namespace::new();
        let c = compile(samples::FIGURE4, &ns, &CompileOptions::default()).unwrap();
        assert_eq!(c.unit.name, "HPFEX");
        assert!(c.listing.contains("block name=cmpe_hpfex_"));
        assert!(c.pif.mappings().count() > 0);
        c.program().validate().unwrap();
    }

    #[test]
    fn compile_error_carries_line() {
        let ns = Namespace::new();
        let e = compile(
            "PROGRAM P\nREAL A(8), B(9)\nA = B\nEND\n",
            &ns,
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn all_verbs_sample_compiles() {
        let ns = Namespace::new();
        let c = compile(samples::ALL_VERBS, &ns, &CompileOptions::default()).unwrap();
        // Every communication verb appears somewhere in the lowered blocks.
        use cmrts_sim::{NodeOp, Step};
        let mut seen_shift = false;
        let mut seen_rotate = false;
        let mut seen_transpose = false;
        let mut seen_scan = false;
        let mut seen_sort = false;
        let mut seen_io = false;
        let mut seen_reduce = 0;
        for s in &c.program().steps {
            if let Step::Ncb(b) = s {
                for i in &b.body {
                    match i.op {
                        NodeOp::Shift { circular: true, .. } => seen_rotate = true,
                        NodeOp::Shift {
                            circular: false, ..
                        } => seen_shift = true,
                        NodeOp::Transpose { .. } => seen_transpose = true,
                        NodeOp::Scan { .. } => seen_scan = true,
                        NodeOp::Sort { .. } => seen_sort = true,
                        NodeOp::FileIo { .. } => seen_io = true,
                        NodeOp::Reduce { .. } => seen_reduce += 1,
                        _ => {}
                    }
                }
            }
        }
        assert!(seen_shift && seen_rotate && seen_transpose && seen_scan && seen_sort && seen_io);
        assert_eq!(seen_reduce, 3);
    }

    #[test]
    fn bow_sample_compiles_with_figure8_structure() {
        let ns = Namespace::new();
        let c = compile(samples::BOW, &ns, &CompileOptions::default()).unwrap();
        // Six functions, as the figure says of bow.fcm.
        assert_eq!(c.unit.subroutines.len(), 6);
        for a in ["TOT", "SRM", "WGHT", "SCL", "TMP"] {
            assert!(c.symbols.is_array(a), "{a}");
            assert_eq!(
                c.symbols.array_home.get(a).map(String::as_str),
                Some("CORNER")
            );
        }
        // The listing attributes statements and arrays to their functions.
        assert!(c.listing.contains("fn=CORNER"));
        assert!(c.listing.contains("fn=EDGE"));
        assert!(c.listing.contains("array name=UPD fn=UPDATE"));
        // And the PIF places them in per-function where-axis paths.
        assert!(c.pif_text.contains("path = /bow.fcm/CORNER/TOT"));
        assert!(c.pif_text.contains("path = /bow.fcm/UPDATE/UPD"));
    }

    #[test]
    fn call_inlines_subroutine_statements() {
        let ns = Namespace::new();
        let src = "\
PROGRAM P
SUBROUTINE TWICE
REAL A(16)
A = A + 1.0
ENDSUB
CALL TWICE
CALL TWICE
S = SUM(A)
END
";
        let c = compile(src, &ns, &CompileOptions::default()).unwrap();
        // Two inlined element-wise statements + one reduction; the single
        // static allocation must not repeat.
        use cmrts_sim::Step;
        let allocs = c
            .program()
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Alloc(_)))
            .count();
        assert_eq!(allocs, 1);
        let ncbs = c
            .program()
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Ncb(_)))
            .count();
        assert!(ncbs >= 2, "both CALLs produce work, got {ncbs}");
    }

    #[test]
    fn subroutine_errors() {
        let ns = Namespace::new();
        let opts = CompileOptions::default();
        let e = compile("PROGRAM P\nCALL NOPE\nEND\n", &ns, &opts).unwrap_err();
        assert!(e.message.contains("undefined subroutine"));
        let e = compile(
            "PROGRAM P\nSUBROUTINE S\nX = 1\nENDSUB\nSUBROUTINE S\nY = 2\nENDSUB\nEND\n",
            &ns,
            &opts,
        )
        .unwrap_err();
        assert!(e.message.contains("defined twice"));
        let e = compile(
            "PROGRAM P\nSUBROUTINE A\nCALL A\nENDSUB\nCALL A\nEND\n",
            &ns,
            &opts,
        )
        .unwrap_err();
        assert!(e.message.contains("flat call graph"));
        let e = compile("PROGRAM P\nSUBROUTINE S\nX = 1\nEND\n", &ns, &opts).unwrap_err();
        assert!(e.message.contains("missing ENDSUB"));
        let e = compile("PROGRAM P\nENDSUB\nEND\n", &ns, &opts).unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn where_masked_assignment_runs_correctly() {
        use std::sync::Arc;
        let src = "\
PROGRAM MASKY
REAL A(16), B(16)
FORALL (I = 1:16) A(I) = I
B = 0.0
WHERE (A > 8.0) B = A * 10.0
WHERE (A <= 4.0) B = 0.0 - 1.0
S = SUM(B)
END
";
        let ns = Namespace::new();
        let c = compile(src, &ns, &CompileOptions::default()).unwrap();
        let mgr = Arc::new(dyninst_sim::InstrumentationManager::new());
        let mut m = cmrts_sim::Machine::new(
            cmrts_sim::MachineConfig {
                nodes: 4,
                ..cmrts_sim::MachineConfig::default()
            },
            ns,
            mgr,
            c.program().clone(),
        )
        .unwrap();
        m.run();
        // B = 10*A for A in 9..=16, -1 for A in 1..=4, else 0.
        let expect: f64 = (9..=16).map(|i| 10.0 * i as f64).sum::<f64>() - 4.0;
        assert_eq!(m.scalar("S"), Some(expect));
    }

    #[test]
    fn where_errors() {
        let ns = Namespace::new();
        let opts = CompileOptions::default();
        let e = compile(
            "PROGRAM P\nREAL A(8)\nWHERE (1.0 > 0.5) A = 2.0\nEND\n",
            &ns,
            &opts,
        )
        .unwrap_err();
        assert!(e.message.contains("must involve an array"));
        let e = compile(
            "PROGRAM P\nREAL A(8), M(4,4)\nWHERE (M > 0.5) A = 2.0\nEND\n",
            &ns,
            &opts,
        )
        .unwrap_err();
        assert!(e.message.contains("does not match"));
        let e = compile(
            "PROGRAM P\nREAL A(8)\nWHERE (A 1.0) A = 2.0\nEND\n",
            &ns,
            &opts,
        )
        .unwrap_err();
        assert!(e.message.contains("comparison"));
        let e = compile("PROGRAM P\nWHERE (X > 1.0) Y = 2.0\nEND\n", &ns, &opts).unwrap_err();
        assert!(e.message.contains("not a declared array"));
    }

    #[test]
    fn subroutine_runs_produce_correct_data() {
        use std::sync::Arc;
        let ns = Namespace::new();
        let c = compile(samples::BOW, &ns, &CompileOptions::default()).unwrap();
        let mgr = Arc::new(dyninst_sim::InstrumentationManager::new());
        let mut m = cmrts_sim::Machine::new(
            cmrts_sim::MachineConfig {
                nodes: 4,
                ..cmrts_sim::MachineConfig::default()
            },
            ns,
            mgr,
            c.program().clone(),
        )
        .unwrap();
        m.run();
        // TOT = 0 + 1*2 everywhere; 64*64 elements.
        assert_eq!(m.scalar("TSUM"), Some(2.0 * 64.0 * 64.0));
    }
}
