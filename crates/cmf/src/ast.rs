//! Abstract syntax for the CM Fortran-like language.

use cmrts_sim::Distribution;

/// A parsed compilation unit (`PROGRAM ... END`).
#[derive(Clone, Debug, PartialEq)]
pub struct Unit {
    /// Program name (after `PROGRAM`).
    pub name: String,
    /// Subroutines, in source order (Fortran-style: flat, shared global
    /// scope, invoked with `CALL`).
    pub subroutines: Vec<Subroutine>,
    /// Main-program statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Unit {
    /// Finds a subroutine by name.
    pub fn subroutine(&self, name: &str) -> Option<&Subroutine> {
        self.subroutines.iter().find(|s| s.name == name)
    }
}

/// A `SUBROUTINE name ... ENDSUB` block.
#[derive(Clone, Debug, PartialEq)]
pub struct Subroutine {
    /// Subroutine name.
    pub name: String,
    /// 1-based line of the `SUBROUTINE` keyword.
    pub line: u32,
    /// Body statements.
    pub stmts: Vec<Stmt>,
}

/// A statement with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// 1-based source line.
    pub line: u32,
    /// The statement.
    pub kind: StmtKind,
}

/// One declaration entry: `A(1024)`, `M(64,64)`, or a scalar `X`.
#[derive(Clone, Debug, PartialEq)]
pub struct DeclEntry {
    /// Name (upper-cased).
    pub name: String,
    /// Extents; empty for front-end scalars.
    pub extents: Vec<usize>,
}

/// Statement kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// `REAL A(1024), M(64,64), X`
    Decl {
        /// The declared entries.
        entries: Vec<DeclEntry>,
    },
    /// `DIST A CYCLIC` — distribution directive for a declared array.
    Dist {
        /// Array name.
        name: String,
        /// Requested distribution.
        dist: Distribution,
    },
    /// `X = expr` (array- or scalar-valued by the target's kind).
    Assign {
        /// Target name.
        target: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `FORALL (I = lo:hi) A(I) = expr(I)` with `expr` linear in `I`.
    Forall {
        /// Index variable.
        index: String,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Target array.
        target: String,
        /// Right-hand side (may reference the index).
        expr: Expr,
    },
    /// `READ A` — file read into an array.
    Read {
        /// Array name.
        name: String,
    },
    /// `WRITE A` — file write of an array.
    Write {
        /// Array name.
        name: String,
    },
    /// `CALL name` — invoke a subroutine (inlined at the call site).
    Call {
        /// Subroutine name.
        name: String,
    },
    /// `DO I = lo:hi ... ENDDO` — a counted loop, fully unrolled at compile
    /// time with the index substituted as a constant in each iteration.
    Do {
        /// Index variable.
        index: String,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `WHERE (lhs <cmp> rhs) target = expr` — masked assignment: elements
    /// of `target` where the condition holds receive `expr`; the rest keep
    /// their old value.
    Where {
        /// Condition left side.
        lhs: Expr,
        /// Comparison operator.
        cmp: cmrts_sim::CmpKind,
        /// Condition right side.
        rhs: Expr,
        /// Target array.
        target: String,
        /// Value expression.
        expr: Expr,
    },
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Array, scalar, or FORALL-index reference.
    Ident(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinKind, Box<Expr>, Box<Expr>),
    /// Intrinsic call: `SUM(A)`, `CSHIFT(A, 1)`, `MAX(A, B)`, ...
    Call {
        /// Intrinsic name (upper-cased).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Returns a copy with every reference to `index` replaced by the
    /// constant `value` (used by DO-loop unrolling).
    pub fn substitute(&self, index: &str, value: f64) -> Expr {
        match self {
            Expr::Num(n) => Expr::Num(*n),
            Expr::Ident(s) if s == index => Expr::Num(value),
            Expr::Ident(s) => Expr::Ident(s.clone()),
            Expr::Neg(e) => Expr::Neg(Box::new(e.substitute(index, value))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.substitute(index, value)),
                Box::new(b.substitute(index, value)),
            ),
            Expr::Call { name, args } => Expr::Call {
                name: name.clone(),
                args: args.iter().map(|a| a.substitute(index, value)).collect(),
            },
        }
    }

    /// Walks the expression, yielding every identifier reference.
    pub fn idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Num(_) => {}
            Expr::Ident(s) => out.push(s),
            Expr::Neg(e) => e.collect_idents(out),
            Expr::Bin(_, a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_idents(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_walks_all_references() {
        let e = Expr::Bin(
            BinKind::Add,
            Box::new(Expr::Ident("A".into())),
            Box::new(Expr::Call {
                name: "CSHIFT".into(),
                args: vec![Expr::Ident("B".into()), Expr::Num(1.0)],
            }),
        );
        assert_eq!(e.idents(), vec!["A", "B"]);
    }

    #[test]
    fn neg_wraps() {
        let e = Expr::Neg(Box::new(Expr::Ident("X".into())));
        assert_eq!(e.idents(), vec!["X"]);
    }
}
