//! Error types for PIF parsing and application.

use std::fmt;

/// A parse failure, with 1-based line number context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the problem was detected.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PIF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A failure while applying parsed records to a namespace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApplyError {
    /// A mapping record referenced a verb never defined (in the file or the
    /// pre-existing namespace).
    UnknownVerb {
        /// The undefined verb name.
        verb: String,
    },
    /// A mapping record referenced a noun never defined.
    UnknownNoun {
        /// The undefined noun name.
        noun: String,
    },
    /// A name was defined at several levels and the reference is ambiguous.
    Ambiguous {
        /// The ambiguous name.
        name: String,
        /// Whether it names a noun or a verb.
        kind: &'static str,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::UnknownVerb { verb } => write!(f, "unknown verb '{verb}' in mapping"),
            ApplyError::UnknownNoun { noun } => write!(f, "unknown noun '{noun}' in mapping"),
            ApplyError::Ambiguous { name, kind } => {
                write!(f, "{kind} name '{name}' is ambiguous across levels")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ParseError::new(7, "bad record");
        assert_eq!(e.to_string(), "PIF parse error at line 7: bad record");
        let a = ApplyError::UnknownVerb { verb: "X".into() };
        assert!(a.to_string().contains("'X'"));
        let b = ApplyError::Ambiguous {
            name: "A".into(),
            kind: "noun",
        };
        assert!(b.to_string().contains("ambiguous"));
    }
}
