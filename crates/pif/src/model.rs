//! The record model of the Paradyn Information Format (PIF).
//!
//! Paper §5: "Paradyn daemons import static mapping information via Paradyn
//! Information Format (PIF) files just after they load each application
//! executable. PIF files are emitted by compilers, programming environments,
//! or other external sources..."
//!
//! Figure 3 gives the three core record types — noun definitions, verb
//! definitions, and mapping definitions (source sentence → destination
//! sentence). Two auxiliary record types carry the rest of what §5 says PIF
//! communicates: `RESOURCE` records place nouns in where-axis hierarchies,
//! and `METRIC` records describe language-specific metrics so "language-
//! dependent and application-dependent visualization modules can receive
//! descriptive information".

use std::fmt;

/// A noun definition record (Figure 2, first records).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NounRecord {
    /// Noun name, unique within its level (e.g. `line1160`).
    pub name: String,
    /// Level of abstraction (e.g. `CM Fortran`, `Base`).
    pub abstraction: String,
    /// Free-form description.
    pub description: String,
}

/// A verb definition record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerbRecord {
    /// Verb name (e.g. `Executes`, `CPU Utilization`).
    pub name: String,
    /// Level of abstraction.
    pub abstraction: String,
    /// Free-form description (often the measurement units).
    pub description: String,
}

/// A sentence reference inside a mapping record: `{noun, ..., verb}` with
/// the verb written last, as in Figure 2's
/// `source = {cmpe_corr_6_(), CPU Utilization}`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SentenceRef {
    /// Participating noun names.
    pub nouns: Vec<String>,
    /// The verb name.
    pub verb: String,
}

impl SentenceRef {
    /// Builds a reference from nouns + verb.
    pub fn new(nouns: Vec<String>, verb: impl Into<String>) -> Self {
        Self {
            nouns,
            verb: verb.into(),
        }
    }
}

impl fmt::Display for SentenceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for n in &self.nouns {
            write!(f, "{n}, ")?;
        }
        write!(f, "{}}}", self.verb)
    }
}

/// A mapping definition record: source sentence ↦ destination sentence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MappingRecord {
    /// The measured sentence.
    pub source: SentenceRef,
    /// The sentence measurements may also be presented for.
    pub destination: SentenceRef,
}

/// A where-axis placement record: positions a noun in a resource hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Hierarchy name (e.g. `CMFarrays`, `CMFstmts`).
    pub hierarchy: String,
    /// `/`-separated path below the hierarchy root.
    pub path: String,
    /// Level of abstraction of the named resource.
    pub abstraction: String,
    /// Optional noun this resource corresponds to (defaults to the path's
    /// final component).
    pub noun: Option<String>,
}

/// How samples of a metric combine across foci/time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricAggregate {
    /// Summable quantities (counts, times).
    Sum,
    /// Averaged quantities (utilisations).
    Average,
}

impl fmt::Display for MetricAggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MetricAggregate::Sum => "sum",
            MetricAggregate::Average => "average",
        })
    }
}

/// A metric description record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricRecord {
    /// Metric name (e.g. `Summation Time`).
    pub name: String,
    /// Level of abstraction the metric belongs to.
    pub abstraction: String,
    /// Unit string (e.g. `seconds`, `operations`).
    pub units: String,
    /// Aggregation rule.
    pub aggregate: MetricAggregate,
    /// Free-form description (Figure 9's right column).
    pub description: String,
}

/// Any PIF record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// Noun definition.
    Noun(NounRecord),
    /// Verb definition.
    Verb(VerbRecord),
    /// Mapping definition.
    Mapping(MappingRecord),
    /// Where-axis placement.
    Resource(ResourceRecord),
    /// Metric description.
    Metric(MetricRecord),
}

impl Record {
    /// The record-type keyword used in the textual format.
    pub fn keyword(&self) -> &'static str {
        match self {
            Record::Noun(_) => "NOUN",
            Record::Verb(_) => "VERB",
            Record::Mapping(_) => "MAPPING",
            Record::Resource(_) => "RESOURCE",
            Record::Metric(_) => "METRIC",
        }
    }
}

/// An in-memory PIF file: an ordered sequence of records.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PifFile {
    /// The records, in file order.
    pub records: Vec<Record>,
}

impl PifFile {
    /// An empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, r: Record) {
        self.records.push(r);
    }

    /// Iterates over noun records.
    pub fn nouns(&self) -> impl Iterator<Item = &NounRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Noun(n) => Some(n),
            _ => None,
        })
    }

    /// Iterates over verb records.
    pub fn verbs(&self) -> impl Iterator<Item = &VerbRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Verb(v) => Some(v),
            _ => None,
        })
    }

    /// Iterates over mapping records.
    pub fn mappings(&self) -> impl Iterator<Item = &MappingRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Mapping(m) => Some(m),
            _ => None,
        })
    }

    /// Iterates over resource records.
    pub fn resources(&self) -> impl Iterator<Item = &ResourceRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Resource(x) => Some(x),
            _ => None,
        })
    }

    /// Iterates over metric records.
    pub fn metrics(&self) -> impl Iterator<Item = &MetricRecord> {
        self.records.iter().filter_map(|r| match r {
            Record::Metric(m) => Some(m),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentence_ref_display_matches_figure2() {
        let s = SentenceRef::new(vec!["cmpe_corr_6_()".into()], "CPU Utilization");
        assert_eq!(s.to_string(), "{cmpe_corr_6_(), CPU Utilization}");
    }

    #[test]
    fn record_keywords() {
        let n = Record::Noun(NounRecord {
            name: "x".into(),
            abstraction: "L".into(),
            description: String::new(),
        });
        assert_eq!(n.keyword(), "NOUN");
    }

    #[test]
    fn file_iterators_filter_by_kind() {
        let mut f = PifFile::new();
        f.push(Record::Noun(NounRecord {
            name: "a".into(),
            abstraction: "L".into(),
            description: String::new(),
        }));
        f.push(Record::Verb(VerbRecord {
            name: "v".into(),
            abstraction: "L".into(),
            description: String::new(),
        }));
        f.push(Record::Mapping(MappingRecord {
            source: SentenceRef::new(vec!["a".into()], "v"),
            destination: SentenceRef::new(vec!["a".into()], "v"),
        }));
        assert_eq!(f.nouns().count(), 1);
        assert_eq!(f.verbs().count(), 1);
        assert_eq!(f.mappings().count(), 1);
        assert_eq!(f.resources().count(), 0);
        assert_eq!(f.metrics().count(), 0);
    }
}
