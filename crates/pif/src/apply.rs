//! Applying parsed PIF records to a tool's live data structures.
//!
//! Paper §5: "PIF files allow such tools to explain to Paradyn how it should
//! map requests for high-level language resources and metrics into requests
//! for base resources and metrics". Application is exactly that import step:
//! noun/verb records populate the [`Namespace`], mapping records populate a
//! [`MappingTable`], resource records populate the [`WhereAxis`], and metric
//! records are returned for the metric manager to install.

use crate::error::ApplyError;
use crate::model::{MetricRecord, PifFile, Record, SentenceRef};
use pdmap::hierarchy::WhereAxis;
use pdmap::mapping::{MappingDef, MappingTable};
use pdmap::model::{Namespace, NounId, SentenceId, VerbId};

/// What an [`apply`] call added.
#[derive(Clone, Debug, Default)]
pub struct Applied {
    /// Mapping definitions added to the table.
    pub mappings: Vec<MappingDef>,
    /// Nouns defined (or re-found) by noun records.
    pub nouns: Vec<NounId>,
    /// Verbs defined (or re-found) by verb records.
    pub verbs: Vec<VerbId>,
    /// Metric records, for the metric manager.
    pub metrics: Vec<MetricRecord>,
}

fn resolve_verb(ns: &Namespace, name: &str) -> Result<VerbId, ApplyError> {
    let mut found: Option<VerbId> = None;
    for li in 0..ns.num_levels() {
        let level = pdmap::model::LevelId::from_index(li);
        if let Some(v) = ns.find_verb(level, name) {
            if found.is_some() {
                return Err(ApplyError::Ambiguous {
                    name: name.to_string(),
                    kind: "verb",
                });
            }
            found = Some(v);
        }
    }
    found.ok_or_else(|| ApplyError::UnknownVerb {
        verb: name.to_string(),
    })
}

fn resolve_noun(
    ns: &Namespace,
    name: &str,
    preferred_level: pdmap::model::LevelId,
) -> Result<NounId, ApplyError> {
    if let Some(n) = ns.find_noun(preferred_level, name) {
        return Ok(n);
    }
    let mut found: Option<NounId> = None;
    for li in 0..ns.num_levels() {
        let level = pdmap::model::LevelId::from_index(li);
        if let Some(n) = ns.find_noun(level, name) {
            if found.is_some() {
                return Err(ApplyError::Ambiguous {
                    name: name.to_string(),
                    kind: "noun",
                });
            }
            found = Some(n);
        }
    }
    found.ok_or_else(|| ApplyError::UnknownNoun {
        noun: name.to_string(),
    })
}

/// Resolves a sentence reference against the namespace, interning the
/// resulting sentence. Nouns are looked up at the verb's level first, then
/// uniquely across levels (Figure 2's mapping sources name Base-level nouns
/// with Base-level verbs, but cross-level sentences occur in dynamic maps).
pub fn resolve_sentence(ns: &Namespace, sref: &SentenceRef) -> Result<SentenceId, ApplyError> {
    let verb = resolve_verb(ns, &sref.verb)?;
    let level = ns.verb_def(verb).level;
    let mut nouns = Vec::with_capacity(sref.nouns.len());
    for n in &sref.nouns {
        nouns.push(resolve_noun(ns, n, level)?);
    }
    Ok(ns.say(verb, nouns))
}

/// Imports every record of `file`. Definitions are interned into `ns`,
/// mappings added to `table`, resources placed in `axis`; metric records are
/// collected into the returned [`Applied`].
pub fn apply(
    file: &PifFile,
    ns: &Namespace,
    table: &mut MappingTable,
    axis: &mut WhereAxis,
) -> Result<Applied, ApplyError> {
    let mut out = Applied::default();
    for record in &file.records {
        match record {
            Record::Noun(n) => {
                let level = ns.level(&n.abstraction);
                out.nouns.push(ns.noun(level, &n.name, &n.description));
            }
            Record::Verb(v) => {
                let level = ns.level(&v.abstraction);
                out.verbs.push(ns.verb(level, &v.name, &v.description));
            }
            Record::Mapping(m) => {
                let source = resolve_sentence(ns, &m.source)?;
                let destination = resolve_sentence(ns, &m.destination)?;
                let def = MappingDef {
                    source,
                    destination,
                };
                table.add(def);
                out.mappings.push(def);
            }
            Record::Resource(r) => {
                let level = ns.level(&r.abstraction);
                let components: Vec<&str> = r.path.split('/').filter(|c| !c.is_empty()).collect();
                // Intern the hierarchy name and full where-axis path now,
                // at import time, so focus selection over this resource
                // never has to grow the symbol table on the hot path.
                pdmap::intern::sym(&r.hierarchy);
                if r.path.starts_with('/') {
                    pdmap::intern::sym(&r.path);
                } else {
                    pdmap::intern::sym(&format!("/{}", r.path));
                }
                let tree = axis.tree_mut(&r.hierarchy);
                let node = tree.add_path(&components);
                let noun_name = r
                    .noun
                    .as_deref()
                    .or_else(|| components.last().copied())
                    .unwrap_or("");
                if !noun_name.is_empty() {
                    // Define the noun on demand so RESOURCE records are
                    // self-contained.
                    let noun = ns.noun(level, noun_name, &r.path);
                    tree.set_noun(node, noun);
                }
            }
            Record::Metric(m) => {
                // Ensure the metric's level exists; the record itself is
                // interpreted by the metric manager.
                ns.level(&m.abstraction);
                out.metrics.push(m.clone());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use pdmap::mapping::MappingShape;

    #[test]
    fn applying_figure2_builds_one_to_many_mapping() {
        let file = samples::figure2();
        let ns = Namespace::new();
        let mut table = MappingTable::new();
        let mut axis = WhereAxis::new();
        let applied = apply(&file, &ns, &mut table, &mut axis).unwrap();
        assert_eq!(applied.nouns.len(), 3);
        assert_eq!(applied.verbs.len(), 2);
        assert_eq!(applied.mappings.len(), 2);
        // One low-level function to two source lines: one-to-many.
        let src = applied.mappings[0].source;
        assert_eq!(table.shape_of(src), Some(MappingShape::OneToMany));
        // Levels got created.
        assert!(ns.find_level("CM Fortran").is_some());
        assert!(ns.find_level("Base").is_some());
    }

    #[test]
    fn apply_is_idempotent() {
        let file = samples::figure2();
        let ns = Namespace::new();
        let mut table = MappingTable::new();
        let mut axis = WhereAxis::new();
        apply(&file, &ns, &mut table, &mut axis).unwrap();
        apply(&file, &ns, &mut table, &mut axis).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(ns.num_nouns(), 3);
    }

    #[test]
    fn mapping_with_undefined_verb_fails() {
        let text = "MAPPING\nsource = {a, NoSuchVerb}\ndestination = {b, AlsoMissing}\n";
        let file = crate::text::parse(text).unwrap();
        let ns = Namespace::new();
        let mut table = MappingTable::new();
        let mut axis = WhereAxis::new();
        let err = apply(&file, &ns, &mut table, &mut axis).unwrap_err();
        assert_eq!(
            err,
            ApplyError::UnknownVerb {
                verb: "NoSuchVerb".into()
            }
        );
    }

    #[test]
    fn mapping_with_undefined_noun_fails() {
        let text = "\
VERB
name = V
abstraction = L

MAPPING
source = {ghost, V}
destination = {ghost, V}
";
        let file = crate::text::parse(text).unwrap();
        let ns = Namespace::new();
        let mut table = MappingTable::new();
        let mut axis = WhereAxis::new();
        let err = apply(&file, &ns, &mut table, &mut axis).unwrap_err();
        assert!(matches!(err, ApplyError::UnknownNoun { .. }));
    }

    #[test]
    fn noun_resolution_prefers_verb_level() {
        // "A" exists at both levels; the mapping's verb fixes the level.
        let text = "\
NOUN
name = A
abstraction = L1

NOUN
name = A
abstraction = L2

VERB
name = V1
abstraction = L1

VERB
name = V2
abstraction = L2

MAPPING
source = {A, V1}
destination = {A, V2}
";
        let file = crate::text::parse(text).unwrap();
        let ns = Namespace::new();
        let mut table = MappingTable::new();
        let mut axis = WhereAxis::new();
        let applied = apply(&file, &ns, &mut table, &mut axis).unwrap();
        let def = applied.mappings[0];
        assert_ne!(def.source, def.destination);
        let l1 = ns.find_level("L1").unwrap();
        let l2 = ns.find_level("L2").unwrap();
        assert_eq!(ns.sentence_level(def.source), l1);
        assert_eq!(ns.sentence_level(def.destination), l2);
    }

    #[test]
    fn ambiguous_verb_reference_fails() {
        let text = "\
VERB
name = V
abstraction = L1

VERB
name = V
abstraction = L2

NOUN
name = a
abstraction = L1

MAPPING
source = {a, V}
destination = {a, V}
";
        let file = crate::text::parse(text).unwrap();
        let ns = Namespace::new();
        let mut table = MappingTable::new();
        let mut axis = WhereAxis::new();
        let err = apply(&file, &ns, &mut table, &mut axis).unwrap_err();
        assert!(matches!(err, ApplyError::Ambiguous { kind: "verb", .. }));
    }

    #[test]
    fn resource_records_populate_where_axis() {
        let text = "\
RESOURCE
hierarchy = CMFarrays
path = /bow.fcm/CORNER/TOT
abstraction = CM Fortran

RESOURCE
hierarchy = CMFarrays
path = /bow.fcm/CORNER/SRM
abstraction = CM Fortran
";
        let file = crate::text::parse(text).unwrap();
        let ns = Namespace::new();
        let mut table = MappingTable::new();
        let mut axis = WhereAxis::new();
        apply(&file, &ns, &mut table, &mut axis).unwrap();
        let tree = axis.tree("CMFarrays").unwrap();
        let tot = tree.resolve("/bow.fcm/CORNER/TOT").unwrap();
        assert!(tree.noun(tot).is_some());
        assert_eq!(
            tree.resolve("/bow.fcm/CORNER")
                .map(|n| tree.children(n).len()),
            Some(2)
        );
        // Noun got defined with the path as description.
        let lvl = ns.find_level("CM Fortran").unwrap();
        assert!(ns.find_noun(lvl, "TOT").is_some());
    }

    #[test]
    fn metric_records_are_collected() {
        let text = "\
METRIC
name = Summations
abstraction = CM Fortran
units = operations
aggregate = sum
description = Count of array summations.
";
        let file = crate::text::parse(text).unwrap();
        let ns = Namespace::new();
        let mut table = MappingTable::new();
        let mut axis = WhereAxis::new();
        let applied = apply(&file, &ns, &mut table, &mut axis).unwrap();
        assert_eq!(applied.metrics.len(), 1);
        assert_eq!(applied.metrics[0].name, "Summations");
        assert!(ns.find_level("CM Fortran").is_some());
    }
}
