//! The textual PIF format: writer and parser.
//!
//! The format follows Figure 2 of the paper: records are blocks separated by
//! blank lines; the first line of a block is the record-type keyword, and
//! the remaining lines are `key = value` pairs. Sentence references use the
//! brace form with the verb last: `{cmpe_corr_6_(), CPU Utilization}`.
//!
//! ```text
//! NOUN
//! name = line1160
//! abstraction = CM Fortran
//! description = line #1160 in source file /usr/src/prog/main.fcm
//!
//! MAPPING
//! source = {cmpe_corr_6_(), CPU Utilization}
//! destination = {line1160, Executes}
//! ```

use crate::error::ParseError;
use crate::model::{
    MappingRecord, MetricAggregate, MetricRecord, NounRecord, PifFile, Record, ResourceRecord,
    SentenceRef, VerbRecord,
};
use std::fmt::Write as _;

/// Serialises a PIF file to its textual form.
pub fn write(file: &PifFile) -> String {
    let mut out = String::new();
    for (i, record) in file.records.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match record {
            Record::Noun(n) => {
                writeln!(out, "NOUN").unwrap();
                writeln!(out, "name = {}", n.name).unwrap();
                writeln!(out, "abstraction = {}", n.abstraction).unwrap();
                writeln!(out, "description = {}", n.description).unwrap();
            }
            Record::Verb(v) => {
                writeln!(out, "VERB").unwrap();
                writeln!(out, "name = {}", v.name).unwrap();
                writeln!(out, "abstraction = {}", v.abstraction).unwrap();
                writeln!(out, "description = {}", v.description).unwrap();
            }
            Record::Mapping(m) => {
                writeln!(out, "MAPPING").unwrap();
                writeln!(out, "source = {}", m.source).unwrap();
                writeln!(out, "destination = {}", m.destination).unwrap();
            }
            Record::Resource(r) => {
                writeln!(out, "RESOURCE").unwrap();
                writeln!(out, "hierarchy = {}", r.hierarchy).unwrap();
                writeln!(out, "path = {}", r.path).unwrap();
                writeln!(out, "abstraction = {}", r.abstraction).unwrap();
                if let Some(noun) = &r.noun {
                    writeln!(out, "noun = {noun}").unwrap();
                }
            }
            Record::Metric(m) => {
                writeln!(out, "METRIC").unwrap();
                writeln!(out, "name = {}", m.name).unwrap();
                writeln!(out, "abstraction = {}", m.abstraction).unwrap();
                writeln!(out, "units = {}", m.units).unwrap();
                writeln!(out, "aggregate = {}", m.aggregate).unwrap();
                writeln!(out, "description = {}", m.description).unwrap();
            }
        }
    }
    out
}

struct Block<'a> {
    keyword: &'a str,
    keyword_line: usize,
    fields: Vec<(usize, &'a str, &'a str)>,
}

impl<'a> Block<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.fields
            .iter()
            .find(|(_, k, _)| *k == key)
            .map(|&(_, _, v)| v)
    }

    fn require(&self, key: &str) -> Result<&'a str, ParseError> {
        self.get(key).ok_or_else(|| {
            ParseError::new(
                self.keyword_line,
                format!("{} record is missing '{key}'", self.keyword),
            )
        })
    }
}

/// Parses a sentence reference of the form `{noun, noun, verb}`.
pub fn parse_sentence_ref(s: &str, line: usize) -> Result<SentenceRef, ParseError> {
    let t = s.trim();
    let inner = t
        .strip_prefix('{')
        .and_then(|x| x.strip_suffix('}'))
        .ok_or_else(|| ParseError::new(line, format!("expected {{...}} sentence, got '{s}'")))?;
    let mut parts: Vec<String> = inner
        .split(',')
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect();
    if parts.is_empty() {
        return Err(ParseError::new(line, "empty sentence reference"));
    }
    let verb = parts.pop().expect("non-empty");
    Ok(SentenceRef::new(parts, verb))
}

/// Parses the textual PIF format.
pub fn parse(input: &str) -> Result<PifFile, ParseError> {
    let mut file = PifFile::new();
    for block in blocks(input)? {
        let record = match block.keyword {
            "NOUN" => Record::Noun(NounRecord {
                name: block.require("name")?.to_string(),
                abstraction: block.require("abstraction")?.to_string(),
                description: block.get("description").unwrap_or("").to_string(),
            }),
            "VERB" => Record::Verb(VerbRecord {
                name: block.require("name")?.to_string(),
                abstraction: block.require("abstraction")?.to_string(),
                description: block.get("description").unwrap_or("").to_string(),
            }),
            "MAPPING" => {
                let src_line = field_line(&block, "source");
                let dst_line = field_line(&block, "destination");
                Record::Mapping(MappingRecord {
                    source: parse_sentence_ref(block.require("source")?, src_line)?,
                    destination: parse_sentence_ref(block.require("destination")?, dst_line)?,
                })
            }
            "RESOURCE" => Record::Resource(ResourceRecord {
                hierarchy: block.require("hierarchy")?.to_string(),
                path: block.require("path")?.to_string(),
                abstraction: block.require("abstraction")?.to_string(),
                noun: block.get("noun").map(str::to_string),
            }),
            "METRIC" => {
                let agg_line = field_line(&block, "aggregate");
                let aggregate = match block.get("aggregate").unwrap_or("sum") {
                    "sum" => MetricAggregate::Sum,
                    "average" | "avg" => MetricAggregate::Average,
                    other => {
                        return Err(ParseError::new(
                            agg_line,
                            format!("unknown aggregate '{other}' (expected sum|average)"),
                        ))
                    }
                };
                Record::Metric(MetricRecord {
                    name: block.require("name")?.to_string(),
                    abstraction: block.require("abstraction")?.to_string(),
                    units: block.get("units").unwrap_or("").to_string(),
                    aggregate,
                    description: block.get("description").unwrap_or("").to_string(),
                })
            }
            other => {
                return Err(ParseError::new(
                    block.keyword_line,
                    format!("unknown record type '{other}'"),
                ))
            }
        };
        file.push(record);
    }
    Ok(file)
}

fn field_line(block: &Block<'_>, key: &str) -> usize {
    block
        .fields
        .iter()
        .find(|(_, k, _)| *k == key)
        .map(|&(l, _, _)| l)
        .unwrap_or(block.keyword_line)
}

fn blocks(input: &str) -> Result<Vec<Block<'_>>, ParseError> {
    let mut out: Vec<Block<'_>> = Vec::new();
    let mut current: Option<Block<'_>> = None;
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            if let Some(b) = current.take() {
                out.push(b);
            }
            continue;
        }
        match &mut current {
            None => {
                if line.contains('=') {
                    return Err(ParseError::new(
                        lineno,
                        "expected a record-type keyword before fields",
                    ));
                }
                current = Some(Block {
                    keyword: line,
                    keyword_line: lineno,
                    fields: Vec::new(),
                });
            }
            Some(block) => {
                let Some(eq) = raw.find('=') else {
                    return Err(ParseError::new(
                        lineno,
                        format!("expected 'key = value' inside {} record", block.keyword),
                    ));
                };
                let key = raw[..eq].trim();
                let value = raw[eq + 1..].trim();
                if key.is_empty() {
                    return Err(ParseError::new(lineno, "empty field key"));
                }
                block.fields.push((lineno, key, value));
            }
        }
    }
    if let Some(b) = current.take() {
        out.push(b);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact content of the paper's Figure 2.
    pub(crate) const FIGURE2: &str = "\
NOUN
name = line1160
abstraction = CM Fortran
description = line #1160 in source file /usr/src/prog/main.fcm

NOUN
name = line1161
abstraction = CM Fortran
description = line #1161 in source file /usr/src/prog/main.fcm

VERB
name = Executes
abstraction = CM Fortran
description = units are \"% CPU\"

NOUN
name = cmpe_corr_6_()
abstraction = Base
description = compiler generated function, source code not available

VERB
name = CPU Utilization
abstraction = Base
description = units are \"% CPU\"

MAPPING
source = {cmpe_corr_6_(), CPU Utilization}
destination = {line1160, Executes}

MAPPING
source = {cmpe_corr_6_(), CPU Utilization}
destination = {line1161, Executes}
";

    #[test]
    fn parses_figure2() {
        let f = parse(FIGURE2).unwrap();
        assert_eq!(f.records.len(), 7);
        assert_eq!(f.nouns().count(), 3);
        assert_eq!(f.verbs().count(), 2);
        let maps: Vec<_> = f.mappings().collect();
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].source.nouns, vec!["cmpe_corr_6_()"]);
        assert_eq!(maps[0].source.verb, "CPU Utilization");
        assert_eq!(maps[1].destination.nouns, vec!["line1161"]);
        assert_eq!(maps[1].destination.verb, "Executes");
    }

    #[test]
    fn roundtrip_write_parse() {
        let f = parse(FIGURE2).unwrap();
        let text = write(&f);
        let f2 = parse(&text).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn parses_resource_and_metric_records() {
        let input = "\
RESOURCE
hierarchy = CMFarrays
path = /bow.fcm/CORNER/TOT
abstraction = CM Fortran
noun = TOT

METRIC
name = Summation Time
abstraction = CM Fortran
units = seconds
aggregate = sum
description = Time spent summing arrays.
";
        let f = parse(input).unwrap();
        let r = f.resources().next().unwrap();
        assert_eq!(r.path, "/bow.fcm/CORNER/TOT");
        assert_eq!(r.noun.as_deref(), Some("TOT"));
        let m = f.metrics().next().unwrap();
        assert_eq!(m.name, "Summation Time");
        assert_eq!(m.aggregate, MetricAggregate::Sum);
        // Round-trip these too.
        assert_eq!(parse(&write(&f)).unwrap(), f);
    }

    #[test]
    fn multi_noun_sentence_ref() {
        let s = parse_sentence_ref("{A, B, Sums}", 1).unwrap();
        assert_eq!(s.nouns, vec!["A", "B"]);
        assert_eq!(s.verb, "Sums");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let input = "# produced by cmf-lang\n\nVERB\nname = v\nabstraction = L\n\n# end\n";
        let f = parse(input).unwrap();
        assert_eq!(f.verbs().count(), 1);
    }

    #[test]
    fn error_on_unknown_record_type() {
        let e = parse("BOGUS\nname = x\n").unwrap_err();
        assert!(e.message.contains("unknown record type"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_on_missing_field() {
        let e = parse("NOUN\nname = x\n").unwrap_err();
        assert!(e.message.contains("missing 'abstraction'"));
    }

    #[test]
    fn error_on_field_before_keyword() {
        let e = parse("name = x\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("keyword"));
    }

    #[test]
    fn error_on_bad_sentence_syntax() {
        let e = parse("MAPPING\nsource = cmpe(), CPU\ndestination = {a, v}\n").unwrap_err();
        assert!(e.message.contains("expected {"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn error_on_bad_aggregate() {
        let e = parse("METRIC\nname = m\nabstraction = L\naggregate = median\n").unwrap_err();
        assert!(e.message.contains("unknown aggregate"));
        assert_eq!(e.line, 4);
    }

    #[test]
    fn values_may_contain_equals() {
        let f = parse("NOUN\nname = x\nabstraction = L\ndescription = a = b\n").unwrap();
        assert_eq!(f.nouns().next().unwrap().description, "a = b");
    }
}
