//! Programmatic copies of the paper's example records, used by tests and by
//! the figure-regeneration binaries.

use crate::model::{MappingRecord, NounRecord, PifFile, Record, SentenceRef, VerbRecord};

/// The static mapping information of the paper's Figure 2: two CM Fortran
/// source lines implemented by one compiler-generated function.
pub fn figure2() -> PifFile {
    let mut f = PifFile::new();
    f.push(Record::Noun(NounRecord {
        name: "line1160".into(),
        abstraction: "CM Fortran".into(),
        description: "line #1160 in source file /usr/src/prog/main.fcm".into(),
    }));
    f.push(Record::Noun(NounRecord {
        name: "line1161".into(),
        abstraction: "CM Fortran".into(),
        description: "line #1161 in source file /usr/src/prog/main.fcm".into(),
    }));
    f.push(Record::Verb(VerbRecord {
        name: "Executes".into(),
        abstraction: "CM Fortran".into(),
        description: "units are \"% CPU\"".into(),
    }));
    f.push(Record::Noun(NounRecord {
        name: "cmpe_corr_6_()".into(),
        abstraction: "Base".into(),
        description: "compiler generated function, source code not available".into(),
    }));
    f.push(Record::Verb(VerbRecord {
        name: "CPU Utilization".into(),
        abstraction: "Base".into(),
        description: "units are \"% CPU\"".into(),
    }));
    for line in ["line1160", "line1161"] {
        f.push(Record::Mapping(MappingRecord {
            source: SentenceRef::new(vec!["cmpe_corr_6_()".into()], "CPU Utilization"),
            destination: SentenceRef::new(vec![line.into()], "Executes"),
        }));
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text;

    #[test]
    fn figure2_roundtrips_through_text() {
        let f = figure2();
        let parsed = text::parse(&text::write(&f)).unwrap();
        assert_eq!(f, parsed);
    }

    #[test]
    fn figure2_text_matches_paper_fields() {
        let s = text::write(&figure2());
        assert!(s.contains("name = line1160"));
        assert!(s.contains("description = compiler generated function, source code not available"));
        assert!(s.contains("source = {cmpe_corr_6_(), CPU Utilization}"));
        assert!(s.contains("destination = {line1161, Executes}"));
    }
}
