//! # pdmap-pif — the Paradyn Information Format
//!
//! Static mapping information (paper §3 and §5): record model (Figure 3),
//! a textual serialisation matching Figure 2, application of records to a
//! live [`pdmap::model::Namespace`]/[`pdmap::mapping::MappingTable`]/
//! [`pdmap::hierarchy::WhereAxis`], and the §6.2 compiler-listing scanner
//! that turns compiler output into PIF.
//!
//! ```
//! use pdmap::{hierarchy::WhereAxis, mapping::MappingTable, model::Namespace};
//!
//! let text = pdmap_pif::write(&pdmap_pif::samples::figure2());
//! let file = pdmap_pif::parse(&text).unwrap();
//! let ns = Namespace::new();
//! let mut table = MappingTable::new();
//! let mut axis = WhereAxis::new();
//! let applied = pdmap_pif::apply(&file, &ns, &mut table, &mut axis).unwrap();
//! assert_eq!(applied.mappings.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apply;
pub mod error;
pub mod listing;
pub mod model;
pub mod samples;
pub mod text;

pub use apply::{apply, resolve_sentence, Applied};
pub use error::{ApplyError, ParseError};
pub use listing::{listing_to_pif, parse_listing, Listing, ScanOptions};
pub use model::{
    MappingRecord, MetricAggregate, MetricRecord, NounRecord, PifFile, Record, ResourceRecord,
    SentenceRef, VerbRecord,
};
pub use text::{parse, parse_sentence_ref, write};
