//! The compiler-listing scanner (paper §6.2).
//!
//! "We create CM Fortran PIF files with a simple utility that parses CM
//! Fortran compiler output files. The utility scans the compiler output
//! files for lists of parallel statements, parallel arrays, and node-code
//! blocks. It then produces a PIF file that defines the statements and
//! arrays for Paradyn and describes the mappings from statements to code
//! blocks."
//!
//! The listing format is the one emitted by the `cmf-lang` compiler:
//!
//! ```text
//! CMF LISTING v1
//! file = bow.fcm
//! statement line=1160 fn=CORNER text=ASUM = SUM(A)
//! array name=TOT fn=CORNER rank=2 extents=64,64 dist=block
//! block name=cmpe_corner_6_ lines=1160,1161 arrays=TOT,SRM
//! ```
//!
//! Because our compiler also records which arrays each node-code block
//! touches, the generated PIF includes the statement→data-structure mapping
//! the paper laments is "typically not available" from symbolic debugging
//! information (§1).

use crate::error::ParseError;
use crate::model::{
    MappingRecord, NounRecord, PifFile, Record, ResourceRecord, SentenceRef, VerbRecord,
};
use std::collections::BTreeSet;

/// A parallel statement entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatementEntry {
    /// Source line number.
    pub line: u32,
    /// Enclosing function (empty for top level).
    pub function: String,
    /// Source text of the statement.
    pub text: String,
}

/// A parallel array entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayEntry {
    /// Array name.
    pub name: String,
    /// Enclosing function (empty for top level / common).
    pub function: String,
    /// Number of dimensions.
    pub rank: u32,
    /// Extent per dimension.
    pub extents: Vec<u64>,
    /// Distribution ("block", "cyclic", ...).
    pub dist: String,
}

/// A node-code-block entry: one compiler-generated function that runs on
/// every processing node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockEntry {
    /// Mangled block name (e.g. `cmpe_corner_6_`).
    pub name: String,
    /// Source lines the block implements.
    pub lines: Vec<u32>,
    /// Arrays the block touches.
    pub arrays: Vec<String>,
}

/// A parsed compiler listing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Listing {
    /// Source file name.
    pub file: String,
    /// Parallel statements.
    pub statements: Vec<StatementEntry>,
    /// Parallel arrays.
    pub arrays: Vec<ArrayEntry>,
    /// Node code blocks.
    pub blocks: Vec<BlockEntry>,
}

fn kv<'a>(token: &'a str, key: &str, lineno: usize) -> Result<&'a str, ParseError> {
    token
        .strip_prefix(key)
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| ParseError::new(lineno, format!("expected '{key}=...', got '{token}'")))
}

fn parse_u32(s: &str, lineno: usize) -> Result<u32, ParseError> {
    s.parse()
        .map_err(|_| ParseError::new(lineno, format!("expected integer, got '{s}'")))
}

fn parse_list<T>(
    s: &str,
    lineno: usize,
    f: impl Fn(&str, usize) -> Result<T, ParseError>,
) -> Result<Vec<T>, ParseError> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| f(p.trim(), lineno))
        .collect()
}

/// Parses a compiler listing.
pub fn parse_listing(input: &str) -> Result<Listing, ParseError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::new(1, "empty listing"))?;
    if header.trim() != "CMF LISTING v1" {
        return Err(ParseError::new(1, "expected 'CMF LISTING v1' header"));
    }
    let mut listing = Listing::default();
    for (i, raw) in lines {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("file =") {
            listing.file = rest.trim().to_string();
            continue;
        }
        let (kind, rest) = line
            .split_once(' ')
            .ok_or_else(|| ParseError::new(lineno, format!("malformed entry '{line}'")))?;
        match kind {
            "statement" => {
                // Fields are positional because `text=` swallows the rest.
                let rest = rest.trim_start();
                let (line_tok, rest) = rest
                    .split_once(' ')
                    .ok_or_else(|| ParseError::new(lineno, "statement missing fields"))?;
                let line_no = parse_u32(kv(line_tok, "line", lineno)?, lineno)?;
                let (function, rest) = if let Some(after) = rest.strip_prefix("fn=") {
                    let (f, r) = after
                        .split_once(' ')
                        .ok_or_else(|| ParseError::new(lineno, "statement missing text="))?;
                    (f.to_string(), r)
                } else {
                    (String::new(), rest)
                };
                let text = kv(rest, "text", lineno)?.to_string();
                listing.statements.push(StatementEntry {
                    line: line_no,
                    function,
                    text,
                });
            }
            "array" => {
                let mut name = None;
                let mut function = String::new();
                let mut rank = 1u32;
                let mut extents = Vec::new();
                let mut dist = "block".to_string();
                for tok in rest.split_whitespace() {
                    if let Some(v) = tok.strip_prefix("name=") {
                        name = Some(v.to_string());
                    } else if let Some(v) = tok.strip_prefix("fn=") {
                        function = v.to_string();
                    } else if let Some(v) = tok.strip_prefix("rank=") {
                        rank = parse_u32(v, lineno)?;
                    } else if let Some(v) = tok.strip_prefix("extents=") {
                        extents = parse_list(v, lineno, |s, l| {
                            s.parse::<u64>()
                                .map_err(|_| ParseError::new(l, format!("bad extent '{s}'")))
                        })?;
                    } else if let Some(v) = tok.strip_prefix("dist=") {
                        dist = v.to_string();
                    } else {
                        return Err(ParseError::new(
                            lineno,
                            format!("unknown array field '{tok}'"),
                        ));
                    }
                }
                let name =
                    name.ok_or_else(|| ParseError::new(lineno, "array entry missing name="))?;
                listing.arrays.push(ArrayEntry {
                    name,
                    function,
                    rank,
                    extents,
                    dist,
                });
            }
            "block" => {
                let mut name = None;
                let mut block_lines = Vec::new();
                let mut arrays = Vec::new();
                for tok in rest.split_whitespace() {
                    if let Some(v) = tok.strip_prefix("name=") {
                        name = Some(v.to_string());
                    } else if let Some(v) = tok.strip_prefix("lines=") {
                        block_lines = parse_list(v, lineno, parse_u32)?;
                    } else if let Some(v) = tok.strip_prefix("arrays=") {
                        arrays = parse_list(v, lineno, |s, _| Ok(s.to_string()))?;
                    } else {
                        return Err(ParseError::new(
                            lineno,
                            format!("unknown block field '{tok}'"),
                        ));
                    }
                }
                let name =
                    name.ok_or_else(|| ParseError::new(lineno, "block entry missing name="))?;
                listing.blocks.push(BlockEntry {
                    name,
                    lines: block_lines,
                    arrays,
                });
            }
            other => {
                return Err(ParseError::new(
                    lineno,
                    format!("unknown entry kind '{other}'"),
                ));
            }
        }
    }
    Ok(listing)
}

/// Options controlling PIF generation from a listing.
#[derive(Clone, Debug)]
pub struct ScanOptions {
    /// Name of the source level of abstraction.
    pub source_level: String,
    /// Name of the base level of abstraction.
    pub base_level: String,
}

impl Default for ScanOptions {
    fn default() -> Self {
        Self {
            source_level: "CM Fortran".to_string(),
            base_level: "Base".to_string(),
        }
    }
}

/// Converts a parsed listing to PIF records: noun definitions for lines,
/// arrays, and node-code blocks; `Executes`/`Touches`/`CPU Utilization`
/// verbs; block→line and block→array mappings; and where-axis resource
/// records for the `CMFstmts` and `CMFarrays` hierarchies (Figure 8).
pub fn listing_to_pif(listing: &Listing, opts: &ScanOptions) -> PifFile {
    let mut f = PifFile::new();
    let src = &opts.source_level;
    let base = &opts.base_level;

    f.push(Record::Verb(VerbRecord {
        name: "Executes".into(),
        abstraction: src.clone(),
        description: "units are \"% CPU\"".into(),
    }));
    f.push(Record::Verb(VerbRecord {
        name: "Touches".into(),
        abstraction: src.clone(),
        description: "array is referenced by executing code".into(),
    }));
    f.push(Record::Verb(VerbRecord {
        name: "CPU Utilization".into(),
        abstraction: base.clone(),
        description: "units are \"% CPU\"".into(),
    }));

    for s in &listing.statements {
        f.push(Record::Noun(NounRecord {
            name: format!("line{}", s.line),
            abstraction: src.clone(),
            description: format!(
                "line #{} in source file {}: {}",
                s.line, listing.file, s.text
            ),
        }));
        let scope = if s.function.is_empty() {
            listing.file.clone()
        } else {
            format!("{}/{}", listing.file, s.function)
        };
        f.push(Record::Resource(ResourceRecord {
            hierarchy: "CMFstmts".into(),
            path: format!("/{scope}/line#{}", s.line),
            abstraction: src.clone(),
            noun: Some(format!("line{}", s.line)),
        }));
    }

    for a in &listing.arrays {
        f.push(Record::Noun(NounRecord {
            name: a.name.clone(),
            abstraction: src.clone(),
            description: format!(
                "parallel array {} rank {} extents {:?} dist {}",
                a.name, a.rank, a.extents, a.dist
            ),
        }));
        let scope = if a.function.is_empty() {
            listing.file.clone()
        } else {
            format!("{}/{}", listing.file, a.function)
        };
        f.push(Record::Resource(ResourceRecord {
            hierarchy: "CMFarrays".into(),
            path: format!("/{scope}/{}", a.name),
            abstraction: src.clone(),
            noun: Some(a.name.clone()),
        }));
    }

    let known_arrays: BTreeSet<&str> = listing.arrays.iter().map(|a| a.name.as_str()).collect();

    for b in &listing.blocks {
        let block_noun = format!("{}()", b.name);
        f.push(Record::Noun(NounRecord {
            name: block_noun.clone(),
            abstraction: base.clone(),
            description: "compiler generated function, source code not available".into(),
        }));
        let source = SentenceRef::new(vec![block_noun.clone()], "CPU Utilization");
        for &line in &b.lines {
            f.push(Record::Mapping(MappingRecord {
                source: source.clone(),
                destination: SentenceRef::new(vec![format!("line{line}")], "Executes"),
            }));
        }
        for array in &b.arrays {
            // Skip arrays the listing never declared (defensive against
            // hand-edited listings).
            if known_arrays.contains(array.as_str()) {
                f.push(Record::Mapping(MappingRecord {
                    source: source.clone(),
                    destination: SentenceRef::new(vec![array.clone()], "Touches"),
                }));
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
CMF LISTING v1
file = main.fcm
statement line=1160 fn=CORR text=X = A + B
statement line=1161 fn=CORR text=Y = A - B
array name=A fn=CORR rank=1 extents=1024 dist=block
array name=B fn=CORR rank=1 extents=1024 dist=block
block name=cmpe_corr_6_ lines=1160,1161 arrays=A,B
";

    #[test]
    fn parses_sample_listing() {
        let l = parse_listing(SAMPLE).unwrap();
        assert_eq!(l.file, "main.fcm");
        assert_eq!(l.statements.len(), 2);
        assert_eq!(l.statements[0].line, 1160);
        assert_eq!(l.statements[0].function, "CORR");
        assert_eq!(l.statements[0].text, "X = A + B");
        assert_eq!(l.arrays.len(), 2);
        assert_eq!(l.arrays[0].extents, vec![1024]);
        assert_eq!(l.blocks.len(), 1);
        assert_eq!(l.blocks[0].lines, vec![1160, 1161]);
        assert_eq!(l.blocks[0].arrays, vec!["A", "B"]);
    }

    #[test]
    fn statement_text_may_contain_spaces_and_equals() {
        let l = parse_listing("CMF LISTING v1\nstatement line=5 text=ASUM = SUM(A)\n").unwrap();
        assert_eq!(l.statements[0].text, "ASUM = SUM(A)");
        assert_eq!(l.statements[0].function, "");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_listing("LISTING\n").is_err());
        assert!(parse_listing("").is_err());
    }

    #[test]
    fn rejects_unknown_entries() {
        let e = parse_listing("CMF LISTING v1\nwidget name=x\n").unwrap_err();
        assert!(e.message.contains("unknown entry kind"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn pif_generation_reproduces_figure2_shape() {
        let l = parse_listing(SAMPLE).unwrap();
        let pif = listing_to_pif(&l, &ScanOptions::default());
        // Statements + arrays + block nouns.
        assert_eq!(pif.nouns().count(), 2 + 2 + 1);
        // Block -> 2 lines + 2 arrays.
        assert_eq!(pif.mappings().count(), 4);
        let text = crate::text::write(&pif);
        assert!(text.contains("source = {cmpe_corr_6_(), CPU Utilization}"));
        assert!(text.contains("destination = {line1160, Executes}"));
        assert!(text.contains("destination = {A, Touches}"));
    }

    #[test]
    fn pif_applies_cleanly() {
        use pdmap::hierarchy::WhereAxis;
        use pdmap::mapping::MappingTable;
        use pdmap::model::Namespace;
        let l = parse_listing(SAMPLE).unwrap();
        let pif = listing_to_pif(&l, &ScanOptions::default());
        let ns = Namespace::new();
        let mut table = MappingTable::new();
        let mut axis = WhereAxis::new();
        let applied = crate::apply::apply(&pif, &ns, &mut table, &mut axis).unwrap();
        assert_eq!(applied.mappings.len(), 4);
        let stmts = axis.tree("CMFstmts").unwrap();
        assert!(stmts.resolve("/main.fcm/CORR/line#1160").is_some());
        let arrays = axis.tree("CMFarrays").unwrap();
        assert!(arrays.resolve("/main.fcm/CORR/A").is_some());
    }

    #[test]
    fn unknown_block_arrays_are_skipped() {
        let src = "CMF LISTING v1\nblock name=b lines=1 arrays=GHOST\nstatement line=1 text=x\n";
        let l = parse_listing(src).unwrap();
        let pif = listing_to_pif(&l, &ScanOptions::default());
        // Only the line mapping, not the ghost-array mapping.
        assert_eq!(pif.mappings().count(), 1);
    }

    #[test]
    fn listing_roundtrip_stability() {
        // parse → to_pif → write → parse(PIF) should be stable.
        let l = parse_listing(SAMPLE).unwrap();
        let pif = listing_to_pif(&l, &ScanOptions::default());
        let text = crate::text::write(&pif);
        let parsed = crate::text::parse(&text).unwrap();
        assert_eq!(pif, parsed);
    }
}
