/root/repo/target/debug/examples/async_limitation-bbed399efb96fa3b.d: examples/async_limitation.rs Cargo.toml

/root/repo/target/debug/examples/libasync_limitation-bbed399efb96fa3b.rmeta: examples/async_limitation.rs Cargo.toml

examples/async_limitation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
