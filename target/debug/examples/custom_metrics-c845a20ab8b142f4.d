/root/repo/target/debug/examples/custom_metrics-c845a20ab8b142f4.d: examples/custom_metrics.rs

/root/repo/target/debug/examples/custom_metrics-c845a20ab8b142f4: examples/custom_metrics.rs

examples/custom_metrics.rs:
