/root/repo/target/debug/examples/async_limitation-ba8971931e799404.d: examples/async_limitation.rs

/root/repo/target/debug/examples/async_limitation-ba8971931e799404: examples/async_limitation.rs

examples/async_limitation.rs:
