/root/repo/target/debug/examples/stencil-04d8a765e82e935f.d: examples/stencil.rs Cargo.toml

/root/repo/target/debug/examples/libstencil-04d8a765e82e935f.rmeta: examples/stencil.rs Cargo.toml

examples/stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
