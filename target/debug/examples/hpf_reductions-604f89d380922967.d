/root/repo/target/debug/examples/hpf_reductions-604f89d380922967.d: examples/hpf_reductions.rs Cargo.toml

/root/repo/target/debug/examples/libhpf_reductions-604f89d380922967.rmeta: examples/hpf_reductions.rs Cargo.toml

examples/hpf_reductions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
