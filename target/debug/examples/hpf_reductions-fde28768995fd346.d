/root/repo/target/debug/examples/hpf_reductions-fde28768995fd346.d: examples/hpf_reductions.rs

/root/repo/target/debug/examples/hpf_reductions-fde28768995fd346: examples/hpf_reductions.rs

examples/hpf_reductions.rs:
