/root/repo/target/debug/examples/stencil-a63b84826d76f120.d: examples/stencil.rs

/root/repo/target/debug/examples/stencil-a63b84826d76f120: examples/stencil.rs

examples/stencil.rs:
