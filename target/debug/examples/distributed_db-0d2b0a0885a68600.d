/root/repo/target/debug/examples/distributed_db-0d2b0a0885a68600.d: examples/distributed_db.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_db-0d2b0a0885a68600.rmeta: examples/distributed_db.rs Cargo.toml

examples/distributed_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
