/root/repo/target/debug/examples/distributed_db-9d551f6e96c54a60.d: examples/distributed_db.rs

/root/repo/target/debug/examples/distributed_db-9d551f6e96c54a60: examples/distributed_db.rs

examples/distributed_db.rs:
