/root/repo/target/debug/examples/consultant-7ebdb4ba074f15c8.d: examples/consultant.rs

/root/repo/target/debug/examples/consultant-7ebdb4ba074f15c8: examples/consultant.rs

examples/consultant.rs:
