/root/repo/target/debug/examples/consultant-fa5cf5080886adca.d: examples/consultant.rs Cargo.toml

/root/repo/target/debug/examples/libconsultant-fa5cf5080886adca.rmeta: examples/consultant.rs Cargo.toml

examples/consultant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
