/root/repo/target/debug/examples/custom_metrics-7c036505dfbbc382.d: examples/custom_metrics.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_metrics-7c036505dfbbc382.rmeta: examples/custom_metrics.rs Cargo.toml

examples/custom_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
