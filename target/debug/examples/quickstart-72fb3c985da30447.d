/root/repo/target/debug/examples/quickstart-72fb3c985da30447.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-72fb3c985da30447: examples/quickstart.rs

examples/quickstart.rs:
