/root/repo/target/debug/deps/fig7_async_limitation-ed7977d93306a840.d: crates/bench/src/bin/fig7_async_limitation.rs

/root/repo/target/debug/deps/fig7_async_limitation-ed7977d93306a840: crates/bench/src/bin/fig7_async_limitation.rs

crates/bench/src/bin/fig7_async_limitation.rs:
