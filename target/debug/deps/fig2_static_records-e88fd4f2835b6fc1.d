/root/repo/target/debug/deps/fig2_static_records-e88fd4f2835b6fc1.d: crates/bench/src/bin/fig2_static_records.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_static_records-e88fd4f2835b6fc1.rmeta: crates/bench/src/bin/fig2_static_records.rs Cargo.toml

crates/bench/src/bin/fig2_static_records.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
