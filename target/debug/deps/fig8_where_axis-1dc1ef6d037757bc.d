/root/repo/target/debug/deps/fig8_where_axis-1dc1ef6d037757bc.d: crates/bench/src/bin/fig8_where_axis.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_where_axis-1dc1ef6d037757bc.rmeta: crates/bench/src/bin/fig8_where_axis.rs Cargo.toml

crates/bench/src/bin/fig8_where_axis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
