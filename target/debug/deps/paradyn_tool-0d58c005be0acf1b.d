/root/repo/target/debug/deps/paradyn_tool-0d58c005be0acf1b.d: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs Cargo.toml

/root/repo/target/debug/deps/libparadyn_tool-0d58c005be0acf1b.rmeta: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs Cargo.toml

crates/paradyn/src/lib.rs:
crates/paradyn/src/catalogue.rs:
crates/paradyn/src/consultant.rs:
crates/paradyn/src/daemon.rs:
crates/paradyn/src/datamgr.rs:
crates/paradyn/src/metrics.rs:
crates/paradyn/src/report.rs:
crates/paradyn/src/stream.rs:
crates/paradyn/src/tool.rs:
crates/paradyn/src/visi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
