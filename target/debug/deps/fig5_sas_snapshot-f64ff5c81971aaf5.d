/root/repo/target/debug/deps/fig5_sas_snapshot-f64ff5c81971aaf5.d: crates/bench/src/bin/fig5_sas_snapshot.rs

/root/repo/target/debug/deps/fig5_sas_snapshot-f64ff5c81971aaf5: crates/bench/src/bin/fig5_sas_snapshot.rs

crates/bench/src/bin/fig5_sas_snapshot.rs:
