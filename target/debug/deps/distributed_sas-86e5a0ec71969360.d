/root/repo/target/debug/deps/distributed_sas-86e5a0ec71969360.d: crates/bench/benches/distributed_sas.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed_sas-86e5a0ec71969360.rmeta: crates/bench/benches/distributed_sas.rs Cargo.toml

crates/bench/benches/distributed_sas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
