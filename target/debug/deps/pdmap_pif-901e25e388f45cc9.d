/root/repo/target/debug/deps/pdmap_pif-901e25e388f45cc9.d: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libpdmap_pif-901e25e388f45cc9.rmeta: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs Cargo.toml

crates/pif/src/lib.rs:
crates/pif/src/apply.rs:
crates/pif/src/error.rs:
crates/pif/src/listing.rs:
crates/pif/src/model.rs:
crates/pif/src/samples.rs:
crates/pif/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
