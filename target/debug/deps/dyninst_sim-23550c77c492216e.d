/root/repo/target/debug/deps/dyninst_sim-23550c77c492216e.d: crates/dyninst/src/lib.rs crates/dyninst/src/manager.rs crates/dyninst/src/mdl/mod.rs crates/dyninst/src/mdl/ast.rs crates/dyninst/src/mdl/lex.rs crates/dyninst/src/mdl/parse.rs crates/dyninst/src/metrics.rs crates/dyninst/src/point.rs crates/dyninst/src/primitive.rs crates/dyninst/src/snippet.rs Cargo.toml

/root/repo/target/debug/deps/libdyninst_sim-23550c77c492216e.rmeta: crates/dyninst/src/lib.rs crates/dyninst/src/manager.rs crates/dyninst/src/mdl/mod.rs crates/dyninst/src/mdl/ast.rs crates/dyninst/src/mdl/lex.rs crates/dyninst/src/mdl/parse.rs crates/dyninst/src/metrics.rs crates/dyninst/src/point.rs crates/dyninst/src/primitive.rs crates/dyninst/src/snippet.rs Cargo.toml

crates/dyninst/src/lib.rs:
crates/dyninst/src/manager.rs:
crates/dyninst/src/mdl/mod.rs:
crates/dyninst/src/mdl/ast.rs:
crates/dyninst/src/mdl/lex.rs:
crates/dyninst/src/mdl/parse.rs:
crates/dyninst/src/metrics.rs:
crates/dyninst/src/point.rs:
crates/dyninst/src/primitive.rs:
crates/dyninst/src/snippet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
