/root/repo/target/debug/deps/pdmap_bench-c503becdc1e5f0f6.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libpdmap_bench-c503becdc1e5f0f6.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libpdmap_bench-c503becdc1e5f0f6.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
