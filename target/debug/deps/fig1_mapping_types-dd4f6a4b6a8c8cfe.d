/root/repo/target/debug/deps/fig1_mapping_types-dd4f6a4b6a8c8cfe.d: crates/bench/src/bin/fig1_mapping_types.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_mapping_types-dd4f6a4b6a8c8cfe.rmeta: crates/bench/src/bin/fig1_mapping_types.rs Cargo.toml

crates/bench/src/bin/fig1_mapping_types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
