/root/repo/target/debug/deps/fig6_questions-4f38adc08062026b.d: crates/bench/src/bin/fig6_questions.rs

/root/repo/target/debug/deps/fig6_questions-4f38adc08062026b: crates/bench/src/bin/fig6_questions.rs

crates/bench/src/bin/fig6_questions.rs:
