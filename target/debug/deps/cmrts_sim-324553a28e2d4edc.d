/root/repo/target/debug/deps/cmrts_sim-324553a28e2d4edc.d: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs

/root/repo/target/debug/deps/cmrts_sim-324553a28e2d4edc: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs

crates/cmrts/src/lib.rs:
crates/cmrts/src/cost.rs:
crates/cmrts/src/ir.rs:
crates/cmrts/src/layout.rs:
crates/cmrts/src/machine.rs:
crates/cmrts/src/points.rs:
crates/cmrts/src/trace.rs:
crates/cmrts/src/types.rs:
