/root/repo/target/debug/deps/sas_ops-781db274ba4c1642.d: crates/bench/benches/sas_ops.rs Cargo.toml

/root/repo/target/debug/deps/libsas_ops-781db274ba4c1642.rmeta: crates/bench/benches/sas_ops.rs Cargo.toml

crates/bench/benches/sas_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
