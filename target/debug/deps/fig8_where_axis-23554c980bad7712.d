/root/repo/target/debug/deps/fig8_where_axis-23554c980bad7712.d: crates/bench/src/bin/fig8_where_axis.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_where_axis-23554c980bad7712.rmeta: crates/bench/src/bin/fig8_where_axis.rs Cargo.toml

crates/bench/src/bin/fig8_where_axis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
