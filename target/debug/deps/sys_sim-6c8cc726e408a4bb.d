/root/repo/target/debug/deps/sys_sim-6c8cc726e408a4bb.d: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs

/root/repo/target/debug/deps/libsys_sim-6c8cc726e408a4bb.rlib: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs

/root/repo/target/debug/deps/libsys_sim-6c8cc726e408a4bb.rmeta: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs

crates/syssim/src/lib.rs:
crates/syssim/src/db.rs:
crates/syssim/src/kernel.rs:
