/root/repo/target/debug/deps/ablation_fusion-a6c00f6c3ac532dd.d: crates/bench/src/bin/ablation_fusion.rs

/root/repo/target/debug/deps/ablation_fusion-a6c00f6c3ac532dd: crates/bench/src/bin/ablation_fusion.rs

crates/bench/src/bin/ablation_fusion.rs:
