/root/repo/target/debug/deps/sys_sim-cf99afa97c060183.d: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs Cargo.toml

/root/repo/target/debug/deps/libsys_sim-cf99afa97c060183.rmeta: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs Cargo.toml

crates/syssim/src/lib.rs:
crates/syssim/src/db.rs:
crates/syssim/src/kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
