/root/repo/target/debug/deps/pdmap_bench-3b5276c32a885508.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/pdmap_bench-3b5276c32a885508: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
