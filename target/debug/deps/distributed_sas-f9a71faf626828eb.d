/root/repo/target/debug/deps/distributed_sas-f9a71faf626828eb.d: crates/bench/benches/distributed_sas.rs

/root/repo/target/debug/deps/distributed_sas-f9a71faf626828eb: crates/bench/benches/distributed_sas.rs

crates/bench/benches/distributed_sas.rs:
