/root/repo/target/debug/deps/fig7_async_limitation-21aeb2dced66087b.d: crates/bench/src/bin/fig7_async_limitation.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_async_limitation-21aeb2dced66087b.rmeta: crates/bench/src/bin/fig7_async_limitation.rs Cargo.toml

crates/bench/src/bin/fig7_async_limitation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
