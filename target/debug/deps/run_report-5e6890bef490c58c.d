/root/repo/target/debug/deps/run_report-5e6890bef490c58c.d: crates/bench/src/bin/run_report.rs Cargo.toml

/root/repo/target/debug/deps/librun_report-5e6890bef490c58c.rmeta: crates/bench/src/bin/run_report.rs Cargo.toml

crates/bench/src/bin/run_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
