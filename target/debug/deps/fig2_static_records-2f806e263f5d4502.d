/root/repo/target/debug/deps/fig2_static_records-2f806e263f5d4502.d: crates/bench/src/bin/fig2_static_records.rs

/root/repo/target/debug/deps/fig2_static_records-2f806e263f5d4502: crates/bench/src/bin/fig2_static_records.rs

crates/bench/src/bin/fig2_static_records.rs:
