/root/repo/target/debug/deps/pdmap_transport-9643306fa53feabe.d: crates/transport/src/lib.rs crates/transport/src/backend.rs crates/transport/src/config.rs crates/transport/src/frame.rs crates/transport/src/inproc.rs crates/transport/src/queue.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs crates/transport/src/wire.rs

/root/repo/target/debug/deps/pdmap_transport-9643306fa53feabe: crates/transport/src/lib.rs crates/transport/src/backend.rs crates/transport/src/config.rs crates/transport/src/frame.rs crates/transport/src/inproc.rs crates/transport/src/queue.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs crates/transport/src/wire.rs

crates/transport/src/lib.rs:
crates/transport/src/backend.rs:
crates/transport/src/config.rs:
crates/transport/src/frame.rs:
crates/transport/src/inproc.rs:
crates/transport/src/queue.rs:
crates/transport/src/stats.rs:
crates/transport/src/tcp.rs:
crates/transport/src/wire.rs:
