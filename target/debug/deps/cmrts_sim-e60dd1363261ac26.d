/root/repo/target/debug/deps/cmrts_sim-e60dd1363261ac26.d: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libcmrts_sim-e60dd1363261ac26.rmeta: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs Cargo.toml

crates/cmrts/src/lib.rs:
crates/cmrts/src/cost.rs:
crates/cmrts/src/ir.rs:
crates/cmrts/src/layout.rs:
crates/cmrts/src/machine.rs:
crates/cmrts/src/points.rs:
crates/cmrts/src/trace.rs:
crates/cmrts/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
