/root/repo/target/debug/deps/fig3_record_types-53a2c501710d4381.d: crates/bench/src/bin/fig3_record_types.rs

/root/repo/target/debug/deps/fig3_record_types-53a2c501710d4381: crates/bench/src/bin/fig3_record_types.rs

crates/bench/src/bin/fig3_record_types.rs:
