/root/repo/target/debug/deps/fig8_where_axis-aa3059f8ca9b388b.d: crates/bench/src/bin/fig8_where_axis.rs

/root/repo/target/debug/deps/fig8_where_axis-aa3059f8ca9b388b: crates/bench/src/bin/fig8_where_axis.rs

crates/bench/src/bin/fig8_where_axis.rs:
