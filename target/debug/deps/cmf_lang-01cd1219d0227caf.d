/root/repo/target/debug/deps/cmf_lang-01cd1219d0227caf.d: crates/cmf/src/lib.rs crates/cmf/src/ast.rs crates/cmf/src/expand.rs crates/cmf/src/lex.rs crates/cmf/src/listing.rs crates/cmf/src/lower.rs crates/cmf/src/parse.rs crates/cmf/src/sema.rs

/root/repo/target/debug/deps/libcmf_lang-01cd1219d0227caf.rlib: crates/cmf/src/lib.rs crates/cmf/src/ast.rs crates/cmf/src/expand.rs crates/cmf/src/lex.rs crates/cmf/src/listing.rs crates/cmf/src/lower.rs crates/cmf/src/parse.rs crates/cmf/src/sema.rs

/root/repo/target/debug/deps/libcmf_lang-01cd1219d0227caf.rmeta: crates/cmf/src/lib.rs crates/cmf/src/ast.rs crates/cmf/src/expand.rs crates/cmf/src/lex.rs crates/cmf/src/listing.rs crates/cmf/src/lower.rs crates/cmf/src/parse.rs crates/cmf/src/sema.rs

crates/cmf/src/lib.rs:
crates/cmf/src/ast.rs:
crates/cmf/src/expand.rs:
crates/cmf/src/lex.rs:
crates/cmf/src/listing.rs:
crates/cmf/src/lower.rs:
crates/cmf/src/parse.rs:
crates/cmf/src/sema.rs:
