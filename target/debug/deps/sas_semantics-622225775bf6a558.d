/root/repo/target/debug/deps/sas_semantics-622225775bf6a558.d: tests/sas_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsas_semantics-622225775bf6a558.rmeta: tests/sas_semantics.rs Cargo.toml

tests/sas_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
