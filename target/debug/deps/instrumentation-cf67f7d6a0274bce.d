/root/repo/target/debug/deps/instrumentation-cf67f7d6a0274bce.d: crates/bench/benches/instrumentation.rs

/root/repo/target/debug/deps/instrumentation-cf67f7d6a0274bce: crates/bench/benches/instrumentation.rs

crates/bench/benches/instrumentation.rs:
