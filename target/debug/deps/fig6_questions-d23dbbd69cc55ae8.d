/root/repo/target/debug/deps/fig6_questions-d23dbbd69cc55ae8.d: crates/bench/src/bin/fig6_questions.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_questions-d23dbbd69cc55ae8.rmeta: crates/bench/src/bin/fig6_questions.rs Cargo.toml

crates/bench/src/bin/fig6_questions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
