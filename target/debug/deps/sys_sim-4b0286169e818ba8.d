/root/repo/target/debug/deps/sys_sim-4b0286169e818ba8.d: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs

/root/repo/target/debug/deps/sys_sim-4b0286169e818ba8: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs

crates/syssim/src/lib.rs:
crates/syssim/src/db.rs:
crates/syssim/src/kernel.rs:
