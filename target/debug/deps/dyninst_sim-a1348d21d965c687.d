/root/repo/target/debug/deps/dyninst_sim-a1348d21d965c687.d: crates/dyninst/src/lib.rs crates/dyninst/src/manager.rs crates/dyninst/src/mdl/mod.rs crates/dyninst/src/mdl/ast.rs crates/dyninst/src/mdl/lex.rs crates/dyninst/src/mdl/parse.rs crates/dyninst/src/metrics.rs crates/dyninst/src/point.rs crates/dyninst/src/primitive.rs crates/dyninst/src/snippet.rs

/root/repo/target/debug/deps/libdyninst_sim-a1348d21d965c687.rlib: crates/dyninst/src/lib.rs crates/dyninst/src/manager.rs crates/dyninst/src/mdl/mod.rs crates/dyninst/src/mdl/ast.rs crates/dyninst/src/mdl/lex.rs crates/dyninst/src/mdl/parse.rs crates/dyninst/src/metrics.rs crates/dyninst/src/point.rs crates/dyninst/src/primitive.rs crates/dyninst/src/snippet.rs

/root/repo/target/debug/deps/libdyninst_sim-a1348d21d965c687.rmeta: crates/dyninst/src/lib.rs crates/dyninst/src/manager.rs crates/dyninst/src/mdl/mod.rs crates/dyninst/src/mdl/ast.rs crates/dyninst/src/mdl/lex.rs crates/dyninst/src/mdl/parse.rs crates/dyninst/src/metrics.rs crates/dyninst/src/point.rs crates/dyninst/src/primitive.rs crates/dyninst/src/snippet.rs

crates/dyninst/src/lib.rs:
crates/dyninst/src/manager.rs:
crates/dyninst/src/mdl/mod.rs:
crates/dyninst/src/mdl/ast.rs:
crates/dyninst/src/mdl/lex.rs:
crates/dyninst/src/mdl/parse.rs:
crates/dyninst/src/metrics.rs:
crates/dyninst/src/point.rs:
crates/dyninst/src/primitive.rs:
crates/dyninst/src/snippet.rs:
