/root/repo/target/debug/deps/paradyn_tool-c60a503ec6f28368.d: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs

/root/repo/target/debug/deps/paradyn_tool-c60a503ec6f28368: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs

crates/paradyn/src/lib.rs:
crates/paradyn/src/catalogue.rs:
crates/paradyn/src/consultant.rs:
crates/paradyn/src/daemon.rs:
crates/paradyn/src/datamgr.rs:
crates/paradyn/src/metrics.rs:
crates/paradyn/src/report.rs:
crates/paradyn/src/stream.rs:
crates/paradyn/src/tool.rs:
crates/paradyn/src/visi.rs:
