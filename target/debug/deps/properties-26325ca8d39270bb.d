/root/repo/target/debug/deps/properties-26325ca8d39270bb.d: tests/properties.rs

/root/repo/target/debug/deps/properties-26325ca8d39270bb: tests/properties.rs

tests/properties.rs:
