/root/repo/target/debug/deps/sas_ops-5a8249382d05ba59.d: crates/bench/benches/sas_ops.rs

/root/repo/target/debug/deps/sas_ops-5a8249382d05ba59: crates/bench/benches/sas_ops.rs

crates/bench/benches/sas_ops.rs:
