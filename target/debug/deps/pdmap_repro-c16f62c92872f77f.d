/root/repo/target/debug/deps/pdmap_repro-c16f62c92872f77f.d: src/lib.rs

/root/repo/target/debug/deps/pdmap_repro-c16f62c92872f77f: src/lib.rs

src/lib.rs:
