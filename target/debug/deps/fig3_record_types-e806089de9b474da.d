/root/repo/target/debug/deps/fig3_record_types-e806089de9b474da.d: crates/bench/src/bin/fig3_record_types.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_record_types-e806089de9b474da.rmeta: crates/bench/src/bin/fig3_record_types.rs Cargo.toml

crates/bench/src/bin/fig3_record_types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
