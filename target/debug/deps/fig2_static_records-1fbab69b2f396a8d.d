/root/repo/target/debug/deps/fig2_static_records-1fbab69b2f396a8d.d: crates/bench/src/bin/fig2_static_records.rs

/root/repo/target/debug/deps/fig2_static_records-1fbab69b2f396a8d: crates/bench/src/bin/fig2_static_records.rs

crates/bench/src/bin/fig2_static_records.rs:
