/root/repo/target/debug/deps/fig6_questions-fb746e552708e36e.d: crates/bench/src/bin/fig6_questions.rs

/root/repo/target/debug/deps/fig6_questions-fb746e552708e36e: crates/bench/src/bin/fig6_questions.rs

crates/bench/src/bin/fig6_questions.rs:
