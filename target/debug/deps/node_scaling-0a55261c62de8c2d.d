/root/repo/target/debug/deps/node_scaling-0a55261c62de8c2d.d: crates/bench/benches/node_scaling.rs

/root/repo/target/debug/deps/node_scaling-0a55261c62de8c2d: crates/bench/benches/node_scaling.rs

crates/bench/benches/node_scaling.rs:
