/root/repo/target/debug/deps/fig9_metric_table-49d1e4935b0d535c.d: crates/bench/src/bin/fig9_metric_table.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_metric_table-49d1e4935b0d535c.rmeta: crates/bench/src/bin/fig9_metric_table.rs Cargo.toml

crates/bench/src/bin/fig9_metric_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
