/root/repo/target/debug/deps/dynamic_insert-e734af8ac2950b78.d: crates/bench/benches/dynamic_insert.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_insert-e734af8ac2950b78.rmeta: crates/bench/benches/dynamic_insert.rs Cargo.toml

crates/bench/benches/dynamic_insert.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
