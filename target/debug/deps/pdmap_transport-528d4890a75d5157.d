/root/repo/target/debug/deps/pdmap_transport-528d4890a75d5157.d: crates/transport/src/lib.rs crates/transport/src/backend.rs crates/transport/src/config.rs crates/transport/src/frame.rs crates/transport/src/inproc.rs crates/transport/src/queue.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs crates/transport/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libpdmap_transport-528d4890a75d5157.rmeta: crates/transport/src/lib.rs crates/transport/src/backend.rs crates/transport/src/config.rs crates/transport/src/frame.rs crates/transport/src/inproc.rs crates/transport/src/queue.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs crates/transport/src/wire.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/backend.rs:
crates/transport/src/config.rs:
crates/transport/src/frame.rs:
crates/transport/src/inproc.rs:
crates/transport/src/queue.rs:
crates/transport/src/stats.rs:
crates/transport/src/tcp.rs:
crates/transport/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
