/root/repo/target/debug/deps/node_scaling-3192bbc5c93efd66.d: crates/bench/benches/node_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libnode_scaling-3192bbc5c93efd66.rmeta: crates/bench/benches/node_scaling.rs Cargo.toml

crates/bench/benches/node_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
