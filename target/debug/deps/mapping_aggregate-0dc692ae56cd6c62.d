/root/repo/target/debug/deps/mapping_aggregate-0dc692ae56cd6c62.d: crates/bench/benches/mapping_aggregate.rs Cargo.toml

/root/repo/target/debug/deps/libmapping_aggregate-0dc692ae56cd6c62.rmeta: crates/bench/benches/mapping_aggregate.rs Cargo.toml

crates/bench/benches/mapping_aggregate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
