/root/repo/target/debug/deps/fig3_record_types-b5984d7e5d2b59f3.d: crates/bench/src/bin/fig3_record_types.rs

/root/repo/target/debug/deps/fig3_record_types-b5984d7e5d2b59f3: crates/bench/src/bin/fig3_record_types.rs

crates/bench/src/bin/fig3_record_types.rs:
