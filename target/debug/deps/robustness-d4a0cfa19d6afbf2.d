/root/repo/target/debug/deps/robustness-d4a0cfa19d6afbf2.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-d4a0cfa19d6afbf2: tests/robustness.rs

tests/robustness.rs:
