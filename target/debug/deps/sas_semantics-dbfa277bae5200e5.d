/root/repo/target/debug/deps/sas_semantics-dbfa277bae5200e5.d: tests/sas_semantics.rs

/root/repo/target/debug/deps/sas_semantics-dbfa277bae5200e5: tests/sas_semantics.rs

tests/sas_semantics.rs:
