/root/repo/target/debug/deps/pdmap_bench-0120dd93911b32ba.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libpdmap_bench-0120dd93911b32ba.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
