/root/repo/target/debug/deps/transport_throughput-29d83eaf00ac1d15.d: crates/bench/src/bin/transport_throughput.rs

/root/repo/target/debug/deps/transport_throughput-29d83eaf00ac1d15: crates/bench/src/bin/transport_throughput.rs

crates/bench/src/bin/transport_throughput.rs:
