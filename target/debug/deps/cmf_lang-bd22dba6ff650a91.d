/root/repo/target/debug/deps/cmf_lang-bd22dba6ff650a91.d: crates/cmf/src/lib.rs crates/cmf/src/ast.rs crates/cmf/src/expand.rs crates/cmf/src/lex.rs crates/cmf/src/listing.rs crates/cmf/src/lower.rs crates/cmf/src/parse.rs crates/cmf/src/sema.rs Cargo.toml

/root/repo/target/debug/deps/libcmf_lang-bd22dba6ff650a91.rmeta: crates/cmf/src/lib.rs crates/cmf/src/ast.rs crates/cmf/src/expand.rs crates/cmf/src/lex.rs crates/cmf/src/listing.rs crates/cmf/src/lower.rs crates/cmf/src/parse.rs crates/cmf/src/sema.rs Cargo.toml

crates/cmf/src/lib.rs:
crates/cmf/src/ast.rs:
crates/cmf/src/expand.rs:
crates/cmf/src/lex.rs:
crates/cmf/src/listing.rs:
crates/cmf/src/lower.rs:
crates/cmf/src/parse.rs:
crates/cmf/src/sema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
