/root/repo/target/debug/deps/fig1_mapping_types-88b5b5c69f0b7968.d: crates/bench/src/bin/fig1_mapping_types.rs

/root/repo/target/debug/deps/fig1_mapping_types-88b5b5c69f0b7968: crates/bench/src/bin/fig1_mapping_types.rs

crates/bench/src/bin/fig1_mapping_types.rs:
