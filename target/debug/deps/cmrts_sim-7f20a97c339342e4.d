/root/repo/target/debug/deps/cmrts_sim-7f20a97c339342e4.d: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs

/root/repo/target/debug/deps/libcmrts_sim-7f20a97c339342e4.rlib: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs

/root/repo/target/debug/deps/libcmrts_sim-7f20a97c339342e4.rmeta: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs

crates/cmrts/src/lib.rs:
crates/cmrts/src/cost.rs:
crates/cmrts/src/ir.rs:
crates/cmrts/src/layout.rs:
crates/cmrts/src/machine.rs:
crates/cmrts/src/points.rs:
crates/cmrts/src/trace.rs:
crates/cmrts/src/types.rs:
