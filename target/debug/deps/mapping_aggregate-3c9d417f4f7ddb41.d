/root/repo/target/debug/deps/mapping_aggregate-3c9d417f4f7ddb41.d: crates/bench/benches/mapping_aggregate.rs

/root/repo/target/debug/deps/mapping_aggregate-3c9d417f4f7ddb41: crates/bench/benches/mapping_aggregate.rs

crates/bench/benches/mapping_aggregate.rs:
