/root/repo/target/debug/deps/question_eval-a24189ada6e08cf5.d: crates/bench/benches/question_eval.rs

/root/repo/target/debug/deps/question_eval-a24189ada6e08cf5: crates/bench/benches/question_eval.rs

crates/bench/benches/question_eval.rs:
