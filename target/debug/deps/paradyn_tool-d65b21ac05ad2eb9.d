/root/repo/target/debug/deps/paradyn_tool-d65b21ac05ad2eb9.d: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs

/root/repo/target/debug/deps/libparadyn_tool-d65b21ac05ad2eb9.rlib: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs

/root/repo/target/debug/deps/libparadyn_tool-d65b21ac05ad2eb9.rmeta: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs

crates/paradyn/src/lib.rs:
crates/paradyn/src/catalogue.rs:
crates/paradyn/src/consultant.rs:
crates/paradyn/src/daemon.rs:
crates/paradyn/src/datamgr.rs:
crates/paradyn/src/metrics.rs:
crates/paradyn/src/report.rs:
crates/paradyn/src/stream.rs:
crates/paradyn/src/tool.rs:
crates/paradyn/src/visi.rs:
