/root/repo/target/debug/deps/run_report-13ee8ffc442d5cf1.d: crates/bench/src/bin/run_report.rs

/root/repo/target/debug/deps/run_report-13ee8ffc442d5cf1: crates/bench/src/bin/run_report.rs

crates/bench/src/bin/run_report.rs:
