/root/repo/target/debug/deps/pdmap_repro-c2425ef777767e5b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpdmap_repro-c2425ef777767e5b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
