/root/repo/target/debug/deps/fig7_async_limitation-a6f78728a65fdea7.d: crates/bench/src/bin/fig7_async_limitation.rs

/root/repo/target/debug/deps/fig7_async_limitation-a6f78728a65fdea7: crates/bench/src/bin/fig7_async_limitation.rs

crates/bench/src/bin/fig7_async_limitation.rs:
