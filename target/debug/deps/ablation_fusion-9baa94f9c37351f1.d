/root/repo/target/debug/deps/ablation_fusion-9baa94f9c37351f1.d: crates/bench/src/bin/ablation_fusion.rs

/root/repo/target/debug/deps/ablation_fusion-9baa94f9c37351f1: crates/bench/src/bin/ablation_fusion.rs

crates/bench/src/bin/ablation_fusion.rs:
