/root/repo/target/debug/deps/pif_mdl-ef2e4c9ff7935d6a.d: crates/bench/benches/pif_mdl.rs

/root/repo/target/debug/deps/pif_mdl-ef2e4c9ff7935d6a: crates/bench/benches/pif_mdl.rs

crates/bench/benches/pif_mdl.rs:
