/root/repo/target/debug/deps/fig5_sas_snapshot-5a1439d062021f04.d: crates/bench/src/bin/fig5_sas_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_sas_snapshot-5a1439d062021f04.rmeta: crates/bench/src/bin/fig5_sas_snapshot.rs Cargo.toml

crates/bench/src/bin/fig5_sas_snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
