/root/repo/target/debug/deps/dynamic_insert-69bed09d1f0223ff.d: crates/bench/benches/dynamic_insert.rs

/root/repo/target/debug/deps/dynamic_insert-69bed09d1f0223ff: crates/bench/benches/dynamic_insert.rs

crates/bench/benches/dynamic_insert.rs:
