/root/repo/target/debug/deps/transport_throughput-a490f6138ffa46c2.d: crates/bench/src/bin/transport_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libtransport_throughput-a490f6138ffa46c2.rmeta: crates/bench/src/bin/transport_throughput.rs Cargo.toml

crates/bench/src/bin/transport_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
