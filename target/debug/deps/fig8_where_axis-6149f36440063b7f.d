/root/repo/target/debug/deps/fig8_where_axis-6149f36440063b7f.d: crates/bench/src/bin/fig8_where_axis.rs

/root/repo/target/debug/deps/fig8_where_axis-6149f36440063b7f: crates/bench/src/bin/fig8_where_axis.rs

crates/bench/src/bin/fig8_where_axis.rs:
