/root/repo/target/debug/deps/instrumentation-fa314bea17159a33.d: crates/bench/benches/instrumentation.rs Cargo.toml

/root/repo/target/debug/deps/libinstrumentation-fa314bea17159a33.rmeta: crates/bench/benches/instrumentation.rs Cargo.toml

crates/bench/benches/instrumentation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
