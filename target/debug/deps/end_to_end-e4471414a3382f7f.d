/root/repo/target/debug/deps/end_to_end-e4471414a3382f7f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e4471414a3382f7f: tests/end_to_end.rs

tests/end_to_end.rs:
