/root/repo/target/debug/deps/fig9_metric_table-ab6615727e38e965.d: crates/bench/src/bin/fig9_metric_table.rs

/root/repo/target/debug/deps/fig9_metric_table-ab6615727e38e965: crates/bench/src/bin/fig9_metric_table.rs

crates/bench/src/bin/fig9_metric_table.rs:
