/root/repo/target/debug/deps/pdmap_repro-2e1976d05cf43a42.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpdmap_repro-2e1976d05cf43a42.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
