/root/repo/target/debug/deps/pdmap_pif-9b05e04384511a9f.d: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs

/root/repo/target/debug/deps/libpdmap_pif-9b05e04384511a9f.rlib: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs

/root/repo/target/debug/deps/libpdmap_pif-9b05e04384511a9f.rmeta: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs

crates/pif/src/lib.rs:
crates/pif/src/apply.rs:
crates/pif/src/error.rs:
crates/pif/src/listing.rs:
crates/pif/src/model.rs:
crates/pif/src/samples.rs:
crates/pif/src/text.rs:
