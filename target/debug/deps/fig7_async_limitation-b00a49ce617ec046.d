/root/repo/target/debug/deps/fig7_async_limitation-b00a49ce617ec046.d: crates/bench/src/bin/fig7_async_limitation.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_async_limitation-b00a49ce617ec046.rmeta: crates/bench/src/bin/fig7_async_limitation.rs Cargo.toml

crates/bench/src/bin/fig7_async_limitation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
