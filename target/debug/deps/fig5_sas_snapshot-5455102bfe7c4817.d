/root/repo/target/debug/deps/fig5_sas_snapshot-5455102bfe7c4817.d: crates/bench/src/bin/fig5_sas_snapshot.rs

/root/repo/target/debug/deps/fig5_sas_snapshot-5455102bfe7c4817: crates/bench/src/bin/fig5_sas_snapshot.rs

crates/bench/src/bin/fig5_sas_snapshot.rs:
