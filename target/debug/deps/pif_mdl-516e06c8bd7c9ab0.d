/root/repo/target/debug/deps/pif_mdl-516e06c8bd7c9ab0.d: crates/bench/benches/pif_mdl.rs Cargo.toml

/root/repo/target/debug/deps/libpif_mdl-516e06c8bd7c9ab0.rmeta: crates/bench/benches/pif_mdl.rs Cargo.toml

crates/bench/benches/pif_mdl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
