/root/repo/target/debug/deps/pdmap_pif-786d11d9a2c228c7.d: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs

/root/repo/target/debug/deps/pdmap_pif-786d11d9a2c228c7: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs

crates/pif/src/lib.rs:
crates/pif/src/apply.rs:
crates/pif/src/error.rs:
crates/pif/src/listing.rs:
crates/pif/src/model.rs:
crates/pif/src/samples.rs:
crates/pif/src/text.rs:
