/root/repo/target/debug/deps/run_report-6c78ed3a2a50a019.d: crates/bench/src/bin/run_report.rs Cargo.toml

/root/repo/target/debug/deps/librun_report-6c78ed3a2a50a019.rmeta: crates/bench/src/bin/run_report.rs Cargo.toml

crates/bench/src/bin/run_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
