/root/repo/target/debug/deps/fig1_mapping_types-d7ca797acc5469a1.d: crates/bench/src/bin/fig1_mapping_types.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_mapping_types-d7ca797acc5469a1.rmeta: crates/bench/src/bin/fig1_mapping_types.rs Cargo.toml

crates/bench/src/bin/fig1_mapping_types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
