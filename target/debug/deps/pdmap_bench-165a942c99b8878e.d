/root/repo/target/debug/deps/pdmap_bench-165a942c99b8878e.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libpdmap_bench-165a942c99b8878e.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
