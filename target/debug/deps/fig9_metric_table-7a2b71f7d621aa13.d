/root/repo/target/debug/deps/fig9_metric_table-7a2b71f7d621aa13.d: crates/bench/src/bin/fig9_metric_table.rs

/root/repo/target/debug/deps/fig9_metric_table-7a2b71f7d621aa13: crates/bench/src/bin/fig9_metric_table.rs

crates/bench/src/bin/fig9_metric_table.rs:
