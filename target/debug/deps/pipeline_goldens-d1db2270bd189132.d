/root/repo/target/debug/deps/pipeline_goldens-d1db2270bd189132.d: tests/pipeline_goldens.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_goldens-d1db2270bd189132.rmeta: tests/pipeline_goldens.rs Cargo.toml

tests/pipeline_goldens.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
