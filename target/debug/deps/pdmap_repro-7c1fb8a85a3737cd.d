/root/repo/target/debug/deps/pdmap_repro-7c1fb8a85a3737cd.d: src/lib.rs

/root/repo/target/debug/deps/libpdmap_repro-7c1fb8a85a3737cd.rlib: src/lib.rs

/root/repo/target/debug/deps/libpdmap_repro-7c1fb8a85a3737cd.rmeta: src/lib.rs

src/lib.rs:
