/root/repo/target/debug/deps/run_report-05fa62246b7a875c.d: crates/bench/src/bin/run_report.rs

/root/repo/target/debug/deps/run_report-05fa62246b7a875c: crates/bench/src/bin/run_report.rs

crates/bench/src/bin/run_report.rs:
