/root/repo/target/debug/deps/transport-3055b16201f0fc44.d: tests/transport.rs

/root/repo/target/debug/deps/transport-3055b16201f0fc44: tests/transport.rs

tests/transport.rs:
