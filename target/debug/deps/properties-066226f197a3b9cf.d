/root/repo/target/debug/deps/properties-066226f197a3b9cf.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-066226f197a3b9cf.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
