/root/repo/target/debug/deps/pdmap_pif-9963c22ae4e6eb69.d: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libpdmap_pif-9963c22ae4e6eb69.rmeta: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs Cargo.toml

crates/pif/src/lib.rs:
crates/pif/src/apply.rs:
crates/pif/src/error.rs:
crates/pif/src/listing.rs:
crates/pif/src/model.rs:
crates/pif/src/samples.rs:
crates/pif/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
