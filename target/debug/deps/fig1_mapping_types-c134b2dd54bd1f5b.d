/root/repo/target/debug/deps/fig1_mapping_types-c134b2dd54bd1f5b.d: crates/bench/src/bin/fig1_mapping_types.rs

/root/repo/target/debug/deps/fig1_mapping_types-c134b2dd54bd1f5b: crates/bench/src/bin/fig1_mapping_types.rs

crates/bench/src/bin/fig1_mapping_types.rs:
