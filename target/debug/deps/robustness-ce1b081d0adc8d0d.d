/root/repo/target/debug/deps/robustness-ce1b081d0adc8d0d.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-ce1b081d0adc8d0d.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
