/root/repo/target/debug/deps/fig9_metric_table-96f5b1564f095f9e.d: crates/bench/src/bin/fig9_metric_table.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_metric_table-96f5b1564f095f9e.rmeta: crates/bench/src/bin/fig9_metric_table.rs Cargo.toml

crates/bench/src/bin/fig9_metric_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
