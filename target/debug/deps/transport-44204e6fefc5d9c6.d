/root/repo/target/debug/deps/transport-44204e6fefc5d9c6.d: tests/transport.rs Cargo.toml

/root/repo/target/debug/deps/libtransport-44204e6fefc5d9c6.rmeta: tests/transport.rs Cargo.toml

tests/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
