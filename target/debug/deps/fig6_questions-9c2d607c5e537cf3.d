/root/repo/target/debug/deps/fig6_questions-9c2d607c5e537cf3.d: crates/bench/src/bin/fig6_questions.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_questions-9c2d607c5e537cf3.rmeta: crates/bench/src/bin/fig6_questions.rs Cargo.toml

crates/bench/src/bin/fig6_questions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
