/root/repo/target/debug/deps/pdmap-fd19c2707da9bf94.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/cost.rs crates/core/src/hierarchy.rs crates/core/src/mapping.rs crates/core/src/model.rs crates/core/src/sas/mod.rs crates/core/src/sas/distributed.rs crates/core/src/sas/local.rs crates/core/src/sas/question.rs crates/core/src/sas/shared.rs crates/core/src/sas/token.rs crates/core/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libpdmap-fd19c2707da9bf94.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/cost.rs crates/core/src/hierarchy.rs crates/core/src/mapping.rs crates/core/src/model.rs crates/core/src/sas/mod.rs crates/core/src/sas/distributed.rs crates/core/src/sas/local.rs crates/core/src/sas/question.rs crates/core/src/sas/shared.rs crates/core/src/sas/token.rs crates/core/src/util.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/cost.rs:
crates/core/src/hierarchy.rs:
crates/core/src/mapping.rs:
crates/core/src/model.rs:
crates/core/src/sas/mod.rs:
crates/core/src/sas/distributed.rs:
crates/core/src/sas/local.rs:
crates/core/src/sas/question.rs:
crates/core/src/sas/shared.rs:
crates/core/src/sas/token.rs:
crates/core/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
