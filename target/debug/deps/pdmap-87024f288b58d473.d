/root/repo/target/debug/deps/pdmap-87024f288b58d473.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/cost.rs crates/core/src/hierarchy.rs crates/core/src/mapping.rs crates/core/src/model.rs crates/core/src/sas/mod.rs crates/core/src/sas/distributed.rs crates/core/src/sas/local.rs crates/core/src/sas/question.rs crates/core/src/sas/shared.rs crates/core/src/sas/token.rs crates/core/src/util.rs

/root/repo/target/debug/deps/pdmap-87024f288b58d473: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/cost.rs crates/core/src/hierarchy.rs crates/core/src/mapping.rs crates/core/src/model.rs crates/core/src/sas/mod.rs crates/core/src/sas/distributed.rs crates/core/src/sas/local.rs crates/core/src/sas/question.rs crates/core/src/sas/shared.rs crates/core/src/sas/token.rs crates/core/src/util.rs

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/cost.rs:
crates/core/src/hierarchy.rs:
crates/core/src/mapping.rs:
crates/core/src/model.rs:
crates/core/src/sas/mod.rs:
crates/core/src/sas/distributed.rs:
crates/core/src/sas/local.rs:
crates/core/src/sas/question.rs:
crates/core/src/sas/shared.rs:
crates/core/src/sas/token.rs:
crates/core/src/util.rs:
