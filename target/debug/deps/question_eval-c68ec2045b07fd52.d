/root/repo/target/debug/deps/question_eval-c68ec2045b07fd52.d: crates/bench/benches/question_eval.rs Cargo.toml

/root/repo/target/debug/deps/libquestion_eval-c68ec2045b07fd52.rmeta: crates/bench/benches/question_eval.rs Cargo.toml

crates/bench/benches/question_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
