/root/repo/target/debug/deps/pipeline_goldens-d91f20debd3e8510.d: tests/pipeline_goldens.rs

/root/repo/target/debug/deps/pipeline_goldens-d91f20debd3e8510: tests/pipeline_goldens.rs

tests/pipeline_goldens.rs:
