/root/repo/target/release/examples/consultant-6bfd63b0ed40e1a3.d: examples/consultant.rs

/root/repo/target/release/examples/consultant-6bfd63b0ed40e1a3: examples/consultant.rs

examples/consultant.rs:
