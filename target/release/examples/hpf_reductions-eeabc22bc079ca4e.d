/root/repo/target/release/examples/hpf_reductions-eeabc22bc079ca4e.d: examples/hpf_reductions.rs

/root/repo/target/release/examples/hpf_reductions-eeabc22bc079ca4e: examples/hpf_reductions.rs

examples/hpf_reductions.rs:
