/root/repo/target/release/examples/quickstart-fa9c17e8d369254e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fa9c17e8d369254e: examples/quickstart.rs

examples/quickstart.rs:
