/root/repo/target/release/examples/custom_metrics-57304fd0c6f2b34c.d: examples/custom_metrics.rs

/root/repo/target/release/examples/custom_metrics-57304fd0c6f2b34c: examples/custom_metrics.rs

examples/custom_metrics.rs:
