/root/repo/target/release/examples/distributed_db-91737cc3d94b3b42.d: examples/distributed_db.rs

/root/repo/target/release/examples/distributed_db-91737cc3d94b3b42: examples/distributed_db.rs

examples/distributed_db.rs:
