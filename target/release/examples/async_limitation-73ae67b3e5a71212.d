/root/repo/target/release/examples/async_limitation-73ae67b3e5a71212.d: examples/async_limitation.rs

/root/repo/target/release/examples/async_limitation-73ae67b3e5a71212: examples/async_limitation.rs

examples/async_limitation.rs:
