/root/repo/target/release/examples/stencil-98cf6ac9a9264489.d: examples/stencil.rs

/root/repo/target/release/examples/stencil-98cf6ac9a9264489: examples/stencil.rs

examples/stencil.rs:
