/root/repo/target/release/deps/ablation_fusion-381c8156958f3786.d: crates/bench/src/bin/ablation_fusion.rs

/root/repo/target/release/deps/ablation_fusion-381c8156958f3786: crates/bench/src/bin/ablation_fusion.rs

crates/bench/src/bin/ablation_fusion.rs:
