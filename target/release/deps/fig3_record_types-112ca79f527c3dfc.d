/root/repo/target/release/deps/fig3_record_types-112ca79f527c3dfc.d: crates/bench/src/bin/fig3_record_types.rs

/root/repo/target/release/deps/fig3_record_types-112ca79f527c3dfc: crates/bench/src/bin/fig3_record_types.rs

crates/bench/src/bin/fig3_record_types.rs:
