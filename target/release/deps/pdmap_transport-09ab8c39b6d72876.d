/root/repo/target/release/deps/pdmap_transport-09ab8c39b6d72876.d: crates/transport/src/lib.rs crates/transport/src/backend.rs crates/transport/src/config.rs crates/transport/src/frame.rs crates/transport/src/inproc.rs crates/transport/src/queue.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs crates/transport/src/wire.rs

/root/repo/target/release/deps/libpdmap_transport-09ab8c39b6d72876.rlib: crates/transport/src/lib.rs crates/transport/src/backend.rs crates/transport/src/config.rs crates/transport/src/frame.rs crates/transport/src/inproc.rs crates/transport/src/queue.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs crates/transport/src/wire.rs

/root/repo/target/release/deps/libpdmap_transport-09ab8c39b6d72876.rmeta: crates/transport/src/lib.rs crates/transport/src/backend.rs crates/transport/src/config.rs crates/transport/src/frame.rs crates/transport/src/inproc.rs crates/transport/src/queue.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs crates/transport/src/wire.rs

crates/transport/src/lib.rs:
crates/transport/src/backend.rs:
crates/transport/src/config.rs:
crates/transport/src/frame.rs:
crates/transport/src/inproc.rs:
crates/transport/src/queue.rs:
crates/transport/src/stats.rs:
crates/transport/src/tcp.rs:
crates/transport/src/wire.rs:
