/root/repo/target/release/deps/fig7_async_limitation-caba5148064bd1fb.d: crates/bench/src/bin/fig7_async_limitation.rs

/root/repo/target/release/deps/fig7_async_limitation-caba5148064bd1fb: crates/bench/src/bin/fig7_async_limitation.rs

crates/bench/src/bin/fig7_async_limitation.rs:
