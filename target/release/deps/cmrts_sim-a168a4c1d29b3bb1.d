/root/repo/target/release/deps/cmrts_sim-a168a4c1d29b3bb1.d: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs

/root/repo/target/release/deps/libcmrts_sim-a168a4c1d29b3bb1.rlib: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs

/root/repo/target/release/deps/libcmrts_sim-a168a4c1d29b3bb1.rmeta: crates/cmrts/src/lib.rs crates/cmrts/src/cost.rs crates/cmrts/src/ir.rs crates/cmrts/src/layout.rs crates/cmrts/src/machine.rs crates/cmrts/src/points.rs crates/cmrts/src/trace.rs crates/cmrts/src/types.rs

crates/cmrts/src/lib.rs:
crates/cmrts/src/cost.rs:
crates/cmrts/src/ir.rs:
crates/cmrts/src/layout.rs:
crates/cmrts/src/machine.rs:
crates/cmrts/src/points.rs:
crates/cmrts/src/trace.rs:
crates/cmrts/src/types.rs:
