/root/repo/target/release/deps/pdmap_pif-dad810eb8da6a6e0.d: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs

/root/repo/target/release/deps/libpdmap_pif-dad810eb8da6a6e0.rlib: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs

/root/repo/target/release/deps/libpdmap_pif-dad810eb8da6a6e0.rmeta: crates/pif/src/lib.rs crates/pif/src/apply.rs crates/pif/src/error.rs crates/pif/src/listing.rs crates/pif/src/model.rs crates/pif/src/samples.rs crates/pif/src/text.rs

crates/pif/src/lib.rs:
crates/pif/src/apply.rs:
crates/pif/src/error.rs:
crates/pif/src/listing.rs:
crates/pif/src/model.rs:
crates/pif/src/samples.rs:
crates/pif/src/text.rs:
