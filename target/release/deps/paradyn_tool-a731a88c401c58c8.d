/root/repo/target/release/deps/paradyn_tool-a731a88c401c58c8.d: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs

/root/repo/target/release/deps/libparadyn_tool-a731a88c401c58c8.rlib: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs

/root/repo/target/release/deps/libparadyn_tool-a731a88c401c58c8.rmeta: crates/paradyn/src/lib.rs crates/paradyn/src/catalogue.rs crates/paradyn/src/consultant.rs crates/paradyn/src/daemon.rs crates/paradyn/src/datamgr.rs crates/paradyn/src/metrics.rs crates/paradyn/src/report.rs crates/paradyn/src/stream.rs crates/paradyn/src/tool.rs crates/paradyn/src/visi.rs

crates/paradyn/src/lib.rs:
crates/paradyn/src/catalogue.rs:
crates/paradyn/src/consultant.rs:
crates/paradyn/src/daemon.rs:
crates/paradyn/src/datamgr.rs:
crates/paradyn/src/metrics.rs:
crates/paradyn/src/report.rs:
crates/paradyn/src/stream.rs:
crates/paradyn/src/tool.rs:
crates/paradyn/src/visi.rs:
