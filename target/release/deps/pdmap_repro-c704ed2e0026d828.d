/root/repo/target/release/deps/pdmap_repro-c704ed2e0026d828.d: src/lib.rs

/root/repo/target/release/deps/libpdmap_repro-c704ed2e0026d828.rlib: src/lib.rs

/root/repo/target/release/deps/libpdmap_repro-c704ed2e0026d828.rmeta: src/lib.rs

src/lib.rs:
