/root/repo/target/release/deps/sas_ops-36d40d830cfed971.d: crates/bench/benches/sas_ops.rs

/root/repo/target/release/deps/sas_ops-36d40d830cfed971: crates/bench/benches/sas_ops.rs

crates/bench/benches/sas_ops.rs:
