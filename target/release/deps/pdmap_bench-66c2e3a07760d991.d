/root/repo/target/release/deps/pdmap_bench-66c2e3a07760d991.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libpdmap_bench-66c2e3a07760d991.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libpdmap_bench-66c2e3a07760d991.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
