/root/repo/target/release/deps/fig2_static_records-2cb87ea86613564e.d: crates/bench/src/bin/fig2_static_records.rs

/root/repo/target/release/deps/fig2_static_records-2cb87ea86613564e: crates/bench/src/bin/fig2_static_records.rs

crates/bench/src/bin/fig2_static_records.rs:
