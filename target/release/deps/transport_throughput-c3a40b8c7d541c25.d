/root/repo/target/release/deps/transport_throughput-c3a40b8c7d541c25.d: crates/bench/src/bin/transport_throughput.rs

/root/repo/target/release/deps/transport_throughput-c3a40b8c7d541c25: crates/bench/src/bin/transport_throughput.rs

crates/bench/src/bin/transport_throughput.rs:
