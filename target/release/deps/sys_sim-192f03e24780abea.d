/root/repo/target/release/deps/sys_sim-192f03e24780abea.d: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs

/root/repo/target/release/deps/libsys_sim-192f03e24780abea.rlib: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs

/root/repo/target/release/deps/libsys_sim-192f03e24780abea.rmeta: crates/syssim/src/lib.rs crates/syssim/src/db.rs crates/syssim/src/kernel.rs

crates/syssim/src/lib.rs:
crates/syssim/src/db.rs:
crates/syssim/src/kernel.rs:
