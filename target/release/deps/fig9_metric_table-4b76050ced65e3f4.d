/root/repo/target/release/deps/fig9_metric_table-4b76050ced65e3f4.d: crates/bench/src/bin/fig9_metric_table.rs

/root/repo/target/release/deps/fig9_metric_table-4b76050ced65e3f4: crates/bench/src/bin/fig9_metric_table.rs

crates/bench/src/bin/fig9_metric_table.rs:
