/root/repo/target/release/deps/fig6_questions-227a53fe990be2f9.d: crates/bench/src/bin/fig6_questions.rs

/root/repo/target/release/deps/fig6_questions-227a53fe990be2f9: crates/bench/src/bin/fig6_questions.rs

crates/bench/src/bin/fig6_questions.rs:
