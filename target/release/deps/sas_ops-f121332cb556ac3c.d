/root/repo/target/release/deps/sas_ops-f121332cb556ac3c.d: crates/bench/benches/sas_ops.rs

/root/repo/target/release/deps/sas_ops-f121332cb556ac3c: crates/bench/benches/sas_ops.rs

crates/bench/benches/sas_ops.rs:
