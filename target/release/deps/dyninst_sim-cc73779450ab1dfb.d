/root/repo/target/release/deps/dyninst_sim-cc73779450ab1dfb.d: crates/dyninst/src/lib.rs crates/dyninst/src/manager.rs crates/dyninst/src/mdl/mod.rs crates/dyninst/src/mdl/ast.rs crates/dyninst/src/mdl/lex.rs crates/dyninst/src/mdl/parse.rs crates/dyninst/src/metrics.rs crates/dyninst/src/point.rs crates/dyninst/src/primitive.rs crates/dyninst/src/snippet.rs

/root/repo/target/release/deps/libdyninst_sim-cc73779450ab1dfb.rlib: crates/dyninst/src/lib.rs crates/dyninst/src/manager.rs crates/dyninst/src/mdl/mod.rs crates/dyninst/src/mdl/ast.rs crates/dyninst/src/mdl/lex.rs crates/dyninst/src/mdl/parse.rs crates/dyninst/src/metrics.rs crates/dyninst/src/point.rs crates/dyninst/src/primitive.rs crates/dyninst/src/snippet.rs

/root/repo/target/release/deps/libdyninst_sim-cc73779450ab1dfb.rmeta: crates/dyninst/src/lib.rs crates/dyninst/src/manager.rs crates/dyninst/src/mdl/mod.rs crates/dyninst/src/mdl/ast.rs crates/dyninst/src/mdl/lex.rs crates/dyninst/src/mdl/parse.rs crates/dyninst/src/metrics.rs crates/dyninst/src/point.rs crates/dyninst/src/primitive.rs crates/dyninst/src/snippet.rs

crates/dyninst/src/lib.rs:
crates/dyninst/src/manager.rs:
crates/dyninst/src/mdl/mod.rs:
crates/dyninst/src/mdl/ast.rs:
crates/dyninst/src/mdl/lex.rs:
crates/dyninst/src/mdl/parse.rs:
crates/dyninst/src/metrics.rs:
crates/dyninst/src/point.rs:
crates/dyninst/src/primitive.rs:
crates/dyninst/src/snippet.rs:
