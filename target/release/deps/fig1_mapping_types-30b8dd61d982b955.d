/root/repo/target/release/deps/fig1_mapping_types-30b8dd61d982b955.d: crates/bench/src/bin/fig1_mapping_types.rs

/root/repo/target/release/deps/fig1_mapping_types-30b8dd61d982b955: crates/bench/src/bin/fig1_mapping_types.rs

crates/bench/src/bin/fig1_mapping_types.rs:
