/root/repo/target/release/deps/run_report-7c2a74ec71fcfd8b.d: crates/bench/src/bin/run_report.rs

/root/repo/target/release/deps/run_report-7c2a74ec71fcfd8b: crates/bench/src/bin/run_report.rs

crates/bench/src/bin/run_report.rs:
