/root/repo/target/release/deps/fig5_sas_snapshot-39b19c5007ca102c.d: crates/bench/src/bin/fig5_sas_snapshot.rs

/root/repo/target/release/deps/fig5_sas_snapshot-39b19c5007ca102c: crates/bench/src/bin/fig5_sas_snapshot.rs

crates/bench/src/bin/fig5_sas_snapshot.rs:
