/root/repo/target/release/deps/fig8_where_axis-6db376d401b7b2d4.d: crates/bench/src/bin/fig8_where_axis.rs

/root/repo/target/release/deps/fig8_where_axis-6db376d401b7b2d4: crates/bench/src/bin/fig8_where_axis.rs

crates/bench/src/bin/fig8_where_axis.rs:
