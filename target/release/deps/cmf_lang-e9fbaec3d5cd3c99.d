/root/repo/target/release/deps/cmf_lang-e9fbaec3d5cd3c99.d: crates/cmf/src/lib.rs crates/cmf/src/ast.rs crates/cmf/src/expand.rs crates/cmf/src/lex.rs crates/cmf/src/listing.rs crates/cmf/src/lower.rs crates/cmf/src/parse.rs crates/cmf/src/sema.rs

/root/repo/target/release/deps/libcmf_lang-e9fbaec3d5cd3c99.rlib: crates/cmf/src/lib.rs crates/cmf/src/ast.rs crates/cmf/src/expand.rs crates/cmf/src/lex.rs crates/cmf/src/listing.rs crates/cmf/src/lower.rs crates/cmf/src/parse.rs crates/cmf/src/sema.rs

/root/repo/target/release/deps/libcmf_lang-e9fbaec3d5cd3c99.rmeta: crates/cmf/src/lib.rs crates/cmf/src/ast.rs crates/cmf/src/expand.rs crates/cmf/src/lex.rs crates/cmf/src/listing.rs crates/cmf/src/lower.rs crates/cmf/src/parse.rs crates/cmf/src/sema.rs

crates/cmf/src/lib.rs:
crates/cmf/src/ast.rs:
crates/cmf/src/expand.rs:
crates/cmf/src/lex.rs:
crates/cmf/src/listing.rs:
crates/cmf/src/lower.rs:
crates/cmf/src/parse.rs:
crates/cmf/src/sema.rs:
