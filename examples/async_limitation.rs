//! Limitation 1 of the SAS (§4.2.4, Figure 7): asynchronous sentence
//! activations. A user function buffers writes; the kernel flushes them to
//! disk after the function has returned, so the plain SAS never holds both
//! sentences at once. The causal-token extension repairs it.
//!
//! ```sh
//! cargo run --example async_limitation
//! ```

use pdmap::model::Namespace;
use sys_sim::{UnixConfig, UnixSim};

fn run(causal: bool) {
    let mut sim = UnixSim::new(
        Namespace::new(),
        UnixConfig {
            causal_tokens: causal,
            ..UnixConfig::default()
        },
    );
    sim.watch_function("func");
    sim.run_figure7(3);
    println!(
        "\n=== {} ===",
        if causal {
            "causal tokens ON (our extension beyond the paper)"
        } else {
            "plain SAS (as in the paper)"
        }
    );
    print!("{}", sim.render_timeline());
    let st = sim.stats();
    println!(
        "kernel disk writes: {}   attributed to func(): {}",
        st.disk_writes, st.attributed
    );
}

fn main() {
    run(false);
    run(true);
}
