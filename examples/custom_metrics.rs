//! User-defined metrics and order-sensitive questions.
//!
//! §6.3: MDL "allows users to precisely specify when to turn on/off
//! process-clock timers and wall-clock timers and when to increment and
//! decrement counters" — here we define metrics the Figure 9 catalogue
//! does not have, and use the ordered-question extension to fix the
//! paper's limitation 3.
//!
//! ```sh
//! cargo run --example custom_metrics
//! ```

use dyninst_sim::{instantiate, Pred};
use paradyn_tool::tool::Paradyn;
use pdmap::hierarchy::Focus;
use pdmap::sas::{Question, SentencePattern};

const SRC: &str = "\
PROGRAM CUSTOM
REAL A(1024), B(1024)
A = 1.0
S1 = SUM(A)
B = CSHIFT(A, 8)
S2 = SUM(B)
END
";

fn main() {
    let mut tool = Paradyn::new(cmrts_sim::MachineConfig {
        nodes: 4,
        ..cmrts_sim::MachineConfig::default()
    });
    tool.load_source(SRC).unwrap();

    // 1. New metrics in MDL, installed at run time.
    let n = tool
        .metrics_mut()
        .add_mdl(
            r#"
metric dispatches {
    name "Block Dispatches";
    units operations;
    level "CMRTS";
    description "Node code block entries.";
    foreach point "cmrts::block:entry" { incrCounter 1; }
}
metric bcast_bytes {
    name "Broadcast Bytes";
    units bytes;
    level "CMRTS";
    description "Bytes broadcast by the control processor.";
    foreach point "cmrts::bcast:send" { incrCounterArg; }
}
"#,
        )
        .unwrap();
    println!("installed {n} user-defined metrics");

    let reqs = [
        tool.request("Block Dispatches", &Focus::whole_program())
            .unwrap(),
        tool.request("Broadcast Bytes", &Focus::whole_program())
            .unwrap(),
    ];

    // 2. Ordered questions (limitation 3 of the paper): distinguish
    //    "messages sent during the summation of A" from "summations of A
    //    occurring while messages are sent".
    let ns = tool.namespace().clone();
    let mut machine = tool.new_machine().unwrap(); // interns CMRTS vocabulary
    let cmf = ns.find_level("CM Fortran").unwrap();
    let cmrts = ns.find_level("CMRTS").unwrap();
    let sums = ns.find_verb(cmf, "Sums").unwrap();
    let sends = ns.find_verb(cmrts, "SendsMessage").unwrap();
    let a = ns.find_noun(cmf, "A").unwrap();
    let sum_then_send = machine.register_question_all(&Question::new_ordered(
        "sends during SUM(A)",
        vec![
            SentencePattern::noun_verb(a, sums),
            SentencePattern::any_noun(sends),
        ],
    ));
    let send_then_sum = machine.register_question_all(&Question::new_ordered(
        "SUM(A) during a send",
        vec![
            SentencePattern::any_noun(sends),
            SentencePattern::noun_verb(a, sums),
        ],
    ));
    let counters = [
        (
            "sends during SUM(A)      ",
            sum_then_send,
            "cmrts::msg:send",
        ),
        (
            "SUM(A) starts during send",
            send_then_sum,
            "cmrts::reduce:sum:entry",
        ),
    ];
    let insts: Vec<_> = counters
        .iter()
        .map(|&(_, qid, point)| {
            let decl = dyninst_sim::parse_mdl(&format!(
                r#"metric q {{ name "Q"; units operations;
                   foreach point "{point}" {{ incrCounter 1; }} }}"#
            ))
            .unwrap()
            .metrics[0]
                .clone();
            instantiate(tool.manager(), &decl, vec![Pred::QuestionSatisfied(qid)])
        })
        .collect();

    machine.run();

    for (s, r) in reqs.iter().enumerate() {
        let _ = s;
        println!(
            "{:<22} = {} {}",
            r.decl.name,
            r.value(&machine),
            r.decl.units
        );
    }
    let prims = tool.manager().primitives();
    let now = machine.wall_clock();
    for ((label, _, _), inst) in counters.iter().zip(&insts) {
        println!("{label} = {}", inst.read_raw(prims, now));
    }
    println!(
        "\nThe two ordered questions answer differently — the distinction the\n\
         paper's unordered questions cannot make (limitation 3)."
    );
}
