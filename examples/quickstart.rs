//! Quickstart: compile a data-parallel program, run it on the simulated
//! CM-5 under the Paradyn-style tool, and read mapped high-level metrics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cmrts_sim::MachineConfig;
use paradyn_tool::tool::Paradyn;
use pdmap::hierarchy::Focus;

const SRC: &str = "\
PROGRAM DEMO
REAL A(4096), B(4096)
A = 1.0
FORALL (I = 1:4096) B(I) = 2*I
B = A + B * 0.5
TOTAL = SUM(B)
PEAK = MAXVAL(B)
END
";

fn main() {
    // 1. A tool for a 4-node machine; loading compiles the program, imports
    //    its PIF static mapping file, and installs mapping instrumentation.
    let mut tool = Paradyn::new(MachineConfig {
        nodes: 4,
        ..MachineConfig::default()
    });
    let compiled = tool.load_source(SRC).expect("compiles");
    println!("compiler listing:\n{}", compiled.listing);

    // 2. Request metrics at different foci *before* the run — only what is
    //    requested gets instrumented.
    let whole = Focus::whole_program();
    let on_b = Focus::whole_program().select("CMFarrays", "/demo.fcm/DEMO/B");
    let node0 = Focus::whole_program().select("Machine", "/node#0");
    let requests = vec![
        tool.request("Summations", &whole).unwrap(),
        tool.request("Summations", &on_b).unwrap(),
        tool.request("Computation Time", &whole).unwrap(),
        tool.request("Point-to-Point Operations", &node0).unwrap(),
        tool.request("Idle Time", &whole).unwrap(),
    ];

    // 3. Run while sampling, then display.
    let (streams, summary, machine) = tool.run_sampled(&requests, 1).expect("program loaded");
    println!(
        "run complete: {} blocks, {} messages, {} broadcasts, wall = {} ticks",
        summary.blocks_dispatched,
        summary.messages,
        summary.broadcasts,
        machine.wall_clock()
    );
    println!(
        "\nfinal values:\n{}",
        paradyn_tool::visi::bar_chart(&streams, 32)
    );
    println!(
        "time plot:\n{}",
        paradyn_tool::visi::time_plot(&streams, 8, 12)
    );

    // 4. The program's answers are real: the machine computed them.
    println!(
        "program scalars: TOTAL = {:?}, PEAK = {:?}",
        machine.scalar("TOTAL"),
        machine.scalar("PEAK")
    );

    // 5. The where axis learned the arrays and their per-node subregions
    //    from dynamic mapping information during the run.
    println!("\nwhere axis:\n{}", tool.render_where_axis());
}
