//! A multi-daemon measurement session (§4.2.3): three Paradyn daemons with
//! deliberately skewed clocks feed one tool over TCP. The tool imports
//! each daemon's mapping information into its own Data Manager shard,
//! aligns every daemon's clock via probe exchanges, and merges the three
//! sample streams into one — sorted on the tool clock, not the daemons'.
//!
//! ```sh
//! cargo run --example multi_daemon
//! ```
//!
//! The daemons here run on threads (`pdmapd::spawn`) so the example is
//! self-contained; `cargo run -p pdmap-bench --bin multi_daemon` drives
//! the same session against real `pdmapd` child processes.

use paradyn_tool::{export_shard_obs, DaemonSet, DataManager};
use pdmap::model::Namespace;
use pdmap_transport::TransportConfig;
use pdmapd::{DaemonConfig, RunningDaemon};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Three daemons: one 40 ms fast, one true, one 40 ms slow.
    let skews = [40_000_000i64, 0, -40_000_000];
    let daemons: Vec<RunningDaemon> = skews
        .iter()
        .map(|&skew_ns| {
            pdmapd::spawn(DaemonConfig {
                skew_ns,
                samples: 5,
                period: Duration::from_millis(4),
                linger: Duration::from_secs(2),
                ..DaemonConfig::default()
            })
            .expect("bind a daemon listener")
        })
        .collect();
    let addrs: Vec<_> = daemons.iter().map(|d| d.addr).collect();
    println!("daemons listening on {addrs:?}\n");

    // One shard per daemon: imports and samples from different daemons
    // never touch the same lock.
    let data = Arc::new(DataManager::sharded(Namespace::new(), "CM Fortran", 3));
    let mut set = DaemonSet::connect(&addrs, TransportConfig::default(), data);
    set.clock_sync(5, Duration::from_secs(10))
        .expect("every daemon answers clock probes");

    // A recovered offset = clock-origin difference + injected skew. The
    // threaded daemons share this process's clock, so their origin
    // difference is exactly pdmapd's deliberate CLOCK_BASE_NS and the
    // remainder is the recovered skew (± half the probe round trip).
    println!("clock alignment (offset = daemon clock - tool clock):");
    for (i, &skew) in skews.iter().enumerate() {
        let c = set.conn(i).clock();
        let recovered_skew = c.offset_ns - pdmapd::CLOCK_BASE_NS as i64;
        println!(
            "  daemon {i}: injected skew {:>+4} ms, recovered {:>+8.3} ms (rtt {:.3} ms)",
            skew / 1_000_000,
            recovered_skew as f64 / 1e6,
            c.rtt_ns as f64 / 1e6
        );
    }

    set.pump_until_samples(15, Duration::from_secs(10));

    println!("\nwhere axis after importing three daemons' mappings:");
    println!("{}", set.data().render_where_axis());

    println!("merged sample stream (tool clock):");
    for s in set.merged_samples() {
        println!(
            "  {:>10.3} ms  daemon {}  {} = {}  (daemon wall {:.3} ms)",
            s.aligned_ns as f64 / 1e6,
            s.daemon,
            s.metric,
            s.value,
            s.wall as f64 / 1e6
        );
    }

    println!("\nper-shard data-manager counters (self-mapped as MDL metrics):");
    for (m, v) in export_shard_obs(set.data()) {
        if v > 0 {
            println!("  {:<40} {v}", m.name);
        }
    }

    for d in daemons {
        let _ = d.join();
    }
}
