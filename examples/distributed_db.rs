//! The §4.2.3 distributed-memory scenario: a client/server database whose
//! performance question spans two nodes' SASes, answered by forwarding the
//! "client query is active" sentence to the server.
//!
//! ```sh
//! cargo run --example distributed_db            # in-process transport
//! cargo run --example distributed_db -- tcp    # same system over TCP
//! ```

use pdmap::model::Namespace;
use pdmap_transport::Backend;
use sys_sim::DbSystem;

fn main() {
    let backend = match std::env::args().nth(1).as_deref() {
        Some(name) => Backend::parse(name).unwrap_or_else(|| {
            eprintln!("unknown backend '{name}' (expected 'inproc' or 'tcp')");
            std::process::exit(2);
        }),
        None => Backend::InProc,
    };

    // With forwarding: the server's SAS receives the client's query
    // sentences and can attribute its disk reads. The same system runs
    // over either transport backend with identical results.
    let mut db = DbSystem::over(Namespace::new(), true, backend);
    db.watch_query(17);
    db.watch_query(18);

    db.run_query(17, 5); // query#17 causes 5 server disk reads
    db.background_read(); // not on behalf of any query
    db.run_query(18, 3);
    db.run_query(17, 2);

    println!("-- with sentence forwarding (the paper's solution) --");
    println!(
        "transport backend:              {}",
        db.sas().backend_name()
    );
    println!("total server disk reads:        {}", db.total_reads());
    println!(
        "reads attributed to query#17:   {}",
        db.attributed_reads(17)
    );
    println!(
        "reads attributed to query#18:   {}",
        db.attributed_reads(18)
    );
    println!("SAS forwarding messages:        {}", db.messages());
    let t = db.sas().transport_stats();
    println!(
        "transport frames sent/received: {}/{} ({} bytes on the wire)",
        t.frames_sent, t.frames_received, t.bytes_sent
    );

    // Without forwarding, the same question silently measures nothing —
    // each node's SAS only sees local activity.
    let mut isolated = DbSystem::over(Namespace::new(), false, backend);
    isolated.watch_query(17);
    isolated.run_query(17, 5);
    println!("\n-- without forwarding (isolated per-node SASes) --");
    println!("total server disk reads:        {}", isolated.total_reads());
    println!(
        "reads attributed to query#17:   {}  (the question spans nodes)",
        isolated.attributed_reads(17)
    );
}
