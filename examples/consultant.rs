//! The Performance Consultant (§5): automated why/where bottleneck search
//! over the mapped metrics.
//!
//! ```sh
//! cargo run --example consultant
//! ```

use paradyn_tool::consultant::{render, search_parallel, ConsultantConfig};
use paradyn_tool::tool::Paradyn;

/// A program whose time goes into communication: repeated global sorts and
/// a transpose dwarf the element-wise work.
const SRC: &str = "\
PROGRAM SLOWPOKE
REAL A(512), B(512), M(32, 32), T(32, 32)
A = 1.0
B = SORT(A)
B = SORT(B)
M = 2.0
T = TRANSPOSE(M)
A = CSHIFT(B, 5)
END
";

fn main() {
    let mut tool = Paradyn::new(cmrts_sim::MachineConfig {
        nodes: 8,
        ..cmrts_sim::MachineConfig::default()
    });
    tool.load_source(SRC).unwrap();

    let config = ConsultantConfig {
        threshold: 0.10,
        max_depth: 1,
    };
    println!(
        "searching (threshold {:.0}%)...\n",
        config.threshold * 100.0
    );
    let results = search_parallel(&tool, &config);
    print!("{}", render(&results));
    let st = tool.measurement_cache_stats();
    println!(
        "\nmeasurement cache: {} hits / {} misses (machine runs saved: {})",
        st.hits, st.misses, st.hits
    );

    // Summarise the confirmed bottlenecks; undecided hypotheses (possible
    // only over a degraded fleet) are listed apart, never as "confirmed".
    let confirmed: Vec<&str> = results
        .iter()
        .filter(|r| r.verdict.is_true())
        .map(|r| r.hypothesis.as_str())
        .collect();
    println!("\nconfirmed hypotheses: {confirmed:?}");
    let undecided: Vec<&str> = results
        .iter()
        .filter(|r| !r.verdict.is_decided())
        .map(|r| r.hypothesis.as_str())
        .collect();
    if !undecided.is_empty() {
        println!("undecided (insufficient coverage): {undecided:?}");
    }
}
