//! The paper's running example (Figures 4-6): relate low-level messages to
//! high-level array reductions with the Set of Active Sentences.
//!
//! ```sh
//! cargo run --example hpf_reductions
//! ```

use cmrts_sim::SnapshotTrigger;
use dyninst_sim::{instantiate, Pred};
use paradyn_tool::tool::Paradyn;
use pdmap::sas::{Question, SentencePattern};

fn main() {
    // The Figure 4 fragment: ASUM = SUM(A); BMAX = MAXVAL(B).
    let mut tool = Paradyn::new(cmrts_sim::MachineConfig {
        nodes: 4,
        ..cmrts_sim::MachineConfig::default()
    });
    tool.load_source(cmf_lang::samples::FIGURE4).unwrap();
    let ns = tool.namespace().clone();

    // Vocabulary the compiler interned for this program.
    let cmf = ns.find_level("CM Fortran").unwrap();
    let cmrts = ns.find_level("CMRTS").unwrap();
    let sums = ns.find_verb(cmf, "Sums").unwrap();
    let maxvals = ns.find_verb(cmf, "MaxVals").unwrap();
    let sends = ns.find_verb(cmrts, "SendsMessage").unwrap();
    let a = ns.find_noun(cmf, "A").unwrap();
    let b = ns.find_noun(cmf, "B").unwrap();

    let mut machine = tool.new_machine().unwrap();

    // Performance questions, asked at run time (§4.2.2):
    //   How many messages are sent for summations of A? For MAXVAL of B?
    let q_sum_a = Question::new(
        "sends while A sums",
        vec![
            SentencePattern::noun_verb(a, sums),
            SentencePattern::any_noun(sends),
        ],
    );
    let q_max_b = Question::new(
        "sends while B maxvals",
        vec![
            SentencePattern::noun_verb(b, maxvals),
            SentencePattern::any_noun(sends),
        ],
    );
    let qid_a = machine.register_question_all(&q_sum_a);
    let qid_b = machine.register_question_all(&q_max_b);

    // Counters + timers gated on the questions.
    let mgr = tool.manager();
    let msgs_for_a = instantiate(
        mgr,
        tool.metrics().decl("Point-to-Point Operations").unwrap(),
        vec![Pred::QuestionSatisfied(qid_a)],
    );
    let msgs_for_b = instantiate(
        mgr,
        tool.metrics().decl("Point-to-Point Operations").unwrap(),
        vec![Pred::QuestionSatisfied(qid_b)],
    );
    let time_for_a = instantiate(
        mgr,
        tool.metrics().decl("Point-to-Point Time").unwrap(),
        vec![Pred::QuestionSatisfied(qid_a)],
    );

    // Photograph the SAS at the first message sent while A is summed
    // (Figure 5).
    machine.set_snapshot_trigger(SnapshotTrigger {
        point: machine.points().msg_send,
        question: Some(qid_a),
        once: true,
    });

    machine.run();

    println!("program:\n{}", cmf_lang::samples::FIGURE4);
    let snap = &machine.snapshots()[0];
    println!(
        "SAS on node#{} when a message was sent during SUM(A):\n{}",
        snap.node,
        snap.snapshot.render(&ns)
    );

    let prims = mgr.primitives();
    let now = machine.wall_clock();
    println!(
        "messages sent for summations of A: {}",
        msgs_for_a.read_raw(prims, now)
    );
    println!(
        "messages sent for MAXVAL of B:     {}",
        msgs_for_b.read_raw(prims, now)
    );
    println!(
        "time sending messages for SUM(A):  {:.6} s",
        time_for_a.value(prims, now, machine.cost_model().ticks_per_second)
    );
}
