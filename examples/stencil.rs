//! A Jacobi-style stencil relaxation: the kind of data-parallel workload
//! the paper's introduction motivates. Demonstrates DO loops (unrolled by
//! the compiler), CSHIFT communication, and how per-line attribution
//! aggregates costs across loop iterations onto the same source line.
//!
//! ```sh
//! cargo run --example stencil
//! ```

use paradyn_tool::tool::Paradyn;
use pdmap::hierarchy::Focus;

const SRC: &str = "\
PROGRAM STENCIL
REAL U(1024), L(1024), R(1024)
FORALL (I = 1:1024) U(I) = I
DO T = 1:5
L = CSHIFT(U, 1)
R = CSHIFT(U, -1)
U = (L + R + U) / 3.0
ENDDO
USUM = SUM(U)
END
";

fn main() {
    let mut tool = Paradyn::new(cmrts_sim::MachineConfig {
        nodes: 8,
        ..cmrts_sim::MachineConfig::default()
    });
    tool.load_source(SRC).unwrap();

    // Per-line attribution: all five iterations of the loop body charge
    // the same source lines.
    let line5 = Focus::whole_program().select("CMFstmts", "/stencil.fcm/STENCIL/line#5");
    let line7 = Focus::whole_program().select("CMFstmts", "/stencil.fcm/STENCIL/line#7");
    let requests = vec![
        tool.request("Point-to-Point Operations", &Focus::whole_program())
            .unwrap(),
        tool.request("Point-to-Point Operations", &line5).unwrap(),
        tool.request("Computation Time", &line7).unwrap(),
        tool.request("Rotations", &Focus::whole_program()).unwrap(),
    ];

    let (streams, summary, machine) = tool.run_sampled(&requests, 1).expect("program loaded");
    println!("program:\n{SRC}");
    println!(
        "run: {} blocks, {} messages, wall {} ticks",
        summary.blocks_dispatched,
        summary.messages,
        machine.wall_clock()
    );
    println!("\n{}", paradyn_tool::visi::bar_chart(&streams, 30));
    println!("{}", paradyn_tool::visi::time_plot(&streams, 10, 10));

    // Circular smoothing conserves the total: sum(U) stays 1+2+...+1024.
    let expect: f64 = (1..=1024).map(|i| i as f64).sum();
    let got = machine.scalar("USUM").unwrap();
    println!("USUM = {got} (expected {expect}, conserved by the stencil)");
    assert!((got - expect).abs() < 1e-6 * expect);

    // CSHIFT on line 5 ran 5 times: 8 nodes wrap-shift = boundary messages
    // each iteration, all attributed to that one line.
    let line5_msgs = streams[1].last_value();
    println!("messages attributed to line 5 across all iterations: {line5_msgs}");
    assert!(line5_msgs > 0.0);
}
