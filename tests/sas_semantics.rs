//! Focused semantic tests for the Set of Active Sentences beyond the
//! in-crate unit tests: multiset rendering, ordered-question edge cases,
//! trait-object handles, and cross-shard expression questions.

use pdmap::model::Namespace;
use pdmap::sas::{
    ActiveGuard, GlobalSas, LocalSas, Question, QuestionExpr, SasHandle, SentencePattern,
    ShardedSas,
};

fn vocab() -> (Namespace, pdmap::model::VerbId, Vec<pdmap::model::NounId>) {
    let ns = Namespace::new();
    let l = ns.level("L");
    let v = ns.verb(l, "Runs", "");
    let nouns = (0..4).map(|i| ns.noun(l, &format!("n{i}"), "")).collect();
    (ns, v, nouns)
}

#[test]
fn snapshot_render_marks_nested_counts() {
    let (ns, v, nouns) = vocab();
    let s = ns.say(v, [nouns[0]]);
    let mut sas = LocalSas::new(ns.clone());
    sas.activate(s);
    sas.activate(s);
    sas.activate(s);
    let shown = sas.snapshot().render(&ns);
    assert!(shown.contains("(x3)"), "{shown}");
}

#[test]
fn multi_noun_sentences_render_sorted_participants() {
    let (ns, v, nouns) = vocab();
    let s = ns.say(v, [nouns[2], nouns[0]]);
    let shown = ns.render_sentence(s);
    assert_eq!(shown, "L: {n0, n2} Runs");
}

#[test]
fn ordered_question_survives_reactivation_cycles() {
    let (ns, v, nouns) = vocab();
    let a = ns.say(v, [nouns[0]]);
    let b = ns.say(v, [nouns[1]]);
    let mut sas = LocalSas::new(ns.clone());
    let q = Question::new_ordered(
        "a then b",
        vec![
            SentencePattern::exact(&ns.sentence_def(a)),
            SentencePattern::exact(&ns.sentence_def(b)),
        ],
    );
    let qid = sas.register_question(&q);
    for _ in 0..5 {
        // Correct order.
        sas.activate(a);
        sas.activate(b);
        assert!(sas.satisfied(qid));
        sas.deactivate(b);
        sas.deactivate(a);
        assert!(!sas.satisfied(qid));
        // Wrong order.
        sas.activate(b);
        sas.activate(a);
        assert!(!sas.satisfied(qid));
        sas.deactivate(a);
        sas.deactivate(b);
    }
}

#[test]
fn ordered_question_with_nested_instances() {
    // a(seq1) b(seq2) a(seq3): ordered [a, b] satisfiable via seq1 < seq2
    // even though a later a-instance postdates b.
    let (ns, v, nouns) = vocab();
    let a = ns.say(v, [nouns[0]]);
    let b = ns.say(v, [nouns[1]]);
    let mut sas = LocalSas::new(ns.clone());
    let qid = sas.register_question(&Question::new_ordered(
        "a before b",
        vec![
            SentencePattern::exact(&ns.sentence_def(a)),
            SentencePattern::exact(&ns.sentence_def(b)),
        ],
    ));
    sas.activate(a);
    sas.activate(b);
    sas.activate(a);
    assert!(sas.satisfied(qid));
    // Remove the EARLIER a (deactivate pops the most recent instance, so
    // pop twice and re-add one *after* b).
    sas.deactivate(a);
    sas.deactivate(a);
    sas.activate(a); // now the only a postdates b
    assert!(!sas.satisfied(qid), "no a-instance precedes b anymore");
}

#[test]
fn guards_work_through_dyn_handles() {
    let (ns, v, nouns) = vocab();
    let s = ns.say(v, [nouns[0]]);
    let global = GlobalSas::new(ns.clone());
    let handle: &dyn SasHandle = &global;
    {
        let _g = ActiveGuard::enter(handle, s);
        assert!(handle.is_active(s));
        let snap = handle.snapshot();
        assert_eq!(snap.len(), 1);
    }
    assert!(!handle.is_active(s));
}

#[test]
fn expression_questions_register_identically_across_shards() {
    let (ns, v, nouns) = vocab();
    let sas = ShardedSas::new(ns.clone(), 3);
    let e = QuestionExpr::pat(SentencePattern::noun_verb(nouns[0], v))
        .or(QuestionExpr::pat(SentencePattern::noun_verb(nouns[1], v)));
    let qid = sas.register_expr_all("either", &e);
    let s1 = ns.say(v, [nouns[1]]);
    sas.node(2).activate(s1);
    assert!(sas.satisfied_on(2, qid));
    assert!(!sas.satisfied_on(0, qid));
}

#[test]
fn question_counts_transitions_not_duration() {
    let (ns, v, nouns) = vocab();
    let s = ns.say(v, [nouns[0]]);
    let mut sas = LocalSas::new(ns.clone());
    let qid = sas.register_question(&Question::new(
        "q",
        vec![SentencePattern::exact(&ns.sentence_def(s))],
    ));
    for _ in 0..7 {
        sas.activate(s);
        sas.activate(s); // nesting must not double-count the transition
        sas.deactivate(s);
        sas.deactivate(s);
    }
    assert_eq!(sas.satisfied_transitions(qid), 7);
}

#[test]
fn dynamic_mappings_change_as_context_changes() {
    // "Any two sentences contained in the SAS concurrently are considered
    // to dynamically map to one another" — the mapping set is a function
    // of time.
    let (ns, v, nouns) = vocab();
    let line = ns.say(v, [nouns[0]]);
    let msg = ns.say(v, [nouns[1]]);
    let other = ns.say(v, [nouns[2]]);
    let mut sas = LocalSas::new(ns.clone());
    sas.activate(line);
    sas.activate(msg);
    assert_eq!(sas.dynamic_mappings_for(msg), vec![line]);
    sas.deactivate(line);
    sas.activate(other);
    assert_eq!(sas.dynamic_mappings_for(msg), vec![other]);
}

#[test]
fn namespace_definitions_are_stable_across_clones() {
    let (ns, v, nouns) = vocab();
    let ns2 = ns.clone();
    let s1 = ns.say(v, [nouns[3]]);
    let s2 = ns2.say(v, [nouns[3]]);
    assert_eq!(s1, s2, "clones share the interner");
    assert_eq!(ns.num_sentences(), ns2.num_sentences());
}
