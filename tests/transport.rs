//! Integration tests for the transport subsystem: the frame codec under
//! random message traffic, decode robustness against corruption, and the
//! TCP backend's loss accounting under forced disconnects.
//!
//! Everything here is deterministic: randomness comes from seeded
//! [`SplitMix64`] streams, and the reconnect test asserts an exact
//! conservation law (`sent == delivered + drops`) rather than timing.

use paradyn_tool::daemon::DaemonMsg;
use pdmap::model::SentenceId;
use pdmap::sas::{SasMessage, SasOp};
use pdmap::util::SplitMix64;
use pdmap_transport::frame::{HEADER_LEN, MAX_PAYLOAD, VERSION};
use pdmap_transport::{
    drain_frames, send_wire, Backend, Frame, FrameError, FrameKind, PifBlob, TransportConfig,
    WirePayload,
};
use std::time::{Duration, Instant};

const ALPHA: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
const NAME_REST: &str = "abcdefghijklmnopqrstuvwxyz0123456789_|\\\n ";

fn rand_daemon_msg(rng: &mut SplitMix64) -> DaemonMsg {
    match rng.usize_in(0..3) {
        0 => DaemonMsg::ArrayAllocated {
            id: rng.next_u64() as u32,
            name: rng.ident(ALPHA, NAME_REST, 12),
            extents: (0..rng.usize_in(0..4))
                .map(|_| rng.usize_in(1..4096))
                .collect(),
            dist: if rng.bool() {
                cmrts_sim::Distribution::Block
            } else {
                cmrts_sim::Distribution::Cyclic
            },
            subgrids: (0..rng.usize_in(0..4))
                .map(|_| {
                    (
                        rng.usize_in(0..64),
                        rng.usize_in(0..4096),
                        rng.usize_in(0..65536),
                    )
                })
                .collect(),
        },
        1 => DaemonMsg::ArrayFreed {
            id: rng.next_u64() as u32,
        },
        _ => DaemonMsg::Sample {
            metric: rng.ident(ALPHA, NAME_REST, 16),
            focus: rng.ident(ALPHA, NAME_REST, 24),
            wall: rng.next_u64(),
            value: rng.f64_in(-1e9, 1e9),
        },
    }
}

fn rand_sas_msg(rng: &mut SplitMix64) -> SasMessage {
    SasMessage {
        from_node: rng.usize_in(0..256),
        op: if rng.bool() {
            SasOp::Activate
        } else {
            SasOp::Deactivate
        },
        sid: SentenceId::from_index(rng.usize_in(0..100_000)),
    }
}

/// Encodes a message into frame bytes and decodes it back, checking both
/// layers (payload codec and frame codec) survive the trip.
fn codec_roundtrip<M: WirePayload + PartialEq + std::fmt::Debug>(msg: &M, seq: u64) {
    let mut frame = msg.to_frame();
    frame.seq = seq;
    let bytes = frame.encode();
    let (back, used) = Frame::decode(&bytes).expect("encoded frame must decode");
    assert_eq!(used, bytes.len(), "decode must consume the whole encoding");
    assert_eq!(back.seq, seq);
    let round = M::from_frame(&back).expect("payload must decode");
    assert_eq!(&round, msg);
}

#[test]
fn daemon_msg_codec_roundtrips_1k_random_messages() {
    let mut rng = SplitMix64::new(0x7A4E_0001);
    for case in 0..1000u64 {
        let msg = rand_daemon_msg(&mut rng);
        codec_roundtrip(&msg, case + 1);
    }
}

#[test]
fn sas_message_codec_roundtrips_1k_random_messages() {
    let mut rng = SplitMix64::new(0x7A4E_0002);
    for case in 0..1000u64 {
        let msg = rand_sas_msg(&mut rng);
        codec_roundtrip(&msg, case + 1);
    }
}

#[test]
fn pif_blob_codec_roundtrips_1k_random_messages() {
    let mut rng = SplitMix64::new(0x7A4E_0003);
    for case in 0..1000u64 {
        let len = rng.usize_in(0..512);
        let blob = PifBlob((0..len).map(|_| rng.next_u64() as u8).collect());
        codec_roundtrip(&blob, case + 1);
    }
}

#[test]
fn every_truncation_of_a_frame_is_rejected() {
    let frame = Frame::data(FrameKind::Daemon, b"some payload bytes".to_vec());
    let bytes = frame.encode();
    for cut in 0..bytes.len() {
        let err = Frame::decode(&bytes[..cut]).expect_err("truncated frame must not decode");
        assert!(
            matches!(err, FrameError::Truncated | FrameError::BadMagic(_)),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
    // The full buffer decodes again, proving the loop above exercised real
    // prefixes of a valid encoding.
    assert!(Frame::decode(&bytes).is_ok());
}

#[test]
fn corrupt_headers_are_rejected_with_the_right_error() {
    let bytes = Frame::data(FrameKind::SasForward, vec![1, 2, 3]).encode();

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        Frame::decode(&bad_magic),
        Err(FrameError::BadMagic(_))
    ));

    let mut bad_version = bytes.clone();
    bad_version[2] = VERSION + 1;
    assert!(matches!(
        Frame::decode(&bad_version),
        Err(FrameError::BadVersion(v)) if v == VERSION + 1
    ));

    let mut bad_kind = bytes.clone();
    bad_kind[3] = 0xEE;
    assert!(matches!(
        Frame::decode(&bad_kind),
        Err(FrameError::BadKind(0xEE))
    ));

    let mut oversize = bytes.clone();
    let huge = (MAX_PAYLOAD as u32 + 1).to_le_bytes();
    oversize[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&huge);
    assert!(matches!(
        Frame::decode(&oversize),
        Err(FrameError::TooLarge(_))
    ));
}

/// Drains the server end until `sent == delivered + drops` holds or the
/// deadline passes, returning the delivered payloads.
fn drain_until_settled(link: &pdmap_transport::Link, timeout: Duration) -> Vec<Vec<u8>> {
    let deadline = Instant::now() + timeout;
    let mut got = Vec::new();
    loop {
        for f in drain_frames(link.server.as_ref()) {
            got.push(f.payload);
        }
        let s = link.client.stats();
        if s.frames_sent == got.len() as u64 + s.drops || Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn tcp_reconnect_losses_are_fully_explained_by_drop_counters() {
    let cfg = TransportConfig::default();
    let link = Backend::Tcp.link(&cfg);
    let tcp_server = link
        .tcp_server
        .as_ref()
        .expect("tcp link has a server handle");

    // Phase 1: steady traffic over the initial connection.
    for i in 0..30u64 {
        send_wire(link.client.as_ref(), &PifBlob(i.to_le_bytes().to_vec())).unwrap();
    }
    // Sever every connection mid-stream, then keep sending while the client
    // is reconnecting — these frames queue and replay after the Hello.
    tcp_server.kick_all();
    for i in 30..60u64 {
        send_wire(link.client.as_ref(), &PifBlob(i.to_le_bytes().to_vec())).unwrap();
    }

    let got = drain_until_settled(&link, Duration::from_secs(10));
    let s = link.client.stats();

    // The conservation law: every accepted frame is either delivered
    // (exactly once — duplicates are suppressed server-side) or counted as
    // a drop. Nothing vanishes silently.
    assert_eq!(
        s.frames_sent,
        got.len() as u64 + s.drops,
        "sent={} delivered={} drops={}",
        s.frames_sent,
        got.len(),
        s.drops
    );
    assert_eq!(s.frames_sent, 60);

    // With Block backpressure and a successful reconnect, nothing may drop
    // and every distinct payload arrives in order.
    assert_eq!(s.drops, 0);
    let expected: Vec<Vec<u8>> = (0..60u64)
        .map(|i| PifBlob(i.to_le_bytes().to_vec()).to_frame().payload)
        .collect();
    assert_eq!(got, expected);
    assert!(
        s.reconnects >= 1,
        "the kick must force at least one reconnect"
    );

    link.close();
}

#[test]
fn both_backends_deliver_the_same_wire_traffic() {
    let observe = |backend: Backend| -> Vec<Vec<u8>> {
        let link = backend.link(&TransportConfig::default());
        let mut rng = SplitMix64::new(0x7A4E_0004);
        for _ in 0..25 {
            send_wire(link.client.as_ref(), &rand_sas_msg(&mut rng)).unwrap();
        }
        let got = drain_until_settled(&link, Duration::from_secs(10));
        link.close();
        got
    };
    let inproc = observe(Backend::InProc);
    let tcp = observe(Backend::Tcp);
    assert_eq!(inproc.len(), 25);
    assert_eq!(inproc, tcp, "backends must deliver byte-identical traffic");
}
