//! Multi-daemon session integration: N daemons (threaded `pdmapd`
//! instances speaking real TCP) feeding one tool through the public API —
//! clock alignment under injected skew, sharded concurrent import/deliver,
//! and the per-shard observability exports.

use paradyn_tool::{export_shard_obs, DaemonMsg, DaemonSet, DataManager};
use pdmap::model::Namespace;
use pdmap_transport::{
    send_wire, Backend, FaultDecision, FaultInjector, FaultPlan, Transport, TransportConfig,
    WirePayload,
};
use pdmapd::{DaemonConfig, CLOCK_BASE_NS};
use std::sync::Arc;
use std::time::Duration;

fn session(skews: &[i64], samples: u32) -> (DaemonSet, Vec<pdmapd::RunningDaemon>) {
    let daemons: Vec<_> = skews
        .iter()
        .map(|&skew_ns| {
            pdmapd::spawn(DaemonConfig {
                skew_ns,
                samples,
                period: Duration::from_millis(4),
                linger: Duration::from_secs(3),
                ..DaemonConfig::default()
            })
            .expect("bind daemon listener")
        })
        .collect();
    let addrs: Vec<_> = daemons.iter().map(|d| d.addr).collect();
    let data = Arc::new(DataManager::sharded(
        Namespace::new(),
        "CM Fortran",
        skews.len(),
    ));
    let mut set = DaemonSet::connect(&addrs, TransportConfig::default(), data);
    set.clock_sync(5, Duration::from_secs(10))
        .expect("all daemons answer clock probes");
    (set, daemons)
}

#[test]
fn two_daemon_merge_is_ordered_under_50ms_skew() {
    // ±50 ms injected skew: raw wall stamps from the two daemons disagree
    // by ~100 ms while real sends are ~4 ms apart, so only a correct
    // offset estimate can interleave the merge.
    let skews = [50_000_000i64, -50_000_000];
    let (mut set, daemons) = session(&skews, 6);
    assert_eq!(set.pump_until_samples(12, Duration::from_secs(10)), 12);

    // The daemons share this process's clock, so the recovered offset is
    // CLOCK_BASE_NS + skew up to the rtt-bounded estimate error.
    for (i, &skew) in skews.iter().enumerate() {
        let c = set.conn(i).clock();
        let err = (c.offset_ns - CLOCK_BASE_NS as i64 - skew).unsigned_abs();
        assert!(
            err <= c.rtt_ns / 2 + 5_000_000,
            "daemon {i}: recovered {} vs injected {skew} (rtt {})",
            c.offset_ns,
            c.rtt_ns
        );
    }

    let merged = set.merged_samples();
    assert_eq!(merged.len(), 12);
    assert!(
        merged
            .windows(2)
            .all(|w| w[0].aligned_ns <= w[1].aligned_ns),
        "merged stream must be nondecreasing in aligned time"
    );
    // Within each daemon the send order (sample value) survives the merge.
    for d in 0..2 {
        let vals: Vec<f64> = merged
            .iter()
            .filter(|s| s.daemon == d)
            .map(|s| s.value)
            .collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]), "daemon {d}: {vals:?}");
    }
    // And the raw walls really were ~100 ms apart — the skew did happen.
    let wall_gap = merged
        .iter()
        .filter(|s| s.daemon == 0)
        .map(|s| s.wall)
        .min()
        .unwrap() as i64
        - merged
            .iter()
            .filter(|s| s.daemon == 1)
            .map(|s| s.wall)
            .max()
            .unwrap() as i64;
    assert!(
        wall_gap > 50_000_000,
        "raw walls must show the skew (gap {wall_gap})"
    );
    for d in daemons {
        assert!(d.join().expect("daemon report").tool_connected);
    }
}

#[test]
fn four_daemons_import_and_deliver_into_parallel_shards() {
    let (mut set, daemons) = session(&[0, 0, 0, 0], 4);
    set.pump_until_samples(16, Duration::from_secs(10));

    // Static mappings arrived over the wire (PIF blobs) exactly once in
    // the shared catalogue, but every daemon's shipment was counted on its
    // own shard.
    assert!(set.data().with_mappings(|m| m.len()) > 0);
    let axis = set.data().render_where_axis();
    assert!(
        axis.contains("CMFarrays") && axis.contains("sub#0"),
        "{axis}"
    );

    for i in 0..4 {
        let st = set.data().shard_stats(i);
        assert!(st.imports > 0, "shard {i} imported");
        assert_eq!(st.samples, 4, "shard {i} delivered");
        assert!(set.conn(i).decode_errors().is_empty());
    }
    // The per-shard counters surface through the generated MDL catalogue.
    let rows = export_shard_obs(set.data());
    assert_eq!(rows.len(), 4 * 3);
    assert!(rows
        .iter()
        .filter(|(m, _)| m.name.ends_with("samples"))
        .all(|&(_, v)| v == 4));
    for d in daemons {
        let _ = d.join();
    }
}

#[test]
fn partition_loss_obeys_the_conservation_law() {
    // A fake daemon sends through a FaultInjector whose plan carves a
    // partition window out of the send sequence, then announces its send
    // count with a Goodbye. The books must close exactly:
    //
    //   announced == received + samples_lost
    //   samples_lost == injector.partition_dropped
    //
    // No silent zero: the partitioned frames show up as labeled loss, not
    // as a smaller-but-complete-looking measurement.
    let plan = FaultPlan::parse("seed=42 partition=8..16").expect("plan parses");
    assert_eq!(
        plan,
        FaultPlan {
            seed: 42,
            partitions: vec![(8, 16)],
            ..FaultPlan::none()
        },
        "the plan grammar is byte-reproducible"
    );

    let cfg = TransportConfig::default();
    let link = Backend::InProc.link(&cfg);
    let injector = FaultInjector::wrap(link.server.clone(), plan);
    let data = Arc::new(DataManager::sharded(Namespace::new(), "CM Fortran", 1));
    let mut set = DaemonSet::over_transports(vec![("fake#0".into(), link.client)], data);

    // Clock sync first: with 3 rounds the replies occupy injector indices
    // 0..3, clear of the partition window at [8, 16).
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let answerer = &injector;
        let stop_ref = &stop;
        s.spawn(move || {
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                while let Ok(Some(frame)) = answerer.try_recv() {
                    if let Ok(DaemonMsg::ClockProbe { token, t_tool_ns }) =
                        DaemonMsg::from_frame(&frame)
                    {
                        let _ = send_wire(
                            &**answerer,
                            &DaemonMsg::ClockReply {
                                token,
                                t_tool_ns,
                                t_daemon_ns: pdmap_obs::now_ns(),
                            },
                        );
                    }
                }
                std::thread::yield_now();
            }
        });
        set.clock_sync(3, Duration::from_secs(5)).expect("sync");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // 20 samples through the partition, then the announcement.
    const SENT: u32 = 20;
    for i in 0..SENT {
        send_wire(
            &*injector,
            &DaemonMsg::Sample {
                metric: "cpu".into(),
                focus: "/".into(),
                wall: pdmap_obs::now_ns(),
                value: f64::from(i),
            },
        )
        .expect("send through injector");
    }
    send_wire(&*injector, &DaemonMsg::Goodbye { samples_sent: SENT }).expect("goodbye");

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while set.conn(0).announced_sent().is_none() && std::time::Instant::now() < deadline {
        set.pump();
        std::thread::yield_now();
    }
    assert_eq!(set.conn(0).announced_sent(), Some(u64::from(SENT)));

    // The injector's own books balance, and its fault log is exactly the
    // partition window — reproducible from the seed, frame for frame.
    let stats = injector.fault_stats();
    assert!(stats.conservation_ok(), "{stats:?}");
    assert!(
        stats.partition_dropped > 0,
        "the window must have eaten sends"
    );
    assert_eq!(
        injector.fault_log(),
        (8..16)
            .map(|i| (i, FaultDecision::Partitioned))
            .collect::<Vec<_>>()
    );

    // The tool's books balance against the announcement: every announced
    // sample is either received or counted lost, and the loss equals what
    // the injector ate.
    let received = set.conn(0).samples_received();
    let cov = set.coverage();
    assert_eq!(
        u64::from(SENT),
        received + cov.samples_lost,
        "announced == received + lost ({cov})"
    );
    assert_eq!(cov.samples_lost, stats.partition_dropped);
    assert!(!cov.is_complete() || cov.samples_lost == 0);
    assert_eq!(
        set.merged_samples().coverage().samples_lost,
        cov.samples_lost
    );
}
