//! Failure injection and edge cases across the stack: the system should
//! degrade loudly-but-gracefully, never silently corrupt a measurement.

use cmrts_sim::{Distribution, MachineConfig, NodeOp, Operand, ProgramBuilder};
use paradyn_tool::tool::Paradyn;
use pdmap::hierarchy::Focus;
use pdmap::model::Namespace;
use pdmap::sas::{LocalSas, Question, SentencePattern};
use std::sync::Arc;

fn tool_for(src: &str, nodes: usize) -> Paradyn {
    let mut tool = Paradyn::new(MachineConfig {
        nodes,
        ..MachineConfig::default()
    });
    tool.load_source(src).unwrap();
    tool
}

#[test]
fn empty_program_runs_and_measures_zero() {
    let tool = tool_for("PROGRAM NOTHING\nEND\n", 4);
    let req = tool
        .request("Point-to-Point Operations", &Focus::whole_program())
        .unwrap();
    let mut m = tool.new_machine().unwrap();
    let s = m.run();
    assert_eq!(s.blocks_dispatched, 0);
    assert_eq!(req.value(&m), 0.0);
    assert_eq!(m.wall_clock(), 0);
}

#[test]
fn single_element_arrays() {
    let tool = tool_for(
        "PROGRAM TINY\nREAL A(1), B(1)\nA = 7.0\nS = SUM(A)\nB = SORT(A)\nEND\n",
        8, // more nodes than elements
    );
    let mut m = tool.new_machine().unwrap();
    m.run();
    assert_eq!(m.scalar("S"), Some(7.0));
}

#[test]
fn more_nodes_than_rows_still_balances() {
    let tool = tool_for(
        "PROGRAM WIDE\nREAL A(3)\nFORALL (I = 1:3) A(I) = I\nS = SUM(A)\nEND\n",
        8,
    );
    let mut m = tool.new_machine().unwrap();
    m.run();
    assert_eq!(m.scalar("S"), Some(6.0));
}

#[test]
fn unbalanced_sas_traffic_is_counted_not_fatal() {
    let ns = Namespace::new();
    let l = ns.level("L");
    let v = ns.verb(l, "v", "");
    let s = ns.say(v, [ns.noun(l, "x", "")]);
    let mut sas = LocalSas::new(ns);
    // Deactivations without activations: dropped, counted.
    for _ in 0..10 {
        sas.deactivate(s);
    }
    assert_eq!(sas.stats().unbalanced_deactivations, 10);
    assert!(sas.is_empty());
    // Interleaved with legitimate traffic the counts stay exact.
    sas.activate(s);
    sas.deactivate(s);
    sas.deactivate(s);
    assert_eq!(sas.stats().unbalanced_deactivations, 11);
}

#[test]
fn question_registered_after_filtering_misses_history() {
    // The paper's caveat made concrete: filtering trades completeness.
    let ns = Namespace::new();
    let l = ns.level("L");
    let v = ns.verb(l, "v", "");
    let noun_a = ns.noun(l, "a", "");
    let noun_b = ns.noun(l, "b", "");
    let sid_b = ns.say(v, [noun_b]);
    let mut sas = LocalSas::new(ns);
    sas.register_question(&Question::new(
        "about a",
        vec![SentencePattern::noun_verb(noun_a, v)],
    ));
    sas.set_filter_uninteresting(true);
    sas.activate(sid_b); // filtered away
    let q_b = sas.register_question(&Question::new(
        "about b",
        vec![SentencePattern::noun_verb(noun_b, v)],
    ));
    // b *is* conceptually active, but the filter already dropped it.
    assert!(!sas.satisfied(q_b));
    assert_eq!(sas.stats().filtered, 1);
}

#[test]
fn daemon_tolerates_garbage_on_the_wire() {
    use paradyn_tool::daemon::Daemon;
    use pdmap_transport::{FaultPlan, Frame, FrameError, FrameKind};
    let ns = Namespace::new();
    let dm = Arc::new(paradyn_tool::DataManager::new(ns, "CM Fortran"));
    let (endpoint, mut daemon) = Daemon::pair(dm.clone());
    // Valid traffic around a bogus line: the sender only emits valid
    // messages, so inject garbage by reusing the sample channel with a
    // metric name that decodes fine, then check error accounting via a
    // direct decode of malformed input.
    endpoint.send_sample("ok", "f", 1, 2.0);
    daemon.pump();
    assert_eq!(daemon.samples().len(), 1);
    assert!(paradyn_tool::DaemonMsg::decode("GARBAGE|x").is_err());

    // Byte-level garbage: run the seeded mangler over many frames and
    // check every mode lands in the decode-error class it aims at —
    // truncation mid-frame, a length prefix claiming gigabytes, and a
    // flipped magic byte. Same seed, same mangle sequence.
    let plan = FaultPlan {
        seed: 0xBAD5EED,
        ..FaultPlan::none()
    };
    let mut modes_seen = std::collections::BTreeSet::new();
    for index in 0..64u64 {
        let frame = Frame::data(FrameKind::Daemon, b"SAMPLE|cpu|/Machine|7|1.5".to_vec());
        let mut bytes = frame.encode();
        let mode = plan.mangle_encoded(index, &mut bytes);
        modes_seen.insert(mode);
        let err = Frame::decode(&bytes).expect_err("mangled frame must not decode");
        match mode {
            "truncate" => assert_eq!(err, FrameError::Truncated, "index {index}"),
            "length-prefix" => {
                assert!(
                    matches!(err, FrameError::TooLarge(_)),
                    "index {index}: {err:?}"
                )
            }
            "magic" => assert!(
                matches!(err, FrameError::BadMagic(_)),
                "index {index}: {err:?}"
            ),
            other => panic!("unknown mangle mode {other}"),
        }
        // The mangler is deterministic: a replay mangles identically.
        let mut replay = frame.encode();
        assert_eq!(plan.mangle_encoded(index, &mut replay), mode);
        assert_eq!(replay, bytes, "index {index}: mangle must be reproducible");
    }
    assert_eq!(
        modes_seen.into_iter().collect::<Vec<_>>(),
        ["length-prefix", "magic", "truncate"],
        "64 frames must exercise all three mangle modes"
    );

    // And garbage never wedges the session: valid traffic still flows
    // after the codec has rejected a pile of mangled bytes.
    endpoint.send_sample("ok", "f", 2, 3.0);
    daemon.pump();
    assert_eq!(daemon.samples().len(), 2);
}

#[test]
fn unknown_focus_never_installs_instrumentation() {
    let tool = tool_for(cmf_lang::samples::FIGURE4, 2);
    let before = {
        let p = tool.manager().point("cmrts::reduce:sum:entry");
        tool.manager().snippet_count(p)
    };
    let bad = Focus::whole_program().select("CMFarrays", "/no/such/array");
    assert!(tool.request("Summations", &bad).is_err());
    let after = {
        let p = tool.manager().point("cmrts::reduce:sum:entry");
        tool.manager().snippet_count(p)
    };
    assert_eq!(before, after, "failed requests leave no residue");
}

#[test]
fn snapshot_trigger_without_question_fires_every_time() {
    let tool = tool_for(cmf_lang::samples::FIGURE4, 2);
    let mut m = tool.new_machine().unwrap();
    let point = m.points().msg_send;
    m.set_snapshot_trigger(cmrts_sim::SnapshotTrigger {
        point,
        question: None,
        once: false,
    });
    let s = m.run();
    assert_eq!(m.snapshots().len() as u64, s.messages);
}

#[test]
fn division_by_zero_propagates_as_float_semantics() {
    // The machine computes IEEE floats; no panic, the inf/NaN shows up in
    // the data like it would on real hardware.
    let mut b = ProgramBuilder::new("div");
    let a = b.alloc("A", &[4], Distribution::Block);
    b.simple_ncb(
        "f",
        &[a],
        NodeOp::Fill {
            dst: a,
            value: Operand::Const(1.0),
        },
    );
    b.simple_ncb(
        "d",
        &[a],
        NodeOp::BinOp {
            dst: a,
            a: Operand::Array(a),
            b: Operand::Const(0.0),
            op: cmrts_sim::BinOpKind::Div,
        },
    );
    let ns = Namespace::new();
    let mgr = Arc::new(dyninst_sim::InstrumentationManager::new());
    let mut m =
        cmrts_sim::Machine::new(MachineConfig::default(), ns, mgr, b.build().unwrap()).unwrap();
    m.run();
    assert!(m.gather(a).iter().all(|v| v.is_infinite()));
}

#[test]
fn consultant_on_quiet_program_confirms_nothing_interesting() {
    // A compute-dominated program on one node: no communication, sort,
    // or IO hypothesis should survive a high threshold (tiny programs are
    // legitimately dispatch-dominated, so give it real work).
    let tool = tool_for(
        "PROGRAM CALM\nREAL A(65536)\nA = 1.0\nA = A * 2.0\nA = A + 1.0\nEND\n",
        1,
    );
    let results = paradyn_tool::consultant::search(
        &tool,
        &paradyn_tool::consultant::ConsultantConfig {
            threshold: 0.5,
            max_depth: 1,
        },
    );
    for r in &results {
        assert!(
            !r.verdict.is_true(),
            "hypothesis {} unexpectedly true at {:.2}",
            r.hypothesis,
            r.ratio
        );
    }
}

#[test]
fn metric_requests_survive_multiple_runs() {
    // Requests accumulate across machines sharing the manager — by
    // design (Paradyn measures long-running apps); verify it is exact.
    let tool = tool_for(cmf_lang::samples::FIGURE4, 2);
    let req = tool.request("Summations", &Focus::whole_program()).unwrap();
    let mut m1 = tool.new_machine().unwrap();
    m1.run();
    let after_one = req.value(&m1);
    let mut m2 = tool.new_machine().unwrap();
    m2.run();
    assert_eq!(req.value(&m2), after_one * 2.0);
}

#[test]
fn trace_disabled_changes_no_results() {
    let run = |trace: bool| {
        let mut tool = Paradyn::new(MachineConfig {
            nodes: 4,
            trace,
            ..MachineConfig::default()
        });
        tool.load_source(cmf_lang::samples::ALL_VERBS).unwrap();
        let mut m = tool.new_machine().unwrap();
        let s = m.run();
        (s, m.scalar("S"), m.scalar("MX"))
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.0, without.0);
    assert_eq!(with.1, without.1);
    assert_eq!(with.2, without.2);
}
