//! Property-based tests on cross-crate invariants.

use cmrts_sim::{
    BinOpKind, Distribution, MachineConfig, NodeOp, Operand, ProgramBuilder, ReduceKind,
};
use dyninst_sim::InstrumentationManager;
use pdmap::aggregate::{assign_per_source, AssignPolicy};
use pdmap::cost::Cost;
use pdmap::mapping::MappingTable;
use pdmap::model::Namespace;
use pdmap::sas::{LocalSas, Question, SentencePattern};
use proptest::prelude::*;
use std::sync::Arc;

// --------------------------------------------------------------------------
// Cost conservation under upward mapping.
// --------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any bipartite mapping graph and any measurements, both policies
    /// conserve total cost (assignments + unmapped == measured).
    #[test]
    fn upward_mapping_conserves_cost(
        edges in proptest::collection::vec((0usize..6, 0usize..5), 0..20),
        costs in proptest::collection::vec((0usize..6, 0.0f64..100.0), 1..10),
        merge in any::<bool>(),
    ) {
        let ns = Namespace::new();
        let l = ns.level("L");
        let v = ns.verb(l, "v", "");
        let src_ids: Vec<_> = (0..6)
            .map(|i| ns.say(v, [ns.noun(l, &format!("s{i}"), "")]))
            .collect();
        let dst_ids: Vec<_> = (0..5)
            .map(|i| ns.say(v, [ns.noun(l, &format!("d{i}"), "")]))
            .collect();
        let mut table = MappingTable::new();
        for (s, d) in edges {
            table.map(src_ids[s], dst_ids[d]);
        }
        let measured: Vec<_> = costs
            .iter()
            .map(|&(s, c)| (src_ids[s], Cost::seconds(c)))
            .collect();
        let policy = if merge { AssignPolicy::Merge } else { AssignPolicy::SplitEvenly };
        let res = assign_per_source(&table, &measured, policy).unwrap();
        let total_in: f64 = costs.iter().map(|&(_, c)| c).sum();
        let total_out = pdmap::aggregate::total_cost(&res).unwrap()
            .map(|c| c.value)
            .unwrap_or(0.0);
        prop_assert!((total_in - total_out).abs() < 1e-6 * total_in.max(1.0),
            "in={total_in} out={total_out}");
    }

    /// Destination sentences never receive cost unless some mapped source
    /// was measured.
    #[test]
    fn no_cost_from_nothing(
        edges in proptest::collection::vec((0usize..4, 0usize..4), 0..12),
    ) {
        let ns = Namespace::new();
        let l = ns.level("L");
        let v = ns.verb(l, "v", "");
        let src_ids: Vec<_> = (0..4)
            .map(|i| ns.say(v, [ns.noun(l, &format!("s{i}"), "")]))
            .collect();
        let dst_ids: Vec<_> = (0..4)
            .map(|i| ns.say(v, [ns.noun(l, &format!("d{i}"), "")]))
            .collect();
        let mut table = MappingTable::new();
        for (s, d) in edges {
            table.map(src_ids[s], dst_ids[d]);
        }
        let res = assign_per_source(&table, &[], AssignPolicy::SplitEvenly).unwrap();
        prop_assert!(res.assignments.is_empty());
        prop_assert!(res.unmapped.is_empty());
    }
}

// --------------------------------------------------------------------------
// SAS multiset invariants under arbitrary interleavings.
// --------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Activations and deactivations balance: after undoing every
    /// activation the SAS is empty, counts never go negative (unbalanced
    /// deactivations are dropped), and `is_active` always agrees with the
    /// running count.
    #[test]
    fn sas_multiset_invariants(ops in proptest::collection::vec((0usize..5, any::<bool>()), 0..200)) {
        let ns = Namespace::new();
        let l = ns.level("L");
        let v = ns.verb(l, "v", "");
        let sids: Vec<_> = (0..5)
            .map(|i| ns.say(v, [ns.noun(l, &format!("n{i}"), "")]))
            .collect();
        let mut sas = LocalSas::new(ns);
        let mut model = [0u32; 5];
        for (i, activate) in ops {
            if activate {
                sas.activate(sids[i]);
                model[i] += 1;
            } else {
                sas.deactivate(sids[i]);
                model[i] = model[i].saturating_sub(1);
            }
            for (k, sid) in sids.iter().enumerate() {
                prop_assert_eq!(sas.active_count(*sid), model[k]);
                prop_assert_eq!(sas.is_active(*sid), model[k] > 0);
            }
            let distinct = model.iter().filter(|&&c| c > 0).count();
            prop_assert_eq!(sas.snapshot().len(), distinct);
        }
        // Drain.
        for (i, sid) in sids.iter().enumerate() {
            for _ in 0..model[i] {
                sas.deactivate(*sid);
            }
        }
        prop_assert!(sas.is_empty());
    }

    /// A single-pattern question is satisfied exactly when some matching
    /// sentence is active, regardless of interleaving and of when the
    /// question was registered.
    #[test]
    fn question_tracks_activity(
        pre_ops in proptest::collection::vec((0usize..4, any::<bool>()), 0..40),
        post_ops in proptest::collection::vec((0usize..4, any::<bool>()), 0..40),
        target in 0usize..4,
    ) {
        let ns = Namespace::new();
        let l = ns.level("L");
        let v = ns.verb(l, "v", "");
        let nouns: Vec<_> = (0..4).map(|i| ns.noun(l, &format!("n{i}"), "")).collect();
        let sids: Vec<_> = nouns.iter().map(|&n| ns.say(v, [n])).collect();
        let mut sas = LocalSas::new(ns);
        let mut model = [0i64; 4];
        let apply = |sas: &mut LocalSas, model: &mut [i64; 4], i: usize, a: bool| {
            if a {
                sas.activate(sids[i]);
                model[i] += 1;
            } else {
                sas.deactivate(sids[i]);
                if model[i] > 0 { model[i] -= 1; }
            }
        };
        for &(i, a) in &pre_ops {
            apply(&mut sas, &mut model, i, a);
        }
        let qid = sas.register_question(&Question::new(
            "q",
            vec![SentencePattern::noun_verb(nouns[target], v)],
        ));
        prop_assert_eq!(sas.satisfied(qid), model[target] > 0);
        for &(i, a) in &post_ops {
            apply(&mut sas, &mut model, i, a);
            prop_assert_eq!(sas.satisfied(qid), model[target] > 0);
        }
    }
}

// --------------------------------------------------------------------------
// PIF text round-trips.
// --------------------------------------------------------------------------

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_()#]{0,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pif_roundtrip(
        nouns in proptest::collection::vec((name_strategy(), name_strategy()), 0..6),
        mappings in proptest::collection::vec(
            (proptest::collection::vec(name_strategy(), 1..3), name_strategy(),
             proptest::collection::vec(name_strategy(), 1..3), name_strategy()), 0..4),
    ) {
        use pdmap_pif::{MappingRecord, NounRecord, PifFile, Record, SentenceRef};
        let mut f = PifFile::new();
        for (name, level) in nouns {
            f.push(Record::Noun(NounRecord {
                name,
                abstraction: level,
                description: "desc with spaces and = signs".into(),
            }));
        }
        for (sn, sv, dn, dv) in mappings {
            f.push(Record::Mapping(MappingRecord {
                source: SentenceRef::new(sn, sv),
                destination: SentenceRef::new(dn, dv),
            }));
        }
        let text = pdmap_pif::write(&f);
        let parsed = pdmap_pif::parse(&text).unwrap();
        prop_assert_eq!(f, parsed);
    }
}

// --------------------------------------------------------------------------
// Simulator results equal a sequential reference on random programs.
// --------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum RandOp {
    Fill(f64),
    Ramp(f64, f64),
    AddConst(f64),
    MulConst(f64),
    AddOther,
    Shift(i64, bool),
    ScanAdd,
    Sort,
}

fn rand_op() -> impl Strategy<Value = RandOp> {
    prop_oneof![
        (-10.0f64..10.0).prop_map(RandOp::Fill),
        ((-5.0f64..5.0), (-2.0f64..2.0)).prop_map(|(a, b)| RandOp::Ramp(a, b)),
        (-3.0f64..3.0).prop_map(RandOp::AddConst),
        (-2.0f64..2.0).prop_map(RandOp::MulConst),
        Just(RandOp::AddOther),
        ((-7i64..7), any::<bool>()).prop_map(|(k, c)| RandOp::Shift(k, c)),
        Just(RandOp::ScanAdd),
        Just(RandOp::Sort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn machine_matches_reference(
        n in 1usize..48,
        nodes in 1usize..6,
        ops in proptest::collection::vec(rand_op(), 1..8),
    ) {
        // Build the IR program and a sequential reference side by side.
        let mut b = ProgramBuilder::new("prop");
        let a = b.alloc("A", &[n], Distribution::Block);
        let o = b.alloc("O", &[n], Distribution::Block);
        let s = b.scalar("S");
        let mut ref_a = vec![0.0f64; n];
        let mut ref_o = vec![0.0f64; n];
        // Give O deterministic content.
        b.simple_ncb("init", &[o], NodeOp::Ramp { dst: o, start: 1.0, step: 0.5 });
        for (i, v) in ref_o.iter_mut().enumerate() {
            *v = 1.0 + 0.5 * i as f64;
        }
        for op in &ops {
            match *op {
                RandOp::Fill(v) => {
                    b.simple_ncb("f", &[a], NodeOp::Fill { dst: a, value: Operand::Const(v) });
                    ref_a.iter_mut().for_each(|x| *x = v);
                }
                RandOp::Ramp(start, step) => {
                    b.simple_ncb("r", &[a], NodeOp::Ramp { dst: a, start, step });
                    for (i, x) in ref_a.iter_mut().enumerate() {
                        *x = start + step * i as f64;
                    }
                }
                RandOp::AddConst(c) => {
                    b.simple_ncb("ac", &[a], NodeOp::BinOp {
                        dst: a, a: Operand::Array(a), b: Operand::Const(c), op: BinOpKind::Add,
                    });
                    ref_a.iter_mut().for_each(|x| *x += c);
                }
                RandOp::MulConst(c) => {
                    b.simple_ncb("mc", &[a], NodeOp::BinOp {
                        dst: a, a: Operand::Array(a), b: Operand::Const(c), op: BinOpKind::Mul,
                    });
                    ref_a.iter_mut().for_each(|x| *x *= c);
                }
                RandOp::AddOther => {
                    b.simple_ncb("ao", &[a, o], NodeOp::BinOp {
                        dst: a, a: Operand::Array(a), b: Operand::Array(o), op: BinOpKind::Add,
                    });
                    for (x, y) in ref_a.iter_mut().zip(&ref_o) {
                        *x += *y;
                    }
                }
                RandOp::Shift(k, circular) => {
                    b.simple_ncb("sh", &[a], NodeOp::Shift {
                        dst: a, src: a, offset: k, circular, dim: 0,
                    });
                    let old = ref_a.clone();
                    let rows = n as i64;
                    for r in 0..rows {
                        let src = r - k;
                        ref_a[r as usize] = if circular {
                            old[src.rem_euclid(rows) as usize]
                        } else if (0..rows).contains(&src) {
                            old[src as usize]
                        } else {
                            0.0
                        };
                    }
                }
                RandOp::ScanAdd => {
                    b.simple_ncb("sc", &[a], NodeOp::Scan {
                        kind: ReduceKind::Sum, src: a, dst: a,
                    });
                    let mut acc = 0.0;
                    for x in ref_a.iter_mut() {
                        acc += *x;
                        *x = acc;
                    }
                }
                RandOp::Sort => {
                    b.simple_ncb("so", &[a], NodeOp::Sort { dst: a, src: a });
                    ref_a.sort_by(|x, y| x.partial_cmp(y).unwrap());
                }
            }
        }
        b.simple_ncb("red", &[a], NodeOp::Reduce { kind: ReduceKind::Sum, src: a, dst: s });
        let ref_sum: f64 = ref_a.iter().sum();

        let ns = Namespace::new();
        let mgr = Arc::new(InstrumentationManager::new());
        let mut m = cmrts_sim::Machine::new(
            MachineConfig { nodes, trace: false, ..MachineConfig::default() },
            ns,
            mgr,
            b.build().unwrap(),
        )
        .unwrap();
        m.run();
        let got = m.gather(a);
        for (i, (g, r)) in got.iter().zip(&ref_a).enumerate() {
            prop_assert!((g - r).abs() <= 1e-9 * r.abs().max(1.0),
                "element {i}: got {g}, want {r} (n={n}, nodes={nodes}, ops={ops:?})");
        }
        let got_sum = m.scalar("S").unwrap();
        prop_assert!((got_sum - ref_sum).abs() <= 1e-6 * ref_sum.abs().max(1.0));
    }
}

// --------------------------------------------------------------------------
// MDL: generated source parses back to the same declaration.
// --------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mdl_emit_parse_roundtrip(
        id in "[a-z][a-z0-9_]{0,10}",
        name in "[A-Za-z][A-Za-z0-9 ]{0,14}",
        seconds in any::<bool>(),
        points in proptest::collection::vec("[a-z][a-z:_]{0,10}", 1..4),
    ) {
        let (units, actions_entry, actions_exit) = if seconds {
            ("seconds", "startProcessTimer;", Some("stopProcessTimer;"))
        } else {
            ("operations", "incrCounter 1;", None)
        };
        let mut src = format!("metric {id} {{ name \"{name}\"; units {units};\n");
        for (i, p) in points.iter().enumerate() {
            src.push_str(&format!("foreach point \"{p}:{i}\" {{ {actions_entry} }}\n"));
            if let Some(stop) = actions_exit {
                src.push_str(&format!("foreach point \"{p}:{i}:x\" {{ {stop} }}\n"));
            }
        }
        src.push('}');
        let parsed = dyninst_sim::parse_mdl(&src).unwrap();
        prop_assert_eq!(parsed.metrics.len(), 1);
        let m = &parsed.metrics[0];
        prop_assert_eq!(&m.id, &id);
        prop_assert_eq!(&m.name, &name.to_string());
        prop_assert_eq!(m.is_timer(), seconds);
        let expected_blocks = if seconds { points.len() * 2 } else { points.len() };
        prop_assert_eq!(m.points.len(), expected_blocks);
    }
}

// --------------------------------------------------------------------------
// Distributed SAS: forwarded proxies mirror the source node exactly.
// --------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any interleaving of activations/deactivations on the source
    /// node, after pumping, the destination's proxy count equals the
    /// source's active count for every forwarded sentence — and messages
    /// number exactly the operations on matching sentences.
    #[test]
    fn forwarding_mirrors_source(ops in proptest::collection::vec((0usize..4, any::<bool>()), 0..80)) {
        use pdmap::sas::{DistributedSas, ForwardingRule, SentencePattern};
        let ns = Namespace::new();
        let l = ns.level("L");
        let fwd_verb = ns.verb(l, "forwarded", "");
        let loc_verb = ns.verb(l, "local", "");
        // Sentences 0,1 are forwarded; 2,3 are local-only.
        let sids = [
            ns.say(fwd_verb, [ns.noun(l, "a", "")]),
            ns.say(fwd_verb, [ns.noun(l, "b", "")]),
            ns.say(loc_verb, [ns.noun(l, "c", "")]),
            ns.say(loc_verb, [ns.noun(l, "d", "")]),
        ];
        let d = DistributedSas::new(ns, 2);
        d.add_rule(0, ForwardingRule {
            pattern: SentencePattern::any_noun(fwd_verb),
            to_node: 1,
        });
        let mut model = [0i64; 4];
        let mut matching_ops = 0u64;
        for (i, activate) in ops {
            if activate {
                d.activate(0, sids[i]);
                model[i] += 1;
                if i < 2 { matching_ops += 1; }
            } else {
                // Only deactivate when active, to keep the model simple
                // (unbalanced deactivations are dropped locally but WOULD
                // be forwarded; that asymmetry is tested separately).
                if model[i] > 0 {
                    d.deactivate(0, sids[i]);
                    model[i] -= 1;
                    if i < 2 { matching_ops += 1; }
                }
            }
        }
        prop_assert_eq!(d.messages_sent(), matching_ops);
        d.pump();
        for (i, sid) in sids.iter().enumerate() {
            let src = d.sharded().with_node(0, |s| s.active_count(*sid));
            let dst = d.sharded().with_node(1, |s| s.active_count(*sid));
            prop_assert_eq!(src as i64, model[i]);
            if i < 2 {
                prop_assert_eq!(dst, src, "proxy mirrors source for forwarded sentences");
            } else {
                prop_assert_eq!(dst, 0, "local sentences never cross nodes");
            }
        }
    }
}

// --------------------------------------------------------------------------
// Where-axis covering is a partial order compatible with refinement.
// --------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn focus_covering_laws(path in proptest::collection::vec(0usize..3, 0..5)) {
        use pdmap::hierarchy::{Focus, WhereAxis};
        // Build a ternary tree 3 levels deep.
        let mut axis = WhereAxis::new();
        {
            let t = axis.tree_mut("H");
            for a in 0..3 {
                for b in 0..3 {
                    for c in 0..3 {
                        t.add_path(&[&format!("n{a}"), &format!("n{b}"), &format!("n{c}")]);
                    }
                }
            }
        }
        // Truncate the random path to depth ≤ 3 and build focus chain.
        let depth = path.len().min(3);
        let mut p = String::new();
        let mut foci = vec![Focus::whole_program()];
        for &seg in path.iter().take(depth) {
            p.push_str(&format!("/n{seg}"));
            foci.push(Focus::whole_program().select("H", &p));
        }
        // Every prefix covers every extension; never the reverse (unless equal).
        for i in 0..foci.len() {
            for j in i..foci.len() {
                prop_assert!(foci[i].covers(&foci[j], &axis), "{} !>= {}", foci[i], foci[j]);
                if i != j {
                    prop_assert!(!foci[j].covers(&foci[i], &axis));
                }
            }
            // Reflexive.
            prop_assert!(foci[i].covers(&foci[i], &axis));
        }
    }
}

// --------------------------------------------------------------------------
// Cyclic distribution: reductions agree with the sequential reference.
// --------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cyclic_reduce_matches_reference(
        n in 1usize..64,
        nodes in 1usize..6,
        start in -10.0f64..10.0,
        step in -2.0f64..2.0,
    ) {
        let mut b = ProgramBuilder::new("cyc");
        let a = b.alloc("A", &[n], Distribution::Cyclic);
        let s = b.scalar("S");
        let mx = b.scalar("MX");
        b.simple_ncb("r", &[a], NodeOp::Ramp { dst: a, start, step });
        b.simple_ncb("s", &[a], NodeOp::Reduce { kind: ReduceKind::Sum, src: a, dst: s });
        b.simple_ncb("m", &[a], NodeOp::Reduce { kind: ReduceKind::Max, src: a, dst: mx });
        let ns = Namespace::new();
        let mgr = Arc::new(InstrumentationManager::new());
        let mut m = cmrts_sim::Machine::new(
            MachineConfig { nodes, trace: false, ..MachineConfig::default() },
            ns, mgr, b.build().unwrap(),
        ).unwrap();
        m.run();
        let data: Vec<f64> = (0..n).map(|i| start + step * i as f64).collect();
        let want_sum: f64 = data.iter().sum();
        let want_max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let got_sum = m.scalar("S").unwrap();
        prop_assert!((got_sum - want_sum).abs() <= 1e-9 * want_sum.abs().max(1.0));
        prop_assert_eq!(m.scalar("MX").unwrap(), want_max);
        // Gather respects the cyclic layout too.
        let gathered = m.gather(a);
        for (g, w) in gathered.iter().zip(&data) {
            prop_assert!((g - w).abs() < 1e-12);
        }
    }
}
