//! Integration tests for the self-mapped observability layer: the tool
//! measuring itself with the paper's own Noun-Verb machinery, the
//! perturbation self-report, and the transport conservation law with
//! span recording enabled.
//!
//! All tests in this binary share the global `pdmap-obs` registry, so
//! assertions are lower bounds (`>=`), never exact counts.

use paradyn_tool::selfmap::{ask_obs, export_obs, obs_sentences};
use paradyn_tool::{Daemon, DataManager};
use pdmap::model::Namespace;
use pdmap_transport::{drain_frames, send_wire, Backend, Backpressure, PifBlob, TransportConfig};
use std::sync::Arc;
use std::time::Duration;
use sys_sim::db::DbSystem;

/// Runs the §4.2.3 database scenario over TCP plus a daemon sample burst,
/// so the transport/tcp, sas, and daemon span sites all fire.
fn run_observed_workload() {
    let ns = Namespace::new();
    let mut db = DbSystem::over(ns, true, Backend::Tcp);
    db.watch_query(1);
    db.run_query(1, 8);
    db.background_read();

    let dm = Arc::new(DataManager::new(Namespace::new(), "CM Fortran"));
    let (endpoint, mut daemon) = Daemon::over(Backend::Tcp, dm);
    for i in 0..16 {
        endpoint.send_sample("Computation Time", "/", i, i as f64);
    }
    daemon.pump_until(16, Duration::from_secs(5));
}

#[test]
fn performance_question_about_the_tool_returns_nonzero_costs() {
    run_observed_workload();
    let snap = pdmap_obs::snapshot();
    let ns = Namespace::new();

    // The ISSUE acceptance criterion: a question through the paradyn_tool
    // machinery against OBS_MDL returns nonzero costs for at least the
    // transport and SAS components.
    let tcp_send = ask_obs(&ns, &snap, "transport/tcp", "send")
        .expect("transport/tcp send must be active after a TCP workload");
    assert!(tcp_send > 0);
    let sas_push = ask_obs(&ns, &snap, "sas", "push")
        .expect("sas push must be active after activating sentences");
    assert!(sas_push > 0);

    // The MDL exporter pairs every known site; the ones we exercised
    // carry nonzero values.
    let samples = export_obs(&snap);
    let lookup = |name: &str| {
        samples
            .iter()
            .find(|(m, _)| m.name == name)
            .map(|&(_, v)| v)
            .unwrap()
    };
    assert!(lookup("Obs transport/tcp send Time") > 0);
    assert!(lookup("Obs transport/tcp send Count") > 0);
    assert!(lookup("Obs sas push Time") > 0);
    assert!(lookup("Obs daemon send Count") > 0);

    // And the sentences themselves speak the Tool level's vocabulary.
    let sentences = obs_sentences(&ns, &snap);
    assert!(sentences.len() >= 3);
    let rendered: Vec<String> = sentences
        .iter()
        .map(|&(sid, _)| ns.render_sentence(sid))
        .collect();
    assert!(
        rendered.iter().any(|r| r.contains("transport/tcp")),
        "got {rendered:?}"
    );
}

#[test]
fn perturbation_overhead_is_below_ten_percent() {
    run_observed_workload();
    let report = pdmap_obs::perturbation_report();
    assert!(report.span_count > 0);
    assert!(report.overhead_ns > 0, "calibration must charge something");
    assert!(
        report.overhead_fraction() < 0.10,
        "span overhead must stay under 10% of reported cost: {}",
        report.summary_line()
    );
    assert!(report.corrected_total_ns <= report.total_reported_ns);
}

#[test]
fn conservation_holds_under_drop_oldest_with_spans_enabled() {
    assert!(pdmap_obs::enabled(), "spans are on by default");
    let cfg = TransportConfig::with_capacity(4).backpressure(Backpressure::DropOldest);
    let link = Backend::InProc.link(&cfg);
    let blob = PifBlob(vec![0x5A; 64]);
    for _ in 0..500 {
        send_wire(link.client.as_ref(), &blob).unwrap();
    }
    let mut delivered = 0u64;
    loop {
        let d = drain_frames(link.server.as_ref());
        if d.is_empty() {
            break;
        }
        delivered += d.len() as u64;
    }
    let sent_stats = link.client.stats();
    let recv_stats = link.server.stats();
    link.close();
    assert_eq!(sent_stats.frames_sent, 500);
    assert_eq!(delivered, recv_stats.frames_received);
    assert!(sent_stats.drops > 0, "a 4-slot DropOldest queue must drop");
    assert_eq!(
        sent_stats.frames_sent,
        recv_stats.frames_received + sent_stats.drops,
        "sent == delivered + drops must survive span instrumentation"
    );
}

#[test]
fn chrome_trace_export_is_wellformed_and_nonempty() {
    run_observed_workload();
    let snap = pdmap_obs::snapshot();
    assert!(snap.span_count() > 0);
    let json = pdmap_obs::chrome_trace_json(&snap);
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"displayTimeUnit\":\"ns\""));
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("\"cat\":\"transport/tcp\""));
    // Structural balance outside string literals — a cheap stand-in for a
    // JSON parser the workspace doesn't have.
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in json.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0);
    }
    assert_eq!(depth, 0);
    assert!(!in_str);
}
