//! End-to-end integration: source → compiler → PIF → machine → metrics,
//! validated against the simulator's ground-truth event trace.

use cmrts_sim::{Event, MachineConfig, ReduceKind};
use paradyn_tool::tool::Paradyn;
use pdmap::aggregate::AssignPolicy;
use pdmap::cost::Cost;
use pdmap::hierarchy::Focus;

fn tool_for(src: &str, nodes: usize) -> Paradyn {
    let mut tool = Paradyn::new(MachineConfig {
        nodes,
        ..MachineConfig::default()
    });
    tool.load_source(src).expect("sample compiles");
    tool
}

#[test]
fn counters_match_ground_truth_trace() {
    let tool = tool_for(cmf_lang::samples::ALL_VERBS, 4);
    let names = [
        "Summations",
        "MAXVAL Count",
        "MINVAL Count",
        "Rotations",
        "Shifts",
        "Transposes",
        "Scans",
        "Sorts",
        "Point-to-Point Operations",
        "Broadcasts",
        "Node Activations",
        "Cleanups",
    ];
    let requests: Vec<_> = names
        .iter()
        .map(|n| tool.request(n, &Focus::whole_program()).unwrap())
        .collect();
    let mut m = tool.new_machine().unwrap();
    let summary = m.run();

    let count = |f: &dyn Fn(&Event) -> bool| -> f64 {
        m.trace().events().iter().filter(|e| f(e)).count() as f64
    };
    let expected = [
        count(&|e| {
            matches!(
                e,
                Event::Reduce {
                    kind: ReduceKind::Sum,
                    ..
                }
            )
        }),
        count(&|e| {
            matches!(
                e,
                Event::Reduce {
                    kind: ReduceKind::Max,
                    ..
                }
            )
        }),
        count(&|e| {
            matches!(
                e,
                Event::Reduce {
                    kind: ReduceKind::Min,
                    ..
                }
            )
        }),
        count(&|e| matches!(e, Event::Transform { kind: "rotate", .. })),
        count(&|e| matches!(e, Event::Transform { kind: "shift", .. })),
        count(&|e| {
            matches!(
                e,
                Event::Transform {
                    kind: "transpose",
                    ..
                }
            )
        }),
        count(&|e| matches!(e, Event::Scan { .. })),
        count(&|e| matches!(e, Event::Sort { .. })),
        summary.messages as f64,
        summary.broadcasts as f64,
        count(&|e| matches!(e, Event::NodeActivate { .. })),
        count(&|e| matches!(e, Event::Cleanup { .. })),
    ];
    for ((name, req), want) in names.iter().zip(&requests).zip(&expected) {
        assert_eq!(req.value(&m), *want, "metric {name} disagrees with trace");
        assert!(*want > 0.0, "workload must exercise {name}");
    }
}

#[test]
fn computed_results_match_sequential_reference() {
    // The simulator's collectives produce real answers.
    let src = "\
PROGRAM CHECK
REAL A(100), B(100)
FORALL (I = 1:100) A(I) = 3*I - 2
B = SCAN_ADD(A)
S = SUM(A)
MX = MAXVAL(A)
MN = MINVAL(A)
LAST = MAXVAL(B)
END
";
    let tool = tool_for(src, 4);
    let mut m = tool.new_machine().unwrap();
    m.run();
    let a: Vec<f64> = (1..=100).map(|i| 3.0 * i as f64 - 2.0).collect();
    let sum: f64 = a.iter().sum();
    assert_eq!(m.scalar("S"), Some(sum));
    assert_eq!(m.scalar("MX"), Some(298.0));
    assert_eq!(m.scalar("MN"), Some(1.0));
    assert_eq!(
        m.scalar("LAST"),
        Some(sum),
        "scan's last element is the sum"
    );
}

#[test]
fn per_array_attribution_counts_exact_events() {
    // A is summed twice, B once; attribution must separate them.
    let src = "\
PROGRAM TWICE
REAL A(256), B(256)
A = 1.0
B = 2.0
S1 = SUM(A)
S2 = SUM(A)
S3 = SUM(B)
END
";
    let nodes = 4;
    let tool = tool_for(src, nodes);
    let fa = Focus::whole_program().select("CMFarrays", "/twice.fcm/TWICE/A");
    let fb = Focus::whole_program().select("CMFarrays", "/twice.fcm/TWICE/B");
    let ra = tool.request("Summations", &fa).unwrap();
    let rb = tool.request("Summations", &fb).unwrap();
    let mut m = tool.new_machine().unwrap();
    m.run();
    assert_eq!(ra.value(&m), (2 * nodes) as f64);
    assert_eq!(rb.value(&m), nodes as f64);
}

#[test]
fn mapping_upward_assigns_block_time_to_lines() {
    // Measure per-block processing time (guarded timers on the block
    // sentences fed by mapping instrumentation), then push the costs
    // upward through the PIF mapping table to source lines.
    let src = "\
PROGRAM UPWARD
REAL A(512), B(512)
A = 1.0
B = 2.0
S = SUM(A)
END
";
    let tool = tool_for(src, 2);
    let ns = tool.namespace().clone();
    let base = ns.find_level("Base").unwrap();
    let runs = ns.find_verb(base, "Runs").unwrap();
    let util = ns.find_verb(base, "CPU Utilization").unwrap();

    // One custom timer per generated block, gated on its block sentence.
    let block_names = ["cmpe_upward_1_()", "cmpe_upward_2_()"];
    let mut mm_src = String::new();
    for (i, _) in block_names.iter().enumerate() {
        mm_src.push_str(&format!(
            r#"metric blk{i} {{ name "Block {i} Time"; units seconds;
               foreach point "cmrts::block:entry" {{ startProcessTimer; }}
               foreach point "cmrts::block:exit" {{ stopProcessTimer; }} }}"#,
        ));
        mm_src.push('\n');
    }
    let mut tool = tool;
    tool.metrics_mut().add_mdl(&mm_src).unwrap();
    let requests: Vec<_> = block_names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let noun = ns.find_noun(base, name).unwrap();
            let sentence = ns.say(runs, [noun]);
            let decl = tool.metrics().decl(&format!("blk{i}")).unwrap().clone();
            dyninst_sim::instantiate(
                tool.manager(),
                &decl,
                vec![dyninst_sim::Pred::SentenceActive(sentence)],
            )
        })
        .collect();

    let mut m = tool.new_machine().unwrap();
    m.run();
    let prims = tool.manager().primitives();
    let now = m.wall_clock();

    // Build measured (PIF source sentence, cost) pairs and map upward.
    let measured: Vec<(pdmap::model::SentenceId, Cost)> = block_names
        .iter()
        .zip(&requests)
        .map(|(name, inst)| {
            let noun = ns.find_noun(base, name).unwrap();
            let sid = ns.say(util, [noun]);
            let secs = inst.read_raw(prims, now) as f64 / 1e9;
            (sid, Cost::seconds(secs))
        })
        .collect();
    assert!(measured.iter().all(|(_, c)| c.value > 0.0), "{measured:?}");

    let res = tool
        .data()
        .map_upward(&measured, AssignPolicy::Merge)
        .unwrap();
    assert!(
        res.unmapped.is_empty(),
        "all blocks map: {:?}",
        res.unmapped
    );
    // Block 1 (fused fills) maps to the merged {line3, line4}; block 2 (the
    // reduction) to line5.
    let cmf = ns.find_level("CM Fortran").unwrap();
    let executes = ns.find_verb(cmf, "Executes").unwrap();
    let line5 = ns.say(executes, [ns.find_noun(cmf, "line5").unwrap()]);
    assert!(res.cost_for(line5).is_some(), "line5 received cost");
    let merged = res
        .assignments
        .iter()
        .find(|a| a.target.members().len() == 2)
        .expect("fused block yields a merged two-line target");
    assert!(merged.cost.value > 0.0);
}

#[test]
fn node_scaling_changes_message_counts() {
    // Reduction trees grow with node count (log tree + per-node leaf msgs).
    let mut last = 0;
    for nodes in [2usize, 4, 8] {
        let tool = tool_for(cmf_lang::samples::FIGURE4, nodes);
        let mut m = tool.new_machine().unwrap();
        let s = m.run();
        assert!(
            s.messages > last,
            "messages must grow with node count: {} !> {last} at P={nodes}",
            s.messages
        );
        last = s.messages;
    }
}

#[test]
fn determinism_across_runs() {
    let tool = tool_for(cmf_lang::samples::ALL_VERBS, 4);
    let run = || {
        let mut m = tool.new_machine().unwrap();
        let s = m.run();
        (
            s,
            m.scalar("S"),
            m.scalar("MX"),
            m.scalar("MN"),
            m.trace().events().len(),
            m.wall_clock(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "simulation must be deterministic");
}

#[test]
fn fusion_ablation_changes_block_structure_not_results() {
    let ns1 = pdmap::model::Namespace::new();
    let ns2 = pdmap::model::Namespace::new();
    let fused = cmf_lang::compile(
        cmf_lang::samples::ALL_VERBS,
        &ns1,
        &cmf_lang::CompileOptions::default(),
    )
    .unwrap();
    let unfused = cmf_lang::compile(
        cmf_lang::samples::ALL_VERBS,
        &ns2,
        &cmf_lang::CompileOptions {
            lower: cmf_lang::LowerOptions {
                fuse_elementwise: false,
                ..cmf_lang::LowerOptions::default()
            },
        },
    )
    .unwrap();
    assert!(unfused.lowered.blocks.len() > fused.lowered.blocks.len());

    // Same computed answers either way.
    let run = |compiled: &cmf_lang::Compiled, ns: &pdmap::model::Namespace| {
        let mgr = std::sync::Arc::new(dyninst_sim::InstrumentationManager::new());
        let mut m = cmrts_sim::Machine::new(
            MachineConfig {
                nodes: 4,
                ..MachineConfig::default()
            },
            ns.clone(),
            mgr,
            compiled.program().clone(),
        )
        .unwrap();
        m.run();
        (m.scalar("S"), m.scalar("MX"), m.scalar("MN"))
    };
    assert_eq!(run(&fused, &ns1), run(&unfused, &ns2));
}

#[test]
fn where_axis_matches_figure8_after_run() {
    let tool = tool_for(cmf_lang::samples::BOW, 4);
    let mut m = tool.new_machine().unwrap();
    m.run();
    let axis = tool.render_where_axis();
    for needle in [
        "CMFarrays",
        "CORNER",
        "TOT",
        "SRM",
        "WGHT",
        "SCL",
        "TMP",
        "sub#3",
    ] {
        assert!(axis.contains(needle), "missing {needle} in:\n{axis}");
    }
}
