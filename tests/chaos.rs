//! Chaos integration: kill a daemon mid-session and prove the loss is
//! *covered* — excluded, labeled, and recovered — never a silent zero.
//!
//! The acceptance test for the supervised daemon fleet: 4 threaded
//! `pdmapd` daemons over real TCP, one killed mid-session (SIGKILL
//! equivalent: transport torn down, no Goodbye), the tool keeps running
//! with `Coverage { nodes_reporting: 3, nodes_total: 4 }`; a restarted
//! daemon on a fresh port is readmitted through the reconnect factory and
//! coverage returns to 4/4.

use paradyn_tool::{DaemonHealth, DaemonSet, DataManager, SupervisorPolicy};
use pdmap::model::Namespace;
use pdmap_transport::{ReconnectPolicy, TcpClient, Transport, TransportConfig};
use pdmapd::{DaemonConfig, RunningDaemon};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A transport config tuned for fast failure detection in tests: a dead
/// peer is declared not-alive after 400 ms of silence instead of 2 s.
fn chaos_transport() -> TransportConfig {
    TransportConfig {
        liveness_timeout: Duration::from_millis(400),
        heartbeat_every: Duration::from_millis(50),
        reconnect: ReconnectPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_seed: 0xC0FFEE,
        },
        ..TransportConfig::default()
    }
}

/// Supervisor thresholds matched to the transport above.
fn chaos_policy() -> SupervisorPolicy {
    SupervisorPolicy {
        degrade_after: Duration::from_millis(200),
        quarantine_after: Duration::from_millis(400),
        retry: ReconnectPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(200),
            jitter_seed: 7,
        },
        retry_sync_rounds: 2,
        retry_sync_timeout: Duration::from_millis(500),
        ..SupervisorPolicy::default()
    }
}

fn daemon(skew_ns: i64, samples: u32) -> RunningDaemon {
    pdmapd::spawn(DaemonConfig {
        skew_ns,
        samples,
        period: Duration::from_millis(5),
        linger: Duration::from_secs(10),
        ..DaemonConfig::default()
    })
    .expect("bind daemon listener")
}

#[test]
fn kill_one_of_four_is_covered_then_restored() {
    let mut daemons: Vec<Option<RunningDaemon>> = (0..4)
        .map(|i| Some(daemon(i as i64 * 10_000_000, 200)))
        .collect();
    let addrs: Vec<_> = daemons.iter().map(|d| d.as_ref().unwrap().addr).collect();
    let data = Arc::new(DataManager::sharded(Namespace::new(), "CM Fortran", 4));
    let cfg = chaos_transport();
    let mut set = DaemonSet::connect(&addrs, cfg, data);
    set.set_policy(chaos_policy());
    set.clock_sync(4, Duration::from_secs(10))
        .expect("all four daemons answer clock probes");
    assert!(set.coverage().is_complete(), "4/4 after sync");

    // Let the session flow, then kill daemon 2 mid-stream: transport torn
    // down, no drain, no Goodbye — a crash, not a shutdown.
    set.pump_until_samples(8, Duration::from_secs(10));
    let victim = daemons[2].take().unwrap();
    let report = victim.kill().expect("victim report");
    assert!(!report.graceful_shutdown, "a kill must not look graceful");
    let mappings_before = set.data().with_mappings(|m| m.len());

    // The supervisor notices (dead link + silence) and quarantines it; the
    // other three keep reporting. No panic anywhere on this path.
    let deadline = Instant::now() + Duration::from_secs(15);
    while set.health(2) != DaemonHealth::Quarantined && Instant::now() < deadline {
        set.pump_parallel();
        set.supervise();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        set.health(2),
        DaemonHealth::Quarantined,
        "victim quarantined"
    );
    let cov = set.coverage();
    assert_eq!(
        (cov.nodes_reporting, cov.nodes_total),
        (3, 4),
        "coverage must label the degraded fleet: {cov}"
    );
    assert!(!cov.is_complete());
    // The merged answer carries the same label — a consumer cannot read a
    // 3-node merge as a 4-node truth.
    assert_eq!(set.merged_samples().coverage().nodes_reporting, 3);

    // Restart: a fresh daemon on a fresh port, factory pointed at it. The
    // supervisor's next due retry re-dials, re-syncs the clock, and
    // readmits; the re-shipped PIF is absorbed by content-hash dedup.
    let replacement = daemon(20_000_000, 200);
    let new_addr = replacement.addr;
    set.set_reconnect(
        2,
        Box::new(move || TcpClient::connect(new_addr, chaos_transport()) as Arc<dyn Transport>),
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    while set.health(2) == DaemonHealth::Quarantined && Instant::now() < deadline {
        set.pump_parallel();
        set.supervise();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_ne!(
        set.health(2),
        DaemonHealth::Quarantined,
        "replacement daemon must be readmitted"
    );
    let cov = set.coverage();
    assert_eq!((cov.nodes_reporting, cov.nodes_total), (4, 4), "{cov}");
    let rec = set
        .recoveries()
        .iter()
        .find(|r| r.daemon == 2)
        .expect("readmission logged");
    assert_eq!(rec.gap, None, "crash died unannounced; gap unknowable");
    assert!(set.conn(2).clock().rounds > 0, "clock re-synced");

    // Samples flow from the replacement too, and the re-shipped PIF did
    // not duplicate the catalogue.
    let before = set.conn(2).samples_received();
    let deadline = Instant::now() + Duration::from_secs(10);
    while set.conn(2).samples_received() == before && Instant::now() < deadline {
        set.pump_parallel();
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        set.conn(2).samples_received() > before,
        "replacement streams"
    );
    assert_eq!(
        set.data().with_mappings(|m| m.len()),
        mappings_before,
        "content-hash dedup absorbed the re-shipped PIF"
    );

    // Wind down: graceful shutdown across the fleet announces send counts.
    for d in daemons.iter().flatten() {
        d.stop();
    }
    replacement.stop();
    let final_cov = set.shutdown_all(Duration::from_secs(10));
    assert_eq!(final_cov.nodes_total, 4);
    for d in daemons.into_iter().flatten() {
        let r = d.join().expect("daemon report");
        assert!(r.tool_connected);
        assert!(r.graceful_shutdown, "stopped daemons flush a Goodbye");
    }
    let _ = replacement.join();
}

#[test]
fn graceful_stop_announces_and_conserves() {
    // SIGTERM-equivalent: stop() drains and sends Goodbye{samples_sent};
    // the tool's conservation law closes exactly (lost == 0).
    let d = daemon(0, 12);
    let data = Arc::new(DataManager::sharded(Namespace::new(), "CM Fortran", 1));
    let mut set = DaemonSet::connect(&[d.addr], chaos_transport(), data);
    set.clock_sync(3, Duration::from_secs(10)).expect("sync");
    set.pump_until_samples(4, Duration::from_secs(10));

    d.stop();
    let deadline = Instant::now() + Duration::from_secs(10);
    while set.conn(0).announced_sent().is_none() && Instant::now() < deadline {
        set.pump();
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = d.join().expect("daemon report");
    assert!(report.graceful_shutdown, "stop() must flush the Goodbye");
    let announced = set.conn(0).announced_sent().expect("Goodbye arrived");
    assert_eq!(announced, report.samples_sent as u64);

    // Everything announced was delivered over loopback TCP.
    let deadline = Instant::now() + Duration::from_secs(10);
    while set.conn(0).samples_received() < announced && Instant::now() < deadline {
        set.pump();
        std::thread::sleep(Duration::from_millis(2));
    }
    let cov = set.coverage();
    assert_eq!(
        cov.samples_lost, 0,
        "nothing lost on a graceful stop: {cov}"
    );
    assert!(cov.is_complete());
}
