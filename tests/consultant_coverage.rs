//! Coverage-aware consultant integration: the tri-state verdicts must be
//! driven by *measured* fleet coverage, end to end.
//!
//! Three acceptance facts, each over the real session machinery:
//!
//! 1. A complete fleet reproduces the classic consultant exactly — point
//!    intervals, every verdict decided, render byte-identical to the
//!    unstamped tool.
//! 2. Killing 1 of 4 daemons mid-session flips borderline hypotheses to
//!    `Unknown` while clear-cut ones stay decided — and nothing ever
//!    flips to the opposite decided answer.
//! 3. A seeded [`FaultPlan`] partition window produces labeled sample
//!    loss, and the verdict intervals widen monotonically with that loss.

use paradyn_tool::consultant::{audit, render, search, search_parallel, ConsultantConfig, Verdict};
use paradyn_tool::{
    Coverage, DaemonHealth, DaemonMsg, DaemonSet, DataManager, Paradyn, SessionCoverage,
    SupervisorPolicy,
};
use pdmap::model::Namespace;
use pdmap_transport::{
    send_wire, Backend, FaultInjector, FaultPlan, ReconnectPolicy, Transport, TransportConfig,
    WirePayload,
};
use pdmapd::{DaemonConfig, RunningDaemon};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A program whose time goes into communication: global sorts and a shift
/// dwarf the element-wise work, so the ratio spectrum has both a clear
/// leader and hypotheses pinned at zero.
const COMM_HEAVY: &str = "\
PROGRAM COMMY
REAL A(512), B(512)
A = 1.0
B = SORT(A)
B = SORT(B)
A = CSHIFT(B, 7)
END
";

fn tool_for(nodes: usize) -> Paradyn {
    let mut t = Paradyn::new(cmrts_sim::MachineConfig {
        nodes,
        ..cmrts_sim::MachineConfig::default()
    });
    t.load_source(COMM_HEAVY).unwrap();
    t
}

fn daemon(skew_ns: i64, samples: u32) -> RunningDaemon {
    pdmapd::spawn(DaemonConfig {
        skew_ns,
        samples,
        period: Duration::from_millis(5),
        linger: Duration::from_secs(10),
        ..DaemonConfig::default()
    })
    .expect("bind daemon listener")
}

/// Transport + supervisor thresholds tuned for fast failure detection.
fn fast_transport() -> TransportConfig {
    TransportConfig {
        liveness_timeout: Duration::from_millis(400),
        heartbeat_every: Duration::from_millis(50),
        reconnect: ReconnectPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_seed: 0xC0FFEE,
        },
        ..TransportConfig::default()
    }
}

fn fast_policy() -> SupervisorPolicy {
    SupervisorPolicy {
        degrade_after: Duration::from_millis(200),
        quarantine_after: Duration::from_millis(400),
        retry: ReconnectPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(200),
            jitter_seed: 7,
        },
        retry_sync_rounds: 2,
        retry_sync_timeout: Duration::from_millis(500),
        ..SupervisorPolicy::default()
    }
}

#[test]
fn full_fleet_reproduces_point_verdicts_exactly() {
    // A healthy 4-daemon session, gracefully wound down: the measured
    // coverage label is complete, so stamping it on the tool must not
    // change a single byte of the consultant's answer.
    let daemons: Vec<RunningDaemon> = (0..4).map(|i| daemon(i as i64 * 10_000_000, 8)).collect();
    let addrs: Vec<_> = daemons.iter().map(|d| d.addr).collect();
    let data = Arc::new(DataManager::sharded(Namespace::new(), "CM Fortran", 4));
    let mut set = DaemonSet::connect(&addrs, fast_transport(), data);
    set.clock_sync(4, Duration::from_secs(10)).expect("sync");
    set.pump_until_samples(32, Duration::from_secs(10));
    for d in &daemons {
        d.stop();
    }
    let final_cov = set.shutdown_all(Duration::from_secs(10));
    assert!(final_cov.is_complete(), "graceful fleet: {final_cov}");
    let session = set.session_coverage();
    for d in daemons {
        let _ = d.join();
    }

    let tool = tool_for(4);
    let cfg = ConsultantConfig::default();
    let baseline = search(&tool, &cfg);
    tool.set_session_coverage(Some(session));
    let stamped = search(&tool, &cfg);

    for (b, s) in baseline.iter().zip(&stamped) {
        assert!(s.interval.is_point(), "{}: {}", s.hypothesis, s.interval);
        assert!(s.verdict.is_decided());
        assert_eq!(
            s.verdict.is_true(),
            s.ratio > cfg.threshold,
            "{}: point verdict is the classic boolean",
            s.hypothesis
        );
        assert_eq!(b.verdict, s.verdict, "{}", s.hypothesis);
    }
    assert_eq!(
        render(&baseline),
        render(&stamped),
        "complete measured coverage renders byte-identically"
    );
}

#[test]
fn killing_one_daemon_flips_borderline_verdicts_only() {
    // 4 daemons, one killed mid-session (no Goodbye). The supervisor's
    // coverage label — not a synthetic stamp — must weaken borderline
    // verdicts to Unknown and leave clear-cut ones decided.
    let mut daemons: Vec<Option<RunningDaemon>> = (0..4)
        .map(|i| Some(daemon(i as i64 * 10_000_000, 200)))
        .collect();
    let addrs: Vec<_> = daemons.iter().map(|d| d.as_ref().unwrap().addr).collect();
    let data = Arc::new(DataManager::sharded(Namespace::new(), "CM Fortran", 4));
    let mut set = DaemonSet::connect(&addrs, fast_transport(), data);
    set.set_policy(fast_policy());
    set.clock_sync(4, Duration::from_secs(10)).expect("sync");
    set.pump_until_samples(8, Duration::from_secs(10));
    assert!(set.coverage().is_complete());

    let _ = daemons[2].take().unwrap().kill();
    let deadline = Instant::now() + Duration::from_secs(15);
    while set.health(2) != DaemonHealth::Quarantined && Instant::now() < deadline {
        set.pump_parallel();
        set.supervise();
        std::thread::sleep(Duration::from_millis(10));
    }
    let session = set.session_coverage();
    assert_eq!(
        (
            session.coverage.nodes_reporting,
            session.coverage.nodes_total
        ),
        (3, 4),
        "{}",
        session.coverage
    );

    let tool = tool_for(4);
    let probe = search(&tool, &ConsultantConfig::default());
    let r_max = probe.iter().map(|e| e.ratio).fold(0.0f64, f64::max);
    assert!(r_max > 0.0);

    // Borderline: the threshold sits between the top ratio and its 3-of-4
    // widened bound (ratio × 4/3), so the leader is decidedly False at 4/4
    // and must straddle — Unknown — at 3/4.
    let borderline = ConsultantConfig {
        threshold: r_max * (1.0 + 0.5 / 3.0),
        max_depth: 0,
    };
    // Clear-cut: the threshold sits well under the top ratio, so the
    // leader is True and stays True (its lower bound never moves).
    let clear_cut = ConsultantConfig {
        threshold: r_max * 0.5,
        max_depth: 0,
    };

    let full_b = search(&tool, &borderline);
    let full_c = search(&tool, &clear_cut);
    assert!(full_b.iter().all(|e| e.verdict.is_decided()));
    tool.set_session_coverage(Some(session));
    let degraded_b = search(&tool, &borderline);
    let degraded_c = search(&tool, &clear_cut);

    let mut flipped = 0;
    for (f, d) in full_b.iter().zip(&degraded_b) {
        match (f.verdict, d.verdict) {
            (Verdict::True, Verdict::False) | (Verdict::False, Verdict::True) => {
                panic!(
                    "{}: crossed {:?} -> {:?}",
                    d.hypothesis, f.verdict, d.verdict
                )
            }
            (v, Verdict::Unknown) if v.is_decided() => flipped += 1,
            _ => {}
        }
    }
    assert!(flipped >= 1, "the borderline leader must weaken to Unknown");
    for (f, d) in full_c.iter().zip(&degraded_c) {
        if f.verdict == Verdict::True {
            assert_eq!(
                d.verdict,
                Verdict::True,
                "{}: clear-cut stays True",
                d.hypothesis
            );
        }
    }
    if session.coverage.samples_lost == 0 {
        // With no lost samples a zero ratio widens to a zero interval:
        // hypotheses the program never exercises stay decidedly False.
        for d in &degraded_b {
            if d.ratio == 0.0 {
                assert_eq!(d.verdict, Verdict::False, "{}", d.hypothesis);
            }
        }
    }
    assert!(audit(&degraded_b, borderline.threshold).is_empty());
    assert!(audit(&degraded_c, clear_cut.threshold).is_empty());
    assert!(render(&degraded_b).contains("3/4 nodes"));

    for d in daemons.iter().flatten() {
        d.stop();
    }
    set.shutdown_all(Duration::from_secs(10));
    for d in daemons.into_iter().flatten() {
        let _ = d.join();
    }
}

/// Runs one single-link session whose daemon-side frames pass through a
/// seeded [`FaultInjector`], sends `sent` samples plus a Goodbye, and
/// returns the session's measured coverage label. The three clock replies
/// occupy injector indices 0..3, so a partition window starting at 8 eats
/// sample frames only — deterministically, from the seed.
fn faulted_session_coverage(plan: FaultPlan, sent: u32) -> SessionCoverage {
    let cfg = TransportConfig::default();
    let link = Backend::InProc.link(&cfg);
    let injector = FaultInjector::wrap(link.server.clone(), plan);
    let data = Arc::new(DataManager::sharded(Namespace::new(), "CM Fortran", 1));
    let mut set = DaemonSet::over_transports(vec![("fake#0".into(), link.client)], data);

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let answerer = &injector;
        let stop_ref = &stop;
        s.spawn(move || {
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                while let Ok(Some(frame)) = answerer.try_recv() {
                    if let Ok(DaemonMsg::ClockProbe { token, t_tool_ns }) =
                        DaemonMsg::from_frame(&frame)
                    {
                        let _ = send_wire(
                            &**answerer,
                            &DaemonMsg::ClockReply {
                                token,
                                t_tool_ns,
                                t_daemon_ns: pdmap_obs::now_ns(),
                            },
                        );
                    }
                }
                std::thread::yield_now();
            }
        });
        set.clock_sync(3, Duration::from_secs(5)).expect("sync");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    for i in 0..sent {
        send_wire(
            &*injector,
            &DaemonMsg::Sample {
                metric: "cpu".into(),
                focus: "/".into(),
                wall: pdmap_obs::now_ns(),
                value: f64::from(i),
            },
        )
        .expect("send through injector");
    }
    send_wire(&*injector, &DaemonMsg::Goodbye { samples_sent: sent }).expect("goodbye");
    let deadline = Instant::now() + Duration::from_secs(5);
    while set.conn(0).announced_sent().is_none() && Instant::now() < deadline {
        set.pump();
        std::thread::yield_now();
    }
    assert_eq!(set.conn(0).announced_sent(), Some(u64::from(sent)));
    let cov = set.coverage();
    assert_eq!(
        u64::from(sent),
        set.conn(0).samples_received() + cov.samples_lost,
        "announced == received + lost ({cov})"
    );
    set.session_coverage()
}

#[test]
fn seeded_drop_window_widens_intervals_monotonically() {
    // Three sessions, identical but for the width of the partition window
    // carved out of the sample stream: 0, 4, then 8 frames eaten. The
    // measured loss labels must climb with the window, and a fixed
    // hypothesis's interval must widen strictly with the measured loss.
    let windows: [Option<(u64, u64)>; 3] = [None, Some((8, 12)), Some((8, 16))];
    let tool = tool_for(1);
    let cfg = ConsultantConfig::default();

    let mut last_lost = None;
    let mut last_width = None;
    for window in windows {
        let plan = FaultPlan {
            seed: 42,
            partitions: window.into_iter().collect(),
            ..FaultPlan::none()
        };
        let mut session = faulted_session_coverage(plan, 20);
        let expected = window.map_or(0, |(lo, hi)| hi - lo);
        assert_eq!(
            session.coverage.samples_lost, expected,
            "the seeded window's loss is exact: {}",
            session.coverage
        );
        // A fixed per-sample cost across sessions, so widths compare.
        session.max_sample_cost = 0.5;
        tool.set_session_coverage(Some(session));
        let results = search(&tool, &cfg);
        let width = results
            .iter()
            .map(|e| e.interval.width())
            .fold(0.0f64, f64::max);
        if let (Some(l), Some(w)) = (last_lost, last_width) {
            assert!(session.coverage.samples_lost > l);
            assert!(
                width > w,
                "interval must widen with loss: {w} !< {width} at {}",
                session.coverage
            );
        } else {
            assert_eq!(width, 0.0, "lossless session keeps point intervals");
        }
        assert!(audit(&results, cfg.threshold).is_empty());
        last_lost = Some(session.coverage.samples_lost);
        last_width = Some(width);
    }
}

#[test]
fn parallel_search_agrees_with_sequential_under_measured_loss() {
    // A seeded partition window produces a real measured-loss coverage
    // label; stamped on the tool, the parallel frontier must render byte-
    // identically to the sequential baseline, keep the audit clean, and
    // share machine runs through the measurement cache while doing it.
    let plan = FaultPlan {
        seed: 42,
        partitions: vec![(8, 14)],
        ..FaultPlan::none()
    };
    let mut session = faulted_session_coverage(plan, 20);
    assert!(session.coverage.samples_lost > 0, "{}", session.coverage);
    session.max_sample_cost = 0.5;

    let tool = tool_for(1);
    let cfg = ConsultantConfig {
        threshold: 0.05,
        max_depth: 1,
    };
    tool.set_session_coverage(Some(session));
    let seq = search(&tool, &cfg);
    let before = tool.measurement_cache_stats();
    let par = search_parallel(&tool, &cfg);
    let after = tool.measurement_cache_stats();

    assert_eq!(
        render(&seq),
        render(&par),
        "degraded renders byte-identical"
    );
    assert!(audit(&seq, cfg.threshold).is_empty());
    assert!(audit(&par, cfg.threshold).is_empty());

    // Cache accounting: every experiment in the parallel tree went
    // through the cache, and the six root hypotheses shared one batched
    // run — so hits outnumber zero and misses undercut the tree size.
    fn count(nodes: &[paradyn_tool::ExperimentNode]) -> u64 {
        nodes.iter().map(|n| 1 + count(&n.children)).sum()
    }
    let experiments = count(&par);
    let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
    assert_eq!(hits + misses, experiments, "every experiment hit the cache");
    assert!(hits >= 5, "six roots share one batch: {hits} hits");
    assert!(misses < experiments, "the cache saved machine runs");
}

#[test]
fn coverage_stamp_bumps_the_epoch_and_invalidates_the_cache() {
    // The PR 5 audit invariant, extended to the cache: a verdict computed
    // after a coverage change must never be served from measurements taken
    // under the old coverage. Stamping a session label bumps the coverage
    // epoch, so a repeat search re-measures instead of hitting the cache,
    // and its render visibly carries the new coverage.
    let tool = tool_for(4);
    let cfg = ConsultantConfig {
        threshold: 0.05,
        max_depth: 1,
    };
    tool.clear_measurement_cache();
    let full = search_parallel(&tool, &cfg);
    let s1 = tool.measurement_cache_stats();
    assert!(s1.misses > 0);

    // Unchanged coverage: a repeat search is pure cache hits.
    let again = search_parallel(&tool, &cfg);
    let s2 = tool.measurement_cache_stats();
    assert_eq!(render(&again), render(&full));
    assert_eq!(s2.misses, s1.misses, "warm repeat adds no machine runs");
    assert!(s2.hits > s1.hits);

    tool.set_session_coverage(Some(SessionCoverage {
        coverage: Coverage {
            nodes_reporting: 3,
            nodes_total: 4,
            samples_lost: 2,
        },
        max_sample_cost: 1e-6,
    }));
    let degraded = search_parallel(&tool, &cfg);
    let s3 = tool.measurement_cache_stats();
    assert!(
        s3.misses > s2.misses,
        "epoch bump forces re-measurement: {} !> {}",
        s3.misses,
        s2.misses
    );
    assert!(render(&degraded).contains("3/4 nodes"));
    assert_ne!(render(&degraded), render(&full));
    assert!(audit(&degraded, cfg.threshold).is_empty());
}

#[test]
fn unloaded_tool_measures_to_an_error_not_a_panic() {
    // Asking an empty tool to measure is a user error, not a crash: every
    // measurement entry point reports `NoProgram`, and the consultant
    // turns it into an undecided verdict with the reason in the note.
    use pdmap::hierarchy::Focus;
    let tool = Paradyn::new(cmrts_sim::MachineConfig::default());
    let whole = Focus::whole_program();
    let err = tool.measure("Computation Time", &whole).unwrap_err();
    assert_eq!(err.to_string(), "no program loaded");
    assert!(tool.run_sampled(&[], 1).is_err());

    let results = search_parallel(&tool, &ConsultantConfig::default());
    assert!(results.iter().all(|r| r.verdict == Verdict::Unknown));
    assert!(results.iter().all(|r| r
        .note
        .as_deref()
        .is_some_and(|n| n.contains("no program loaded"))));
}
