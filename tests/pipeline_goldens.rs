//! Golden tests on the deterministic tool-chain artifacts: the compiler
//! listing, the scanned PIF, and the daemon wire format. These formats are
//! interfaces between components (and, in the paper's world, between
//! separate tools), so silent drift is a compatibility break.

use pdmap::model::Namespace;

#[test]
fn figure4_listing_golden() {
    let ns = Namespace::new();
    let c = cmf_lang::compile(
        cmf_lang::samples::FIGURE4,
        &ns,
        &cmf_lang::CompileOptions::default(),
    )
    .unwrap();
    let expected = "\
CMF LISTING v1
file = hpfex.fcm
statement line=3 fn=HPFEX text=A = 1.0
statement line=4 fn=HPFEX text=B = 2.0
statement line=5 fn=HPFEX text=ASUM = SUM(A)
statement line=6 fn=HPFEX text=BMAX = MAXVAL(B)
array name=A fn=HPFEX rank=1 extents=1024 dist=block
array name=B fn=HPFEX rank=1 extents=1024 dist=block
block name=cmpe_hpfex_1_ lines=3,4 arrays=A,B
block name=cmpe_hpfex_2_ lines=5 arrays=A
block name=cmpe_hpfex_3_ lines=6 arrays=B
";
    assert_eq!(c.listing, expected);
}

#[test]
fn figure4_pif_mappings_golden() {
    let ns = Namespace::new();
    let c = cmf_lang::compile(
        cmf_lang::samples::FIGURE4,
        &ns,
        &cmf_lang::CompileOptions::default(),
    )
    .unwrap();
    // Every mapping record the scanner should produce, in order.
    let mappings: Vec<String> = c
        .pif
        .mappings()
        .map(|m| format!("{} -> {}", m.source, m.destination))
        .collect();
    assert_eq!(
        mappings,
        vec![
            "{cmpe_hpfex_1_(), CPU Utilization} -> {line3, Executes}",
            "{cmpe_hpfex_1_(), CPU Utilization} -> {line4, Executes}",
            "{cmpe_hpfex_1_(), CPU Utilization} -> {A, Touches}",
            "{cmpe_hpfex_1_(), CPU Utilization} -> {B, Touches}",
            "{cmpe_hpfex_2_(), CPU Utilization} -> {line5, Executes}",
            "{cmpe_hpfex_2_(), CPU Utilization} -> {A, Touches}",
            "{cmpe_hpfex_3_(), CPU Utilization} -> {line6, Executes}",
            "{cmpe_hpfex_3_(), CPU Utilization} -> {B, Touches}",
        ]
    );
}

#[test]
fn paper_figure2_pif_text_golden() {
    let text = pdmap_pif::write(&pdmap_pif::samples::figure2());
    let expected = "\
NOUN
name = line1160
abstraction = CM Fortran
description = line #1160 in source file /usr/src/prog/main.fcm

NOUN
name = line1161
abstraction = CM Fortran
description = line #1161 in source file /usr/src/prog/main.fcm

VERB
name = Executes
abstraction = CM Fortran
description = units are \"% CPU\"

NOUN
name = cmpe_corr_6_()
abstraction = Base
description = compiler generated function, source code not available

VERB
name = CPU Utilization
abstraction = Base
description = units are \"% CPU\"

MAPPING
source = {cmpe_corr_6_(), CPU Utilization}
destination = {line1160, Executes}

MAPPING
source = {cmpe_corr_6_(), CPU Utilization}
destination = {line1161, Executes}
";
    assert_eq!(text, expected);
}

#[test]
fn daemon_wire_format_golden() {
    use paradyn_tool::DaemonMsg;
    let msg = DaemonMsg::ArrayAllocated {
        id: 7,
        name: "TOT".into(),
        extents: vec![64, 64],
        dist: cmrts_sim::Distribution::Block,
        subgrids: vec![(0, 32, 2048), (1, 32, 2048)],
    };
    assert_eq!(msg.encode(), "ALLOC|7|TOT|64,64|block|0:32:2048,1:32:2048");
    let free = DaemonMsg::ArrayFreed { id: 7 };
    assert_eq!(free.encode(), "FREE|7");
    let sample = DaemonMsg::Sample {
        metric: "Idle Time".into(),
        focus: "<whole program>".into(),
        wall: 42,
        value: 0.5,
    };
    assert_eq!(sample.encode(), "SAMPLE|Idle Time|<whole program>|42|0.5");
}

#[test]
fn mdl_catalogue_emits_stably() {
    // emit(parse(x)) is a fixed point: emitting twice gives identical text.
    let f1 = paradyn_tool::figure9_catalogue();
    let text1 = f1.emit();
    let f2 = dyninst_sim::parse_mdl(&text1).unwrap();
    let text2 = f2.emit();
    assert_eq!(text1, text2);
}

#[test]
fn consultant_render_goldens() {
    // The consultant's rendered answer is an interface too: the report
    // quotes it verbatim and CI greps it. Two frames of the same search —
    // complete coverage must render exactly as the classic boolean
    // consultant always has, and a degraded session must annotate every
    // line with its interval and coverage. The degraded frame also pins
    // the tri-state semantics: clear True stays True, the borderline 8.5%
    // False straddles the 10% threshold and weakens to Unknown, and
    // zero-ratio hypotheses stay decidedly False.
    use paradyn_tool::consultant::{render, search, ConsultantConfig};
    use paradyn_tool::{Coverage, SessionCoverage};
    let mut tool = paradyn_tool::Paradyn::new(cmrts_sim::MachineConfig {
        nodes: 4,
        ..cmrts_sim::MachineConfig::default()
    });
    tool.load_source(cmf_lang::samples::FIGURE4).unwrap();
    let cfg = ConsultantConfig {
        threshold: 0.10,
        max_depth: 0,
    };
    let full = "\
[TRUE ] ExcessiveCommunication @ <whole program> — 55.4% of wall time
[TRUE ] ExcessiveBroadcast @ <whole program> — 38.4% of wall time
[TRUE ] ExcessiveIdleTime @ <whole program> — 210.9% of wall time
[false] ExcessiveReductionTime @ <whole program> — 8.5% of wall time
[false] ExcessiveSortTime @ <whole program> — 0.0% of wall time
[false] ExcessiveIOTime @ <whole program> — 0.0% of wall time
";
    assert_eq!(render(&search(&tool, &cfg)), full);

    tool.set_session_coverage(Some(SessionCoverage {
        coverage: Coverage {
            nodes_reporting: 3,
            nodes_total: 4,
            samples_lost: 2,
        },
        max_sample_cost: 1e-6,
    }));
    let degraded = "\
[TRUE ] ExcessiveCommunication @ <whole program> — 55.4% of wall time in [55.4%, 76.0%] (3/4 nodes, >=2 samples lost)
[TRUE ] ExcessiveBroadcast @ <whole program> — 38.4% of wall time in [38.4%, 53.4%] (3/4 nodes, >=2 samples lost)
[TRUE ] ExcessiveIdleTime @ <whole program> — 210.9% of wall time in [210.9%, 283.4%] (3/4 nodes, >=2 samples lost)
[?????] ExcessiveReductionTime @ <whole program> — 8.5% of wall time in [8.5%, 13.5%] (3/4 nodes, >=2 samples lost)
[false] ExcessiveSortTime @ <whole program> — 0.0% of wall time in [0.0%, 2.2%] (3/4 nodes, >=2 samples lost)
[false] ExcessiveIOTime @ <whole program> — 0.0% of wall time in [0.0%, 2.2%] (3/4 nodes, >=2 samples lost)
";
    assert_eq!(render(&search(&tool, &cfg)), degraded);
}

#[test]
fn parallel_search_matches_the_render_goldens() {
    // The work-stealing frontier is an implementation detail: against the
    // same tool it must reproduce the pinned sequential goldens byte for
    // byte, in both the complete-coverage and degraded frames, even
    // though its experiments complete in nondeterministic order.
    use paradyn_tool::consultant::{render, search, search_parallel, ConsultantConfig};
    use paradyn_tool::{Coverage, SessionCoverage};
    let mut tool = paradyn_tool::Paradyn::new(cmrts_sim::MachineConfig {
        nodes: 4,
        ..cmrts_sim::MachineConfig::default()
    });
    tool.load_source(cmf_lang::samples::FIGURE4).unwrap();
    let cfg = ConsultantConfig {
        threshold: 0.10,
        max_depth: 0,
    };
    assert_eq!(
        render(&search_parallel(&tool, &cfg)),
        render(&search(&tool, &cfg))
    );
    assert!(render(&search_parallel(&tool, &cfg))
        .starts_with("[TRUE ] ExcessiveCommunication @ <whole program> — 55.4% of wall time\n"));

    tool.set_session_coverage(Some(SessionCoverage {
        coverage: Coverage {
            nodes_reporting: 3,
            nodes_total: 4,
            samples_lost: 2,
        },
        max_sample_cost: 1e-6,
    }));
    let degraded = render(&search_parallel(&tool, &cfg));
    assert_eq!(degraded, render(&search(&tool, &cfg)));
    assert!(degraded.contains("(3/4 nodes, >=2 samples lost)"));
}

#[test]
fn unmeasured_unknown_renders_without_a_fabricated_percentage() {
    // An experiment that never ran has no value: its rendered line must
    // carry the note alone, never a fabricated "0.0% of wall time".
    use paradyn_tool::consultant::{render, search_parallel, ConsultantConfig};
    let tool = paradyn_tool::Paradyn::new(cmrts_sim::MachineConfig::default());
    let shown = render(&search_parallel(&tool, &ConsultantConfig::default()));
    let golden = "\
[?????] ExcessiveCommunication @ <whole program> (measurement failed: no program loaded)
[?????] ExcessiveBroadcast @ <whole program> (measurement failed: no program loaded)
[?????] ExcessiveIdleTime @ <whole program> (measurement failed: no program loaded)
[?????] ExcessiveReductionTime @ <whole program> (measurement failed: no program loaded)
[?????] ExcessiveSortTime @ <whole program> (measurement failed: no program loaded)
[?????] ExcessiveIOTime @ <whole program> (measurement failed: no program loaded)
";
    assert_eq!(shown, golden);
    assert!(!shown.contains("% of wall time"));
}

#[test]
fn deterministic_run_summary_golden() {
    // The Figure 4 program on 4 nodes with the default cost model: the
    // exact event counts the rest of the documentation quotes.
    let ns = Namespace::new();
    let c = cmf_lang::compile(
        cmf_lang::samples::FIGURE4,
        &ns,
        &cmf_lang::CompileOptions::default(),
    )
    .unwrap();
    let mgr = std::sync::Arc::new(dyninst_sim::InstrumentationManager::new());
    let mut m = cmrts_sim::Machine::new(
        cmrts_sim::MachineConfig {
            nodes: 4,
            ..cmrts_sim::MachineConfig::default()
        },
        ns,
        mgr,
        c.program().clone(),
    )
    .unwrap();
    let s = m.run();
    assert_eq!(s.blocks_dispatched, 3);
    assert_eq!(s.broadcasts, 3);
    assert_eq!(s.messages, 8, "two 4-node reduction trees incl. CP returns");
    assert_eq!(m.scalar("ASUM"), Some(1024.0));
    assert_eq!(m.scalar("BMAX"), Some(2.0));
}
