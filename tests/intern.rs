//! The global symbol table is process-wide shared state on the hot path:
//! every focus selection, hierarchy name, and columnar sample key goes
//! through it. These tests pin its contract — duplicate collapse, id
//! round-trips, concurrent reads after freeze — and prove that interning
//! is invisible at the render edge: the §13 consultant goldens come out
//! byte-identical through the interned evaluation path.

use pdmap::intern;
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn duplicate_interns_collapse_and_ids_round_trip() {
    let a = intern::sym("intern-test/alpha");
    let b = intern::sym("intern-test/beta");
    assert_ne!(a, b);
    // Same string, same symbol — no matter how it was built.
    assert_eq!(intern::sym("intern-test/alpha"), a);
    assert_eq!(intern::sym(&format!("intern-test/alph{}", "a")), a);
    // Id -> name -> id round-trips, and the name is the original bytes.
    assert_eq!(a.as_str(), "intern-test/alpha");
    assert_eq!(intern::lookup(a.as_str()), Some(a));
    assert_eq!(intern::table().resolve(a), a.as_str());
    // Lookup of a never-interned name does not invent a symbol.
    assert_eq!(intern::lookup("intern-test/never-interned-gamma"), None);
}

#[test]
fn frozen_table_serves_concurrent_readers() {
    // PIF import freezes the table; after that the fleet reads it from
    // every drain thread at once. Hammer it from several threads while a
    // straggler keeps interning (freeze is advisory) and check every
    // reader sees consistent name<->id pairs throughout.
    let names: Vec<String> = (0..64).map(|i| format!("intern-test/conc{i}")).collect();
    let syms: Vec<intern::Symbol> = names.iter().map(|n| intern::sym(n)).collect();
    intern::freeze();
    assert!(intern::is_frozen());
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    for (name, &sym) in names.iter().zip(&syms) {
                        assert_eq!(intern::lookup(name), Some(sym));
                        assert_eq!(sym.as_str(), name);
                    }
                }
            });
        }
        // Late interns are counted, not rejected: dynamic resources
        // (subgrids, spawned arrays) legitimately appear mid-run.
        let before = intern::table().post_freeze_interns();
        let late = intern::sym("intern-test/late-subgrid");
        assert_eq!(late.as_str(), "intern-test/late-subgrid");
        assert!(intern::table().post_freeze_interns() > before);
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn interned_evaluation_renders_the_consultant_goldens_byte_identically() {
    // The §13 pinned frames, re-asserted through a tool whose focus and
    // where-axis names all live in the symbol table. If intern order or
    // id values ever leaked into focus canonicalization or rendering,
    // these exact strings would drift.
    use paradyn_tool::consultant::{render, search, search_parallel, ConsultantConfig};
    use paradyn_tool::{Coverage, SessionCoverage};
    // Skew intern order on purpose: grab names the tool will later intern
    // itself, in a different order than import would, plus decoys.
    for n in ["CMFnodes", "zzz-decoy", "CMFarrays", "aaa-decoy", "Machine"] {
        intern::sym(n);
    }
    let mut tool = paradyn_tool::Paradyn::new(cmrts_sim::MachineConfig {
        nodes: 4,
        ..cmrts_sim::MachineConfig::default()
    });
    tool.load_source(cmf_lang::samples::FIGURE4).unwrap();
    assert!(
        intern::is_frozen(),
        "PIF import freezes the symbol table for the run"
    );
    let cfg = ConsultantConfig {
        threshold: 0.10,
        max_depth: 0,
    };
    let full = "\
[TRUE ] ExcessiveCommunication @ <whole program> — 55.4% of wall time
[TRUE ] ExcessiveBroadcast @ <whole program> — 38.4% of wall time
[TRUE ] ExcessiveIdleTime @ <whole program> — 210.9% of wall time
[false] ExcessiveReductionTime @ <whole program> — 8.5% of wall time
[false] ExcessiveSortTime @ <whole program> — 0.0% of wall time
[false] ExcessiveIOTime @ <whole program> — 0.0% of wall time
";
    assert_eq!(render(&search(&tool, &cfg)), full);
    assert_eq!(render(&search_parallel(&tool, &cfg)), full);

    tool.set_session_coverage(Some(SessionCoverage {
        coverage: Coverage {
            nodes_reporting: 3,
            nodes_total: 4,
            samples_lost: 2,
        },
        max_sample_cost: 1e-6,
    }));
    let degraded = "\
[TRUE ] ExcessiveCommunication @ <whole program> — 55.4% of wall time in [55.4%, 76.0%] (3/4 nodes, >=2 samples lost)
[TRUE ] ExcessiveBroadcast @ <whole program> — 38.4% of wall time in [38.4%, 53.4%] (3/4 nodes, >=2 samples lost)
[TRUE ] ExcessiveIdleTime @ <whole program> — 210.9% of wall time in [210.9%, 283.4%] (3/4 nodes, >=2 samples lost)
[?????] ExcessiveReductionTime @ <whole program> — 8.5% of wall time in [8.5%, 13.5%] (3/4 nodes, >=2 samples lost)
[false] ExcessiveSortTime @ <whole program> — 0.0% of wall time in [0.0%, 2.2%] (3/4 nodes, >=2 samples lost)
[false] ExcessiveIOTime @ <whole program> — 0.0% of wall time in [0.0%, 2.2%] (3/4 nodes, >=2 samples lost)
";
    assert_eq!(render(&search(&tool, &cfg)), degraded);
    assert_eq!(render(&search_parallel(&tool, &cfg)), degraded);
}

#[test]
fn focus_display_ignores_intern_order() {
    use pdmap::hierarchy::Focus;
    // Intern the hierarchy names in reverse lexical order so symbol ids
    // run opposite to name order, then build the same focus two ways.
    intern::sym("intern-test/zhier");
    intern::sym("intern-test/ahier");
    let fwd = Focus::whole_program()
        .select("intern-test/ahier", "/x")
        .select("intern-test/zhier", "/y");
    let rev = Focus::whole_program()
        .select("intern-test/zhier", "/y")
        .select("intern-test/ahier", "/x");
    assert_eq!(fwd, rev);
    assert_eq!(fwd.to_string(), rev.to_string());
    let names: Vec<&str> = fwd.selection_names().map(|(h, _)| h).collect();
    assert_eq!(
        names,
        ["intern-test/ahier", "intern-test/zhier"],
        "canonical order is name order, never id order"
    );
}
